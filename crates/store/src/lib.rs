//! # pmp-store — the base-station database
//!
//! The paper's monitoring extension streams every robot movement to a
//! database at the base station (Fig. 3b step 3); client tools then
//! query it for replay, remote replication, and simulation (§4.5,
//! Fig. 6). This crate is that database: a small in-memory append-only
//! store with time/robot-indexed queries and replay cursors.

pub mod durable;
pub mod movement;
pub mod table;

pub use movement::{MovementRecord, MovementStore};
pub use table::{RecordId, Table};
