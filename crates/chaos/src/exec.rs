//! Executes a chaos script against the real [`Platform`].
//!
//! The executor is the only piece that touches the system under test.
//! It builds the world the topology describes, replays the steps in
//! time order, pumps in fixed slices, and runs the barrier oracles
//! after every slice. Two properties matter more than anything here:
//!
//! * **Determinism** — the same scenario and driver produce the same
//!   [`RunReport`] byte for byte. Nothing reads wall-clock time, no
//!   hash-ordered container leaks into the report, and the pump-slice
//!   quantum is a constant.
//! * **Totality** — every op is valid in every state. Precondition
//!   failures (crash a crashed base, publish from a dead one, index
//!   past the node table) are no-ops, so the shrinker may delete any
//!   subset of steps and still have a meaningful script.

use crate::oracle::{
    check_barrier, stream_resync, OracleState, StreamMirror, Violation, HOSTILE_PREFIX,
};
use crate::script::{
    Op, Scenario, Step, CORRIDOR, HALL_PITCH, HALL_SIDE, MAX_NODES, MAX_SUBS, RADIO_RANGE,
    STREAM_NAMESPACES,
};
use pmp_core::rpc::InvocationSemantics;
use pmp_core::{BaseId, MobId, ParallelDriver, Platform, RpcOutcome, SerialDriver};
use pmp_crypto::KeyPair;
use pmp_midas::{ExtensionMeta, ExtensionPackage, SignedExtension};
use pmp_net::{LinkModel, Position};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::Op as VmOp;
use pmp_vm::perm::{Permission, Permissions};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which node-execution driver to run the platform under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverKind {
    /// The golden reference: rank order, one thread.
    Serial,
    /// Scoped worker threads with the epoch-barrier merge.
    Parallel,
}

impl DriverKind {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Serial => "serial",
            DriverKind::Parallel => "parallel",
        }
    }
}

/// Everything one chaos run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Driver the run used.
    pub driver: &'static str,
    /// Network trace digest at the end of the run.
    pub trace: u64,
    /// Journal digest (platform + per-node VM journals).
    pub journal: u64,
    /// Span digest over every trace span the run produced.
    pub span_digest: u64,
    /// Per-node flight-recorder dumps (bases first, then mobiles, in
    /// rank order) for the `.repro` artifact.
    pub flight: Vec<(u32, Vec<pmp_trace::FlightEntry>)>,
    /// Invariant breaches, in observation order.
    pub violations: Vec<Violation>,
    /// Canonical end-of-run state, one line per fact.
    pub observables: Vec<String>,
    /// True if the run aborted early (a `recover()` panic).
    pub aborted: bool,
}

impl RunReport {
    /// Whether any oracle fired.
    #[must_use]
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// A serial + parallel pair over the same scenario, with the
/// cross-driver oracle applied.
#[derive(Debug, Clone)]
pub struct CrossReport {
    /// The serial run.
    pub serial: RunReport,
    /// The parallel run.
    pub parallel: RunReport,
    /// All violations: serial's, parallel's, plus any `cross-driver`
    /// mismatches.
    pub violations: Vec<Violation>,
}

impl CrossReport {
    /// Whether anything at all went wrong.
    #[must_use]
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Pump quantum between oracle barriers, ms. A constant: changing it
/// changes observation times and therefore run reports.
const SLICE_MS: u64 = 250;
/// Worker cap for the parallel driver — fixed, not host-derived, so
/// reports cannot depend on the machine.
const PARALLEL_THREADS: usize = 3;

struct World {
    p: Platform,
    bases: Vec<BaseId>,
    nodes: Vec<MobId>,
    st: OracleState,
    violations: Vec<Violation>,
    /// RPC outcomes drained at every slice (the throughput oracle
    /// needs them per barrier); rendered once at end of run in the
    /// same request-id order the old end-only drain produced.
    rpc_outcomes: Vec<RpcOutcome>,
    now_ms: u64,
    aborted: bool,
}

fn hall_center(i: usize) -> Position {
    Position::new(i as f64 * HALL_PITCH + HALL_SIDE / 2.0, HALL_SIDE / 2.0)
}

/// Deterministic parking slot for node `k` inside hall `i`: a 4×4 grid
/// around the hall centre, all well inside radio range.
fn slot(i: usize, k: usize) -> Position {
    let x0 = i as f64 * HALL_PITCH;
    Position::new(
        x0 + 22.0 + 4.0 * (k % 4) as f64,
        22.0 + 4.0 * ((k / 4) % 4) as f64,
    )
}

fn receiver_cap() -> Permissions {
    Permissions::none()
        .with(Permission::Print)
        .with(Permission::Net)
        .with(Permission::Time)
        .with(Permission::Store)
}

fn build(sc: &Scenario, driver: DriverKind) -> World {
    let t = &sc.topology;
    let link = if t.loss_per_mille == 0 {
        LinkModel::ideal()
    } else {
        LinkModel::lossy(f64::from(t.loss_per_mille) / 1000.0)
    };
    let mut p = Platform::with_link(sc.seed, link);
    match driver {
        DriverKind::Serial => p.set_driver(Box::new(SerialDriver)),
        DriverKind::Parallel => p.set_driver(Box::new(ParallelDriver {
            threads: PARALLEL_THREADS,
        })),
    }
    p.sim.trace.set_logging(true);
    p.set_tracing(true);

    let halls = usize::from(t.halls.max(1));
    let mut bases = Vec::with_capacity(halls);
    for i in 0..halls {
        let name = format!("hall-{i}");
        let x0 = i as f64 * HALL_PITCH;
        p.add_area(
            &name,
            Position::new(x0, 0.0),
            Position::new(x0 + HALL_SIDE, HALL_SIDE),
        );
        let b = p.add_base(&name, hall_center(i), RADIO_RANGE);
        p.base_mut(b)
            .base
            .set_lease(u64::from(t.lease_ms) * 1_000_000);
        bases.push(b);
    }
    if t.link_neighbors {
        for w in 1..bases.len() {
            p.link_bases(bases[w - 1], bases[w]);
        }
    }
    for (i, &b) in bases.iter().enumerate() {
        if let Some(catalog) = t.catalogs.get(i) {
            for entry in catalog {
                p.publish_extension(b, &entry.kind.package(entry.version));
            }
        }
    }

    let mut nodes = Vec::new();
    for k in 0..usize::from(t.robots.max(1)) {
        let hall = k % halls;
        let name = format!("robot:{}:1", k + 1);
        let policy = p.trusting_policy(&bases, receiver_cap());
        let m = p
            .add_robot(&name, slot(hall, k), RADIO_RANGE, policy)
            .expect("robot registration is infallible with stock classes");
        nodes.push(m);
    }

    let mut st = OracleState::new(u64::from(t.lease_ms), bases.len(), nodes.len());
    st.loss_free = t.loss_per_mille == 0;
    st.baseline_latency_ns = p.sim.link_model().base_latency_ns;
    World {
        p,
        bases,
        nodes,
        st,
        violations: Vec::new(),
        rpc_outcomes: Vec::new(),
        now_ms: 0,
        aborted: false,
    }
}

/// Pumps to `target_ms`, running the barrier oracles every slice.
fn pump_to(w: &mut World, target_ms: u64) {
    while w.now_ms < target_ms && !w.aborted {
        let step = SLICE_MS.min(target_ms - w.now_ms);
        w.p.pump_millis(step);
        w.now_ms += step;
        for o in w.p.take_rpc_outcomes() {
            w.st.rpc_resolved.insert(o.req);
            w.rpc_outcomes.push(o);
        }
        stream_resync(&mut w.p, &w.bases, &mut w.st, w.now_ms, &mut w.violations);
        check_barrier(
            &w.p,
            &w.bases,
            &w.nodes,
            &mut w.st,
            w.now_ms,
            &mut w.violations,
        );
    }
}

fn apply(w: &mut World, op: &Op) {
    let halls = w.bases.len();
    match *op {
        Op::MoveToHall { node, hall } => {
            w.st.radio_quiet = false;
            if let Some(&m) = w.nodes.get(usize::from(node)) {
                let h = usize::from(hall) % halls;
                w.p.move_node(m, slot(h, usize::from(node)));
            }
        }
        Op::MoveToCorridor { node } => {
            w.st.radio_quiet = false;
            if let Some(&m) = w.nodes.get(usize::from(node)) {
                let k = usize::from(node) as f64;
                w.p.move_node(m, Position::new(CORRIDOR.0 + 5.0 * k, CORRIDOR.1));
            }
        }
        Op::SetOnline { node, online } => {
            w.st.radio_quiet = false;
            if let Some(&m) = w.nodes.get(usize::from(node)) {
                let nid = w.p.node(m).node;
                w.p.sim.set_online(nid, online);
            }
        }
        Op::AddRobot { hall } => {
            if w.nodes.len() < MAX_NODES {
                let h = usize::from(hall) % halls;
                let k = w.nodes.len();
                let name = format!("robot:{}:1", k + 1);
                let policy = w.p.trusting_policy(&w.bases, receiver_cap());
                if let Ok(m) = w.p.add_robot(&name, slot(h, k), RADIO_RANGE, policy) {
                    w.nodes.push(m);
                    w.st.uncovered_since.push(None);
                    w.st.grant_state.push(Default::default());
                }
            }
        }
        Op::CrashBase { base } => {
            w.st.radio_quiet = false;
            if let Some(&b) = w.bases.get(usize::from(base)) {
                if !w.p.base(b).crashed {
                    // Force the pending batch down before the power cut
                    // so the captured digest is the barrier-committed
                    // state the restart must reproduce exactly.
                    w.p.base_mut(b).durable.commit();
                    let digest = w.p.base(b).durable_digest();
                    w.p.crash_base(b);
                    w.st.digest_at_crash[usize::from(base)] = Some(digest);
                }
            }
        }
        Op::RestartBase { base } => {
            if let Some(&b) = w.bases.get(usize::from(base)) {
                if w.p.base(b).crashed {
                    restart(w, usize::from(base), b);
                }
            }
        }
        Op::CheckpointBase { base } => {
            if let Some(&b) = w.bases.get(usize::from(base)) {
                if !w.p.base(b).crashed {
                    w.p.checkpoint_base(b);
                }
            }
        }
        Op::Publish {
            base,
            kind,
            version,
        } => {
            if let Some(&b) = w.bases.get(usize::from(base)) {
                if !w.p.base(b).crashed {
                    w.p.publish_extension(b, &kind.package(version.max(1)));
                }
            }
        }
        Op::Revoke { base, kind } => {
            if let Some(&b) = w.bases.get(usize::from(base)) {
                if !w.p.base(b).crashed {
                    w.p.revoke_extension(b, kind.ext_id(), "chaos revoke");
                }
            }
        }
        Op::Rpc { base, node, x, y } => {
            let (Some(&b), Some(&m)) = (
                w.bases.get(usize::from(base)),
                w.nodes.get(usize::from(node)),
            ) else {
                return;
            };
            if !w.p.base(b).crashed {
                w.p.rpc(
                    b,
                    m,
                    "operator:1",
                    "DrawingService",
                    "moveTo",
                    vec![i64::from(x), i64::from(y)],
                );
            }
        }
        Op::InjectTornTail { base, drop } => {
            inject(w, base, |disk_file, e| {
                e.disk_mut()
                    .inject_torn_tail(&disk_file, usize::from(drop.max(1)))
            });
        }
        Op::InjectBitFlip { base, offset } => {
            inject(w, base, |disk_file, e| {
                let len = e.disk().len(&disk_file);
                len > 0 && e.disk_mut().inject_bit_flip(&disk_file, usize::from(offset) % len)
            });
        }
        Op::Partition { node, base } => {
            w.st.radio_quiet = false;
            let (Some(&m), Some(&b)) = (
                w.nodes.get(usize::from(node)),
                w.bases.get(usize::from(base)),
            ) else {
                return;
            };
            let (nid, bid) = (w.p.node(m).node, w.p.base(b).node);
            w.p.sim.partition(nid, bid);
            w.st.partitions.insert((node, base));
        }
        Op::Heal { node, base } => {
            let (Some(&m), Some(&b)) = (
                w.nodes.get(usize::from(node)),
                w.bases.get(usize::from(base)),
            ) else {
                return;
            };
            let (nid, bid) = (w.p.node(m).node, w.p.base(b).node);
            w.p.sim.heal(nid, bid);
            w.st.partitions.remove(&(node, base));
        }
        Op::LinkBases { a, b } => {
            let (Some(&ba), Some(&bb)) = (
                w.bases.get(usize::from(a)),
                w.bases.get(usize::from(b)),
            ) else {
                return;
            };
            if a != b {
                w.p.federate_bases(ba, bb);
                w.st.fed_pairs.insert((a.min(b), a.max(b)));
            }
        }
        Op::PartitionBases { a, b } => {
            let (Some(&ba), Some(&bb)) = (
                w.bases.get(usize::from(a)),
                w.bases.get(usize::from(b)),
            ) else {
                return;
            };
            if a != b {
                let (na, nb) = (w.p.base(ba).node, w.p.base(bb).node);
                w.p.sim.partition(na, nb);
                w.st.base_partitions.insert((a.min(b), a.max(b)));
            }
        }
        Op::HealBases { a, b } => {
            let (Some(&ba), Some(&bb)) = (
                w.bases.get(usize::from(a)),
                w.bases.get(usize::from(b)),
            ) else {
                return;
            };
            if a != b {
                let (na, nb) = (w.p.base(ba).node, w.p.base(bb).node);
                w.p.sim.heal(na, nb);
                w.st.base_partitions.remove(&(a.min(b), a.max(b)));
            }
        }
        Op::Subscribe { base, ns } => {
            let Some(&b) = w.bases.get(usize::from(base)) else {
                return;
            };
            if w.st.subscribers.len() < MAX_SUBS {
                let ns = STREAM_NAMESPACES[usize::from(ns) % STREAM_NAMESPACES.len()];
                let sub = w.p.subscribe(b, ns);
                w.st.subscribers.push(StreamMirror::new(base, ns, sub));
            }
        }
        Op::DropSubscriber { sub } => {
            if let Some(s) = w.st.subscribers.get_mut(usize::from(sub)) {
                if s.live {
                    s.live = false;
                    w.p.drop_subscription(s.sub);
                }
            }
        }
        Op::RpcSem {
            base,
            node,
            sem,
            x,
            y,
        } => {
            let (Some(&b), Some(&m)) = (
                w.bases.get(usize::from(base)),
                w.nodes.get(usize::from(node)),
            ) else {
                return;
            };
            if !w.p.base(b).crashed {
                let semantics = match sem % 3 {
                    0 => InvocationSemantics::Maybe,
                    1 => InvocationSemantics::AtMostOnce,
                    _ => InvocationSemantics::AtLeastOnce,
                };
                let req = w.p.rpc_with(
                    b,
                    m,
                    "operator:1",
                    "DrawingService",
                    "moveTo",
                    vec![i64::from(x), i64::from(y)],
                    semantics,
                );
                // Maybe calls may legitimately never resolve under
                // loss; only semantic calls carry the resolution
                // guarantee the throughput oracle enforces.
                if semantics != InvocationSemantics::Maybe {
                    w.st.rpc_issued.push((w.now_ms, req, base));
                }
            }
        }
        Op::AdversarialPublish {
            base,
            attack,
            version,
        } => {
            if let Some(&b) = w.bases.get(usize::from(base)) {
                if !w.p.base(b).crashed {
                    let sealed = hostile_package(&w.p, b, attack, version.max(1));
                    w.p.publish_sealed(b, sealed);
                }
            }
        }
        Op::SlowLinks { mult } => {
            w.p.sim.scale_link_latency(u32::from(mult.max(1)));
        }
    }
}

/// Builds one hostile [`SignedExtension`] for the MIDAS admission gate
/// to repel. `attack % 5` selects the vector; every payload targets a
/// different gate stage, and every id carries [`HOSTILE_PREFIX`] so
/// the `adversarial-containment` oracle can spot an escape:
///
/// * `0` **forged** — a clean package sealed by the hall authority,
///   then one payload byte flipped: the signature check must fail.
/// * `1` **sneaky** — bytecode calls the guarded `print` syscall but
///   the manifest declares no permissions: permission-inference must
///   reject before weaving (declaring *more* than the cap is not an
///   attack — the sandbox silently clamps to `requested ∩ cap`).
/// * `2` **underflow** — structurally unsound bytecode (pop on an
///   empty stack): the verifier must reject.
/// * `3` **rogue** — sealed by a keypair no receiver trusts: the
///   signature check must fail on the unknown signer.
/// * `4` **meddle** — validly signed, capability-clean, but its
///   crosscut blankets `DrawingService` to pressure the interference
///   analyzer; installation is the expected (contained) outcome.
fn hostile_package(p: &Platform, b: BaseId, attack: u8, version: u32) -> SignedExtension {
    let aspect = |class_name: &str, ops: Vec<VmOp>| -> PortableAspect {
        let mut body = MethodBuilder::new();
        for op in ops {
            body.op(op);
        }
        let class = PortableClass {
            name: class_name.into(),
            fields: vec![],
            methods: vec![PortableMethod {
                name: "onCall".into(),
                params: vec!["any".into(); 5],
                ret: "any".into(),
                body: body.build(),
            }],
        };
        let aspect = Aspect::script(
            class_name,
            class,
            vec![(
                Crosscut::parse("before * DrawingService.*(..)").expect("static crosscut"),
                "onCall".into(),
                0,
            )],
        );
        PortableAspect::try_from(&aspect).expect("hostile aspect is portable")
    };
    let package = |id: &str, permissions: Vec<String>, a: PortableAspect| ExtensionPackage {
        meta: ExtensionMeta {
            id: id.into(),
            version,
            description: format!("{id} adversarial probe"),
            requires: vec![],
            permissions,
            implicit: false,
        },
        aspect: a,
    };
    let print_call = vec![
        VmOp::Load(2),
        VmOp::Sys {
            name: "print".into(),
            argc: 1,
        },
        VmOp::Pop,
        VmOp::Ret,
    ];
    match attack % 5 {
        0 => {
            let pkg = package(
                &format!("{HOSTILE_PREFIX}forged"),
                vec!["print".into()],
                aspect("HostForged", print_call),
            );
            let mut sealed = p.base(b).seal(&pkg);
            let mid = sealed.blob.payload.len() / 2;
            sealed.blob.payload[mid] ^= 1;
            sealed
        }
        1 => p.base(b).seal(&package(
            &format!("{HOSTILE_PREFIX}sneaky"),
            vec![],
            aspect("HostSneaky", print_call),
        )),
        2 => p.base(b).seal(&package(
            &format!("{HOSTILE_PREFIX}underflow"),
            vec!["print".into()],
            aspect("HostUnderflow", vec![VmOp::Pop, VmOp::Ret]),
        )),
        3 => {
            let rogue = KeyPair::from_seed(b"authority:rogue");
            SignedExtension::seal(
                "authority:rogue",
                &rogue,
                &package(
                    &format!("{HOSTILE_PREFIX}rogue"),
                    vec!["print".into()],
                    aspect("HostRogue", print_call),
                ),
            )
        }
        _ => p.base(b).seal(&package(
            &format!("{HOSTILE_PREFIX}meddle"),
            vec![],
            aspect("HostMeddle", vec![VmOp::Ret]),
        )),
    }
}

/// Disk-fault helper: only meaningful while the base is down (a live
/// base would just overwrite); targets the newest WAL segment.
fn inject(
    w: &mut World,
    base: u8,
    f: impl FnOnce(String, &mut pmp_durable::DurableEngine) -> bool,
) {
    let Some(&b) = w.bases.get(usize::from(base)) else {
        return;
    };
    if !w.p.base(b).crashed {
        return;
    }
    let hit = w.p.base_mut(b).durable.with(|e| {
        let segs = e.segments();
        match segs.last() {
            Some(seg) => f(seg.clone(), e),
            None => false,
        }
    });
    if hit {
        w.st.fault_injected[usize::from(base)] = true;
    }
}

fn restart(w: &mut World, idx: usize, b: BaseId) {
    let faulted = w.st.fault_injected[idx];
    let expected = w.st.digest_at_crash[idx];
    w.st.fault_injected[idx] = false;
    w.st.digest_at_crash[idx] = None;
    // Recovered calls re-arm their retry timers now; the throughput
    // oracle's resolution clock restarts here for this base.
    w.st.base_restart_ms[idx] = w.now_ms;

    let outcome = catch_unwind(AssertUnwindSafe(|| w.p.restart_base(b)));
    let report = match outcome {
        Ok(report) => report,
        Err(_) => {
            // The platform may be half-rebuilt; nothing after this
            // point is trustworthy, so stop the run here.
            w.violations.push(Violation {
                invariant: "recover-panic",
                at_ms: w.now_ms,
                detail: format!(
                    "restart of base {idx} panicked (fault injected: {faulted})"
                ),
            });
            w.aborted = true;
            return;
        }
    };
    if faulted {
        // With an injected fault the digest may legitimately regress to
        // the surviving prefix, and the report may even be clean (a
        // torn tail that cuts exactly at a record boundary looks like a
        // shorter valid log). The contract under faults is only: don't
        // panic, keep serving — both checked elsewhere.
        let _ = report;
        return;
    }
    if !report.is_clean() {
        w.violations.push(Violation {
            invariant: "durable-digest",
            at_ms: w.now_ms,
            detail: format!("base {idx}: unfaulted recovery reported anomalies: {report:?}"),
        });
    }
    let got = w.p.base(b).durable_digest();
    if expected != Some(got) {
        w.violations.push(Violation {
            invariant: "durable-digest",
            at_ms: w.now_ms,
            detail: format!(
                "base {idx}: digest {got:#018x} after restart, {expected:?} at crash"
            ),
        });
    }
}

fn observables(w: &mut World) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!("now_ns={}", w.p.now().0));
    for &m in &w.nodes {
        let node = w.p.node(m);
        let sim_node = w.p.sim.node(node.node);
        out.push(format!(
            "node {} pos=({:.1},{:.1}) online={} installed={:?} strokes={}",
            node.name,
            sim_node.pos.x,
            sim_node.pos.y,
            sim_node.online,
            node.receiver.installed_ids(),
            node.canvas().map_or(0, |c| c.len()),
        ));
    }
    for &b in &w.bases {
        let station = w.p.base(b);
        out.push(format!(
            "base {} crashed={} catalog={:?} leases={:?} charges={:?} movements={}",
            station.name,
            station.crashed,
            station.base.catalog.ids(),
            station.base.lease_table(),
            station.charges,
            station.store.len(),
        ));
    }
    let mut rpcs = std::mem::take(&mut w.rpc_outcomes);
    rpcs.extend(w.p.take_rpc_outcomes());
    rpcs.sort_by_key(|o| o.req);
    for o in rpcs {
        out.push(format!("rpc req={} ok={} value={}", o.req, o.ok, o.value));
    }
    out
}

/// Runs `sc` to completion under one driver.
#[must_use]
pub fn run(sc: &Scenario, driver: DriverKind) -> RunReport {
    let mut w = build(sc, driver);
    let mut steps: Vec<Step> = sc.steps.clone();
    steps.sort_by_key(|s| s.at_ms); // stable: ties keep script order

    for step in &steps {
        pump_to(&mut w, u64::from(step.at_ms));
        if w.aborted {
            break;
        }
        apply(&mut w, &step.op);
    }
    if !w.aborted {
        let end = w.now_ms + u64::from(sc.settle_ms);
        pump_to(&mut w, end);
    }

    let observables = observables(&mut w);
    let span_digest = w.p.span_digest();
    let flight = w.p.flight_dump();
    RunReport {
        driver: driver.name(),
        trace: w.p.trace_digest(),
        journal: w.p.journal_digest(),
        span_digest,
        flight,
        violations: w.violations,
        observables,
        aborted: w.aborted,
    }
}

/// Runs `sc` under both drivers and applies the `cross-driver` oracle:
/// trace digest, journal digest, observables, and even the violation
/// lists must match exactly.
#[must_use]
pub fn run_cross(sc: &Scenario) -> CrossReport {
    let serial = run(sc, DriverKind::Serial);
    let parallel = run(sc, DriverKind::Parallel);
    let mut violations = serial.violations.clone();
    violations.extend(parallel.violations.clone());

    let end_ms = last_ms(sc);
    if serial.trace != parallel.trace {
        violations.push(Violation {
            invariant: "cross-driver",
            at_ms: end_ms,
            detail: format!(
                "trace digest diverged: serial {:#018x} vs parallel {:#018x}",
                serial.trace, parallel.trace
            ),
        });
    }
    if serial.journal != parallel.journal {
        violations.push(Violation {
            invariant: "cross-driver",
            at_ms: end_ms,
            detail: format!(
                "journal digest diverged: serial {:#018x} vs parallel {:#018x}",
                serial.journal, parallel.journal
            ),
        });
    }
    if serial.span_digest != parallel.span_digest {
        violations.push(Violation {
            invariant: "cross-driver",
            at_ms: end_ms,
            detail: format!(
                "span digest diverged: serial {:#018x} vs parallel {:#018x}",
                serial.span_digest, parallel.span_digest
            ),
        });
    }
    if serial.observables != parallel.observables {
        let detail = serial
            .observables
            .iter()
            .zip(parallel.observables.iter())
            .find(|(a, b)| a != b)
            .map_or_else(
                || "observable line counts differ".to_string(),
                |(a, b)| format!("first divergence:\n  serial:   {a}\n  parallel: {b}"),
            );
        violations.push(Violation {
            invariant: "cross-driver",
            at_ms: end_ms,
            detail,
        });
    }
    // Perf-SLO oracles read wall-clock histograms, so their outcomes
    // may legitimately differ between the two runs; every other oracle
    // must agree exactly.
    let sv: Vec<_> = serial
        .violations
        .iter()
        .filter(|v| !v.invariant.starts_with("perf."))
        .collect();
    let pv: Vec<_> = parallel
        .violations
        .iter()
        .filter(|v| !v.invariant.starts_with("perf."))
        .collect();
    if sv != pv {
        violations.push(Violation {
            invariant: "cross-driver",
            at_ms: end_ms,
            detail: format!("oracle outcomes diverged: serial {sv:?} vs parallel {pv:?}"),
        });
    }
    CrossReport {
        serial,
        parallel,
        violations,
    }
}

/// The scenario's nominal end time in ms.
#[must_use]
pub fn last_ms(sc: &Scenario) -> u64 {
    let last_step = sc.steps.iter().map(|s| u64::from(s.at_ms)).max().unwrap_or(0);
    last_step + u64::from(sc.settle_ms)
}
