//! The extension base: discovers adaptation services, distributes
//! signed extensions, keeps their leases alive, revokes and replaces
//! them, and hands roaming nodes off to neighbour bases (paper §3.2).

use crate::catalog::Catalog;
use crate::durable::BaseWalOp;
use crate::package::SignedExtension;
use crate::proto::{MidasMsg, CHANNEL};
use pmp_discovery::{DiscoveryClient, DiscoveryEvent, ServiceQuery};
use pmp_durable::NamespaceHandle;
use pmp_net::{Incoming, NetPort, NodeId};
use pmp_telemetry::{Shared, Sink, Subsystem};
use pmp_trace::{TraceCtx, Traced, Tracer};
use std::collections::HashMap;

const SCAN_TAG: &str = "midas.scan";

/// Events surfaced by the base to its host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseEvent {
    /// A new adaptation service appeared; the catalog was delivered.
    NodeDiscovered {
        /// The node's advertised name.
        node_name: String,
        /// Number of extensions sent.
        delivered: usize,
    },
    /// A receiver acknowledged an installation.
    InstallAck {
        /// The node's name (if known).
        node_name: String,
        /// The extension.
        ext_id: String,
        /// Success flag.
        ok: bool,
        /// Failure reason when `ok` is false.
        reason: String,
    },
    /// An adapted node stopped appearing in lookups (left the area).
    NodeDeparted {
        /// The node's name.
        node_name: String,
    },
    /// A neighbour base told us one of its nodes roamed away.
    HandoffReceived {
        /// The roaming node's name.
        node_name: String,
        /// Extensions it held at the neighbour.
        ext_ids: Vec<String>,
    },
}

#[derive(Debug)]
pub(crate) struct AdaptedNode {
    pub(crate) node: NodeId,
    pub(crate) grants: HashMap<String, u64>,
    pub(crate) present: bool,
}

/// The extension-base state machine. Drive it by passing every
/// [`Incoming`] of its host node to [`ExtensionBase::handle`].
#[derive(Debug)]
pub struct ExtensionBase {
    node: NodeId,
    registrar: NodeId,
    discovery: DiscoveryClient,
    /// The catalog of extensions this base distributes.
    pub catalog: Catalog,
    lease_ns: u64,
    scan_interval_ns: u64,
    pub(crate) adapted: HashMap<String, AdaptedNode>,
    neighbors: Vec<NodeId>,
    pub(crate) next_grant: u64,
    pending_scan: Option<u64>,
    scan_token: Option<u64>,
    started: bool,
    events: Vec<BaseEvent>,
    /// Roaming records received from neighbours (node name → ext ids).
    pub roaming_cache: HashMap<String, Vec<String>>,
    telemetry: Option<Sink>,
    durable: Option<NamespaceHandle>,
    tracer: Option<Tracer>,
    /// Root context of the publish that last put each extension in the
    /// catalog, so every later ship of it (catalog delivery, dependency
    /// request, redelivery) joins the same adaptation span tree.
    publish_ctx: HashMap<String, TraceCtx>,
}

impl ExtensionBase {
    /// Creates a base on `node` that polls the registrar at
    /// `registrar` (usually the same node).
    pub fn new(node: NodeId, registrar: NodeId) -> Self {
        Self {
            node,
            registrar,
            discovery: DiscoveryClient::new(node),
            catalog: Catalog::new(),
            lease_ns: 4_000_000_000,      // 4 s extension leases
            scan_interval_ns: 1_000_000_000, // 1 s scan
            adapted: HashMap::new(),
            neighbors: Vec::new(),
            next_grant: 1,
            pending_scan: None,
            scan_token: None,
            started: false,
            events: Vec::new(),
            roaming_cache: HashMap::new(),
            telemetry: None,
            durable: None,
            tracer: None,
            publish_ctx: HashMap::new(),
        }
    }

    /// Attaches the host cell's span factory; ship spans are minted
    /// through it.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Logs every catalog and lease-table mutation to `handle`'s WAL
    /// namespace, making the base crash-recoverable (see
    /// [`crate::durable`]).
    pub fn attach_durable(&mut self, handle: NamespaceHandle) {
        self.durable = Some(handle);
    }

    fn log(&self, op: &BaseWalOp) {
        if let Some(d) = &self.durable {
            d.append(pmp_wire::to_bytes(op));
        }
    }

    /// Mirrors base activity into `shared` (`midas.base.*` counters,
    /// `midas.ship` journal events); the inner discovery client is
    /// attached too.
    pub fn attach_telemetry(&mut self, shared: &Shared) {
        self.attach_sink(Sink::direct(shared));
    }

    /// Routes telemetry through a per-cell [`Sink`] (sharded drivers
    /// buffer journal events and merge them at the epoch barrier).
    pub fn attach_sink(&mut self, sink: Sink) {
        self.discovery.attach_sink(sink.clone());
        self.telemetry = Some(sink);
    }

    fn count(&self, name: &str) {
        if let Some(s) = &self.telemetry {
            s.inc(name);
        }
    }

    /// Records an extension leaving the base toward `to` (the "ship"
    /// stage of the sign→ship→verify→weave distribution trail), and
    /// mints the `midas.ship` span under the extension's publish root.
    /// Returns the context the shipped message must carry.
    fn note_ship(&self, sim: &dyn NetPort, ext_id: &str, to: NodeId) -> TraceCtx {
        if let Some(s) = &self.telemetry {
            s.inc("midas.base.delivered");
            s.event(Subsystem::Midas, "midas.ship", format!("{ext_id} -> n{}", to.0));
        }
        let Some(t) = &self.tracer else {
            return TraceCtx::NIL;
        };
        let parent = self
            .publish_ctx
            .get(ext_id)
            .copied()
            .unwrap_or(TraceCtx::NIL);
        t.child(
            parent,
            sim.now().0,
            "midas.ship",
            &format!("{ext_id} -> n{}", to.0),
        )
    }

    /// Overrides the extension lease duration (ns).
    pub fn set_lease(&mut self, lease_ns: u64) {
        self.lease_ns = lease_ns;
    }

    /// Overrides the scan interval (ns).
    pub fn set_scan_interval(&mut self, ns: u64) {
        self.scan_interval_ns = ns;
    }

    /// Registers a neighbour base for roaming handoffs.
    pub fn add_neighbor(&mut self, base: NodeId) {
        self.neighbors.push(base);
    }

    /// Starts scanning. Idempotent.
    pub fn start(&mut self, sim: &mut dyn NetPort) {
        if self.started {
            return;
        }
        self.started = true;
        self.discovery.start(sim);
        self.scan(sim);
        self.scan_token = Some(sim.set_timer(self.node, self.scan_interval_ns, SCAN_TAG));
    }

    /// Names of currently adapted (present) nodes, sorted.
    pub fn adapted_nodes(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .adapted
            .iter()
            .filter(|(_, a)| a.present)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Drains accumulated events.
    pub fn take_events(&mut self) -> Vec<BaseEvent> {
        std::mem::take(&mut self.events)
    }

    fn fresh_grant(&mut self) -> u64 {
        let g = self.next_grant;
        self.next_grant += 1;
        g
    }

    fn scan(&mut self, sim: &mut dyn NetPort) {
        let req = self.discovery.lookup(
            sim,
            self.registrar,
            ServiceQuery::of_type("midas.adaptation"),
        );
        self.pending_scan = Some(req);
    }

    fn send(&self, sim: &mut dyn NetPort, to: NodeId, msg: &MidasMsg, ctx: TraceCtx) {
        sim.send(self.node, to, CHANNEL, ctx.wrap(msg));
    }

    fn deliver_catalog(&mut self, sim: &mut dyn NetPort, node: NodeId, node_name: &str) -> usize {
        let order = self.catalog.delivery_order();
        let mut grants = HashMap::new();
        let mut count = 0;
        for id in order {
            if let Some(ext) = self.catalog.get(&id).cloned() {
                let grant = self.fresh_grant();
                grants.insert(id.clone(), grant);
                let msg = MidasMsg::Deliver {
                    ext,
                    lease_ns: self.lease_ns,
                    grant,
                };
                let ctx = self.note_ship(sim, &id, node);
                self.send(sim, node, &msg, ctx);
                count += 1;
            }
        }
        self.log(&BaseWalOp::NodeAdapted {
            name: node_name.to_string(),
            node: node.0,
            grants: grants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        });
        self.adapted.insert(
            node_name.to_string(),
            AdaptedNode {
                node,
                grants,
                present: true,
            },
        );
        count
    }

    /// Installs (or upgrades) an extension in the catalog and pushes a
    /// [`MidasMsg::Replace`] to every adapted node that already holds an
    /// older instance — this is how "the local policy evolves" reaches
    /// robots already in the hall.
    pub fn update_extension(&mut self, sim: &mut dyn NetPort, ext: SignedExtension) {
        self.update_extension_traced(sim, ext, TraceCtx::NIL);
    }

    /// [`ExtensionBase::update_extension`] with the publish's trace
    /// context: every ship of this extension — now and later — becomes
    /// a child of `ctx`, so the whole adaptation reconstructs as one
    /// span tree.
    pub fn update_extension_traced(
        &mut self,
        sim: &mut dyn NetPort,
        ext: SignedExtension,
        ctx: TraceCtx,
    ) {
        let Ok(pkg) = ext.open() else { return };
        let id = pkg.meta.id.clone();
        if ctx.is_nil() {
            self.publish_ctx.remove(&id);
        } else {
            self.publish_ctx.insert(id.clone(), ctx);
        }
        self.catalog.put(ext.clone());
        self.log(&BaseWalOp::CatalogPut { ext: ext.clone() });
        let mut targets: Vec<(String, NodeId)> = self
            .adapted
            .iter()
            .filter(|(_, a)| a.present && a.grants.contains_key(&id))
            .map(|(name, a)| (name.clone(), a.node))
            .collect();
        // Name order: replacement sends must not follow hash order.
        targets.sort();
        for (name, node) in targets {
            let grant = self.fresh_grant();
            let msg = MidasMsg::Replace {
                old_id: id.clone(),
                ext: ext.clone(),
                lease_ns: self.lease_ns,
                grant,
            };
            let ship = self.note_ship(sim, &id, node);
            self.send(sim, node, &msg, ship);
            if let Some(a) = self.adapted.get_mut(&name) {
                a.grants.insert(id.clone(), grant);
            }
            self.log(&BaseWalOp::GrantSet {
                name,
                ext_id: id.clone(),
                grant,
            });
        }
    }

    /// Removes an extension from the catalog and revokes it everywhere.
    pub fn revoke_extension(&mut self, sim: &mut dyn NetPort, ext_id: &str, reason: &str) {
        self.catalog.remove(ext_id);
        self.publish_ctx.remove(ext_id);
        self.log(&BaseWalOp::Revoked {
            ext_id: ext_id.to_string(),
        });
        let mut targets: Vec<NodeId> = self
            .adapted
            .values()
            .filter(|a| a.present && a.grants.contains_key(ext_id))
            .map(|a| a.node)
            .collect();
        // Node order: revocation sends must not follow hash order.
        targets.sort_by_key(|n| n.0);
        for node in targets {
            let msg = MidasMsg::Revoke {
                ext_id: ext_id.to_string(),
                reason: reason.to_string(),
            };
            self.send(sim, node, &msg, TraceCtx::NIL);
            self.count("midas.base.revocations");
        }
        for a in self.adapted.values_mut() {
            a.grants.remove(ext_id);
        }
    }

    /// Processes one inbox entry of the host node.
    pub fn handle(&mut self, sim: &mut dyn NetPort, incoming: &Incoming) -> Vec<BaseEvent> {
        match incoming {
            Incoming::Timer { token, .. } if Some(*token) == self.scan_token => {
                self.scan(sim);
                self.scan_token =
                    Some(sim.set_timer(self.node, self.scan_interval_ns, SCAN_TAG));
            }
            Incoming::Message {
                from,
                channel,
                payload,
                ..
            } if &**channel == CHANNEL => {
                if let Ok(env) = pmp_wire::from_bytes::<Traced<MidasMsg>>(payload) {
                    self.handle_midas(sim, *from, env.msg);
                }
            }
            other => {
                // Everything else may belong to the discovery client.
                for ev in self.discovery.handle(sim, other) {
                    self.handle_discovery(sim, ev);
                }
            }
        }
        std::mem::take(&mut self.events)
    }

    fn handle_discovery(&mut self, sim: &mut dyn NetPort, ev: DiscoveryEvent) {
        if let DiscoveryEvent::LookupDone { req, items } = ev {
            if self.pending_scan != Some(req) {
                return;
            }
            self.pending_scan = None;
            let now = sim.now();
            let _ = now;
            // Mark presence.
            let mut present: HashMap<String, NodeId> = HashMap::new();
            for item in &items {
                present.insert(item.name.clone(), NodeId(item.provider));
            }
            // New nodes: deliver the catalog.
            let mut new_nodes: Vec<(String, NodeId)> = present
                .iter()
                .filter(|(name, _)| {
                    self.adapted.get(*name).is_none_or(|a| !a.present)
                })
                .map(|(n, id)| (n.clone(), *id))
                .collect();
            // Deliver in name order — catalog sends are observable.
            new_nodes.sort();
            for (name, node) in new_nodes {
                let delivered = self.deliver_catalog(sim, node, &name);
                self.events.push(BaseEvent::NodeDiscovered {
                    node_name: name,
                    delivered,
                });
            }
            // Known nodes still present: keep their leases alive.
            let mut renewals: Vec<(NodeId, Vec<u64>)> = self
                .adapted
                .iter()
                .filter(|(name, a)| a.present && present.contains_key(*name))
                .map(|(_, a)| {
                    let mut grants: Vec<u64> = a.grants.values().copied().collect();
                    grants.sort_unstable();
                    (a.node, grants)
                })
                .collect();
            renewals.sort_by_key(|(n, _)| n.0);
            for (node, grants) in renewals {
                for grant in grants {
                    let msg = MidasMsg::LeaseRenew { grant };
                    self.send(sim, node, &msg, TraceCtx::NIL);
                    self.count("midas.base.lease_renewals_sent");
                }
            }
            // Departed nodes: mark, event, and roam.
            let mut departed: Vec<String> = self
                .adapted
                .iter()
                .filter(|(name, a)| a.present && !present.contains_key(*name))
                .map(|(name, _)| name.clone())
                .collect();
            departed.sort();
            for name in departed {
                if let Some(a) = self.adapted.get_mut(&name) {
                    a.present = false;
                    let mut ext_ids: Vec<String> = a.grants.keys().cloned().collect();
                    // Sorted: these ids travel inside the handoff
                    // payload, so their order is byte-observable.
                    ext_ids.sort();
                    let neighbors = self.neighbors.clone();
                    for nb in neighbors {
                        let msg = MidasMsg::RoamingHandoff {
                            node_name: name.clone(),
                            ext_ids: ext_ids.clone(),
                        };
                        self.send(sim, nb, &msg, TraceCtx::NIL);
                    }
                }
                self.log(&BaseWalOp::Presence {
                    name: name.clone(),
                    present: false,
                });
                self.events.push(BaseEvent::NodeDeparted { node_name: name });
            }
        }
    }

    fn handle_midas(&mut self, sim: &mut dyn NetPort, from: NodeId, msg: MidasMsg) {
        match msg {
            MidasMsg::Ack {
                ext_id,
                grant,
                ok,
                reason,
            } => {
                if !ok && reason == "released" {
                    // The receiver dropped this grant on purpose
                    // (implicit dep released, upgrade, revocation):
                    // stop renewing it.
                    let dropped = self
                        .adapted
                        .iter_mut()
                        .find(|(_, a)| a.node == from)
                        .map(|(name, a)| {
                            a.grants.retain(|_, g| *g != grant);
                            name.clone()
                        });
                    if let Some(name) = dropped {
                        self.log(&BaseWalOp::GrantDropped { name, grant });
                    }
                    return;
                }
                if !ok && reason == "unknown grant" {
                    // The receiver no longer holds this grant (lost
                    // delivery, or our outage outlived its leases):
                    // redeliver that extension with a fresh grant.
                    let stale: Option<(String, String)> = self
                        .adapted
                        .iter()
                        .find(|(_, a)| a.node == from)
                        .and_then(|(name, a)| {
                            a.grants
                                .iter()
                                .find(|(_, g)| **g == grant)
                                .map(|(id, _)| (name.clone(), id.clone()))
                        });
                    if let Some((name, id)) = stale {
                        if let Some(ext) = self.catalog.get(&id).cloned() {
                            let fresh = self.fresh_grant();
                            if let Some(a) = self.adapted.get_mut(&name) {
                                a.grants.insert(id.clone(), fresh);
                            }
                            self.log(&BaseWalOp::GrantSet {
                                name,
                                ext_id: id.clone(),
                                grant: fresh,
                            });
                            let msg = MidasMsg::Deliver {
                                ext,
                                lease_ns: self.lease_ns,
                                grant: fresh,
                            };
                            let ship = self.note_ship(sim, &id, from);
                            self.send(sim, from, &msg, ship);
                        }
                    }
                    return;
                }
                let node_name = self
                    .adapted
                    .iter()
                    .find(|(_, a)| a.node == from)
                    .map(|(n, _)| n.clone())
                    .unwrap_or_else(|| from.to_string());
                self.events.push(BaseEvent::InstallAck {
                    node_name,
                    ext_id,
                    ok,
                    reason,
                });
            }
            MidasMsg::RequestDep { ext_id } => {
                // Deliver the dependency closure of the requested id.
                for id in self.catalog.closure_of(&ext_id) {
                    if let Some(ext) = self.catalog.get(&id).cloned() {
                        let grant = self.fresh_grant();
                        let holder = self
                            .adapted
                            .iter_mut()
                            .find(|(_, a)| a.node == from)
                            .map(|(name, a)| {
                                a.grants.insert(id.clone(), grant);
                                name.clone()
                            });
                        if let Some(name) = holder {
                            self.log(&BaseWalOp::GrantSet {
                                name,
                                ext_id: id.clone(),
                                grant,
                            });
                        }
                        let msg = MidasMsg::Deliver {
                            ext,
                            lease_ns: self.lease_ns,
                            grant,
                        };
                        let ship = self.note_ship(sim, &id, from);
                        self.send(sim, from, &msg, ship);
                    }
                }
            }
            MidasMsg::RoamingHandoff { node_name, ext_ids } => {
                self.roaming_cache
                    .insert(node_name.clone(), ext_ids.clone());
                self.log(&BaseWalOp::Roamed {
                    name: node_name.clone(),
                    ext_ids: ext_ids.clone(),
                });
                self.events
                    .push(BaseEvent::HandoffReceived { node_name, ext_ids });
            }
            // Receiver-bound messages are ignored by the base.
            MidasMsg::Deliver { .. }
            | MidasMsg::LeaseRenew { .. }
            | MidasMsg::Revoke { .. }
            | MidasMsg::Replace { .. } => {}
        }
    }
}
