//! Pass 4 of the admission pipeline — aspect-interference analysis.
//!
//! Weaving is compositional in mechanism but not in meaning: two
//! aspects that are each correct in isolation can interfere once both
//! are active. The analyzer inspects the runtime's *live* dispatch
//! tables (not the aspects' patterns — after a weave the tables are the
//! ground truth of which advice fires where) and reports:
//!
//! * **shared field writes** — two aspects advise `set` on the same
//!   concrete field: both may rewrite the stored value and the
//!   last-woven aspect silently wins;
//! * **ambiguous ordering** — two aspects advise the same join point
//!   with the same advice kind at *equal* priority: their relative
//!   order is an accident of weave order rather than a declared
//!   contract (distinct priorities order deterministically and are not
//!   flagged).
//!
//! Reports are advisory by default; `midas::policy` can escalate them
//! to rejection (`reject_on_interference`), in which case the receiver
//! unweaves the newcomer again.

use crate::runtime::{AdviceRef, State};
use pmp_vm::vm::Vm;
use std::collections::BTreeMap;
use std::fmt;

/// What kind of interference was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterferenceKind {
    /// Two aspects advise `set` on the same field — both can rewrite
    /// the stored value.
    SharedFieldWrite,
    /// Two aspects advise the same join point with the same advice
    /// kind at equal priority — execution order is weave-order.
    AmbiguousOrder,
}

impl fmt::Display for InterferenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterferenceKind::SharedFieldWrite => "shared-field-write",
            InterferenceKind::AmbiguousOrder => "ambiguous-order",
        })
    }
}

/// One detected interference between two woven aspects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interference {
    /// What kind.
    pub kind: InterferenceKind,
    /// Name of the first (earlier-woven) aspect.
    pub aspect_a: String,
    /// Name of the second aspect.
    pub aspect_b: String,
    /// The contested join point (`Class.field` or a method signature).
    pub site: String,
    /// Human-readable explanation.
    pub detail: String,
}

/// Emits one record per unordered pair of distinct aspects advising
/// `site`. For field-set sites every pair interferes; elsewhere only
/// equal-priority pairs do.
fn pairs(
    out: &mut Vec<Interference>,
    advisers: &[AdviceRef],
    site: &str,
    kind: InterferenceKind,
) {
    for (i, a) in advisers.iter().enumerate() {
        for b in &advisers[i + 1..] {
            if a.aspect.id == b.aspect.id {
                continue;
            }
            let conflict = match kind {
                InterferenceKind::SharedFieldWrite => true,
                InterferenceKind::AmbiguousOrder => a.priority == b.priority,
            };
            if !conflict {
                continue;
            }
            let detail = match kind {
                InterferenceKind::SharedFieldWrite => format!(
                    "aspects {:?} and {:?} both advise writes of {site}; the last-woven value wins",
                    a.aspect.name, b.aspect.name
                ),
                InterferenceKind::AmbiguousOrder => format!(
                    "aspects {:?} and {:?} advise {site} at equal priority {}; their order is weave-order",
                    a.aspect.name, b.aspect.name, a.priority
                ),
            };
            out.push(Interference {
                kind,
                aspect_a: a.aspect.name.clone(),
                aspect_b: b.aspect.name.clone(),
                site: site.to_string(),
                detail,
            });
        }
    }
}

/// Walks the dispatch tables and reports every interference.
pub(crate) fn report(state: &State, vm: &Vm) -> Vec<Interference> {
    let mut out = Vec::new();

    // Field names resolve through the VM's field table.
    let field_names: BTreeMap<u32, String> = vm
        .fields()
        .map(|(fid, class, field, _)| (fid.0, format!("{class}.{field}")))
        .collect();
    let field_site = |fid: u32| {
        field_names
            .get(&fid)
            .cloned()
            .unwrap_or_else(|| format!("field#{fid}"))
    };

    // Deterministic iteration: sort sites before pairing.
    let mut field_sets: Vec<_> = state.field_set.iter().collect();
    field_sets.sort_by_key(|(fid, _)| fid.0);
    for (fid, advisers) in field_sets {
        pairs(
            &mut out,
            advisers,
            &field_site(fid.0),
            InterferenceKind::SharedFieldWrite,
        );
    }

    let mut field_gets: Vec<_> = state.field_get.iter().collect();
    field_gets.sort_by_key(|(fid, _)| fid.0);
    for (fid, advisers) in field_gets {
        let site = format!("get {}", field_site(fid.0));
        pairs(&mut out, advisers, &site, InterferenceKind::AmbiguousOrder);
    }

    for (label, table) in [("entry", &state.entry), ("exit", &state.exit)] {
        let mut sites: Vec<_> = table.iter().collect();
        sites.sort_by_key(|(mid, _)| mid.0);
        for (mid, advisers) in sites {
            let site = format!("{label} {}", vm.method_sig(*mid));
            pairs(&mut out, advisers, &site, InterferenceKind::AmbiguousOrder);
        }
    }

    out
}
