//! # pmp-extensions — the paper's extension library
//!
//! Ready-made, signed-and-shippable extension packages implementing
//! every adaptation the paper describes:
//!
//! | module | paper reference |
//! |---|---|
//! | [`monitoring`] | Fig. 5 — hardware monitoring & logging to the base DB |
//! | [`session`] | §3.3 — implicit session management (caller extraction) |
//! | [`access_control`] | §3.3 / §4.6 — deny unauthorized service calls |
//! | [`encryption`] | §2.3 / §3.3 — encrypt `send*`/decrypt `recv*` byte arrays |
//! | [`persistence`] | §4.6 — orthogonal persistence of field writes |
//! | [`transactions`] | §4.6 — ad-hoc all-or-nothing method execution |
//! | [`billing`] | §1 — accounting for service use in a location |
//! | [`geofence`] | §4.5 "Control" — forbid movements beyond coordinates |
//! | [`replication`] | §4.5 — mirror movements to a remote identical robot |
//! | [`replay`] | §4.5 "Simulation" — replay recorded movement sequences |
//! | [`agegate`] | §4.6 — trust grows with device age |
//!
//! Every extension is a **script aspect**: its advice is portable VM
//! bytecode, so MIDAS can sign it, ship it over the simulated radio,
//! and the receiver runs it inside the PROSE sandbox with exactly the
//! permissions its signer is allowed to grant. Side effects go through
//! named system operations (`monitor.post`, `session.get`, ...) that the
//! hosting platform provides — see [`support`].

pub mod access_control;
pub mod agegate;
pub mod billing;
pub mod encryption;
pub mod geofence;
pub mod monitoring;
pub mod persistence;
pub mod replay;
pub mod replication;
pub mod session;
pub mod support;
pub mod transactions;
