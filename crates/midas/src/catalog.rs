//! The base station's extension catalog.

use crate::package::SignedExtension;
use std::collections::HashMap;

/// Holds the signed extensions a base distributes, with dependency
/// resolution and versioning.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    by_id: HashMap<String, SignedExtension>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces, if the version is not lower) an extension.
    /// Returns the previous entry when replaced.
    pub fn put(&mut self, ext: SignedExtension) -> Option<SignedExtension> {
        let Ok(pkg) = ext.open() else {
            return None; // unreadable packages are not catalogued
        };
        if let Some(existing) = self.by_id.get(&pkg.meta.id) {
            if let Ok(old) = existing.open() {
                if old.meta.version > pkg.meta.version {
                    return None; // refuse downgrades
                }
            }
        }
        self.by_id.insert(pkg.meta.id.clone(), ext)
    }

    /// Removes an extension by id.
    pub fn remove(&mut self, id: &str) -> Option<SignedExtension> {
        self.by_id.remove(id)
    }

    /// Looks up an extension by id.
    pub fn get(&self, id: &str) -> Option<&SignedExtension> {
        self.by_id.get(id)
    }

    /// All ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.by_id.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Number of catalogued extensions.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Returns `true` if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// The delivery order for the whole catalog: dependencies before
    /// dependents (topological; stable by id for determinism). Missing
    /// dependencies are skipped — the receiver will `RequestDep` them.
    ///
    /// Implicit extensions are never roots: they are included only when
    /// some non-implicit extension requires them (the paper's "when an
    /// extension that requires session information is added to a node,
    /// the session management extension is automatically also added").
    pub fn delivery_order(&self) -> Vec<String> {
        let mut order = Vec::new();
        let mut visiting = std::collections::HashSet::new();
        let mut done = std::collections::HashSet::new();
        let ids = self.ids();
        for id in &ids {
            let implicit = self
                .by_id
                .get(id)
                .and_then(|e| e.open().ok())
                .is_some_and(|p| p.meta.implicit);
            if !implicit {
                self.visit(id, &mut visiting, &mut done, &mut order);
            }
        }
        order
    }

    /// The delivery order for one extension and its dependency closure.
    pub fn closure_of(&self, id: &str) -> Vec<String> {
        let mut order = Vec::new();
        let mut visiting = std::collections::HashSet::new();
        let mut done = std::collections::HashSet::new();
        self.visit(id, &mut visiting, &mut done, &mut order);
        order
    }

    fn visit(
        &self,
        id: &str,
        visiting: &mut std::collections::HashSet<String>,
        done: &mut std::collections::HashSet<String>,
        order: &mut Vec<String>,
    ) {
        if done.contains(id) || !visiting.insert(id.to_string()) {
            return; // done, or dependency cycle — break it
        }
        if let Some(ext) = self.by_id.get(id) {
            if let Ok(pkg) = ext.open() {
                for dep in &pkg.meta.requires {
                    self.visit(dep, visiting, done, order);
                }
            }
            order.push(id.to_string());
        }
        visiting.remove(id);
        done.insert(id.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{ExtensionMeta, ExtensionPackage};
    use pmp_crypto::KeyPair;
    use pmp_prose::{Aspect, PortableAspect, PortableClass};

    fn ext(id: &str, version: u32, requires: Vec<String>) -> SignedExtension {
        let aspect = Aspect::script(
            id.to_string(),
            PortableClass {
                name: format!("C{}", id.replace('/', "_")),
                fields: vec![],
                methods: vec![],
            },
            vec![],
        );
        let pkg = ExtensionPackage {
            meta: ExtensionMeta {
                id: id.into(),
                version,
                description: String::new(),
                requires,
                permissions: vec![],
                implicit: false,
            },
            aspect: PortableAspect::try_from(&aspect).unwrap(),
        };
        SignedExtension::seal("a", &KeyPair::from_seed(b"a"), &pkg)
    }

    #[test]
    fn put_get_remove() {
        let mut c = Catalog::new();
        c.put(ext("mon", 1, vec![]));
        assert_eq!(c.len(), 1);
        assert!(c.get("mon").is_some());
        assert!(c.remove("mon").is_some());
        assert!(c.is_empty());
    }

    #[test]
    fn versioning_refuses_downgrade() {
        let mut c = Catalog::new();
        c.put(ext("mon", 2, vec![]));
        c.put(ext("mon", 1, vec![]));
        assert_eq!(c.get("mon").unwrap().open().unwrap().meta.version, 2);
        c.put(ext("mon", 3, vec![]));
        assert_eq!(c.get("mon").unwrap().open().unwrap().meta.version, 3);
    }

    #[test]
    fn delivery_order_respects_dependencies() {
        let mut c = Catalog::new();
        c.put(ext("access-control", 1, vec!["session".into()]));
        c.put(ext("session", 1, vec![]));
        c.put(ext("monitoring", 1, vec![]));
        let order = c.delivery_order();
        let pos = |id: &str| order.iter().position(|x| x == id).unwrap();
        assert!(pos("session") < pos("access-control"));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn closure_of_single_extension() {
        let mut c = Catalog::new();
        c.put(ext("a", 1, vec!["b".into()]));
        c.put(ext("b", 1, vec!["c".into()]));
        c.put(ext("c", 1, vec![]));
        c.put(ext("unrelated", 1, vec![]));
        assert_eq!(c.closure_of("a"), ["c", "b", "a"]);
    }

    #[test]
    fn dependency_cycles_do_not_hang() {
        let mut c = Catalog::new();
        c.put(ext("a", 1, vec!["b".into()]));
        c.put(ext("b", 1, vec!["a".into()]));
        let order = c.delivery_order();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn missing_dependencies_are_skipped() {
        let mut c = Catalog::new();
        c.put(ext("a", 1, vec!["ghost".into()]));
        assert_eq!(c.closure_of("a"), ["a"]);
    }
}
