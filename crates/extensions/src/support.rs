//! Shared plumbing: the advice-parameter convention, class-name
//! versioning, and host-side system operations extensions rely on.

use pmp_telemetry::sync::Mutex;
use pmp_vm::perm::Permission;
use pmp_vm::prelude::{Value, Vm};
use std::collections::HashMap;
use std::sync::Arc;

/// The 5-parameter advice signature, in display form
/// (see `pmp_prose::runtime` for the slot meanings).
pub fn advice_params() -> Vec<String> {
    vec![
        "any".into(),
        "str".into(),
        "any".into(),
        "any".into(),
        "any".into(),
    ]
}

/// Aspect class names embed the version: replacing an extension ships a
/// *differently named* class, since a VM's classes are immutable once
/// registered.
pub fn versioned_class(base: &str, version: u32) -> String {
    format!("{base}_v{version}")
}

/// Registers the session blackboard: `session.set(key, value)` and
/// `session.get(key) -> value` — the channel through which the implicit
/// session-management extension hands the caller identity to dependent
/// extensions like access control (paper §3.3).
///
/// Returns the shared map so the host can inspect or pre-seed it.
pub fn register_session_blackboard(vm: &mut Vm) -> Arc<Mutex<HashMap<String, Value>>> {
    let board: Arc<Mutex<HashMap<String, Value>>> = Arc::new(Mutex::new(HashMap::new()));
    let b1 = board.clone();
    vm.register_sys(
        "session.set",
        None,
        Arc::new(move |_vm, args: Vec<Value>| {
            if let Some(Value::Str(key)) = args.first() {
                let value = args.get(1).cloned().unwrap_or(Value::Null);
                b1.lock().insert(key.to_string(), value);
            }
            Ok(Value::Null)
        }),
    );
    let b2 = board.clone();
    vm.register_sys(
        "session.get",
        None,
        Arc::new(move |_vm, args: Vec<Value>| {
            let Some(Value::Str(key)) = args.first() else {
                return Ok(Value::Null);
            };
            Ok(b2.lock().get(&**key).cloned().unwrap_or(Value::Null))
        }),
    );
    board
}

/// A recorded host-side post (monitoring, replication, billing,
/// persistence all funnel through sinks like this in tests and in the
/// platform).
#[derive(Debug, Clone, PartialEq)]
pub struct Posted {
    /// The system-operation name that received it.
    pub op: String,
    /// The raw arguments.
    pub args: Vec<Value>,
}

/// Registers a recording sink for `op` guarded by `perm`; returns the
/// record list. Used by tests and by hosts that just want the data.
pub fn register_sink(
    vm: &mut Vm,
    op: &str,
    perm: Option<Permission>,
) -> Arc<Mutex<Vec<Posted>>> {
    let log: Arc<Mutex<Vec<Posted>>> = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    let name = op.to_string();
    vm.register_sys(
        op,
        perm,
        Arc::new(move |_vm, args: Vec<Value>| {
            l.lock().push(Posted {
                op: name.clone(),
                args,
            });
            Ok(Value::Null)
        }),
    );
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::prelude::VmConfig;

    #[test]
    fn blackboard_set_get() {
        let mut vm = Vm::new(VmConfig::default());
        let board = register_session_blackboard(&mut vm);
        vm.sys(
            "session.set",
            vec![Value::str("caller"), Value::str("operator:7")],
        )
        .unwrap();
        let got = vm.sys("session.get", vec![Value::str("caller")]).unwrap();
        assert_eq!(got, Value::str("operator:7"));
        assert_eq!(board.lock().len(), 1);
        let missing = vm.sys("session.get", vec![Value::str("nope")]).unwrap();
        assert_eq!(missing, Value::Null);
    }

    #[test]
    fn sink_records_posts() {
        let mut vm = Vm::new(VmConfig::default());
        let log = register_sink(&mut vm, "monitor.post", None);
        vm.sys("monitor.post", vec![Value::str("motor:A"), Value::Int(30)])
            .unwrap();
        let posts = log.lock();
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].args[1], Value::Int(30));
    }

    #[test]
    fn versioned_class_names() {
        assert_eq!(versioned_class("HwMonitoring", 3), "HwMonitoring_v3");
    }
}
