//! The platform: owns the simulated world and drives every node's
//! protocol stacks — the glue that turns the substrate crates into the
//! paper's running system.

use crate::node::{BaseStation, MobileNode};
use crate::wiring::{AppMsg, RpcMsg, APP_CHANNEL, MIRROR_CHANNEL, RPC_CHANNEL};
use pmp_midas::{ReceiverEvent, ReceiverPolicy};
use pmp_net::{AreaId, Incoming, Position, SimTime, Simulator};
use pmp_store::MovementRecord;
use pmp_vm::perm::Permissions;
use pmp_vm::prelude::{Value, VmError};
use std::sync::Arc;

/// Index of a base station within a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseId(pub usize);

/// Index of a mobile node within a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobId(pub usize);

/// A completed remote call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcOutcome {
    /// The request id returned by [`Platform::rpc`].
    pub req: u64,
    /// Whether the call completed normally.
    pub ok: bool,
    /// Display form of the result (or the error text).
    pub value: String,
}

/// The proactive middleware platform over one simulated world.
///
/// # Examples
///
/// ```
/// use pmp_core::{Platform};
/// use pmp_net::Position;
/// use pmp_vm::perm::Permissions;
///
/// # fn main() -> Result<(), pmp_vm::VmError> {
/// let mut p = Platform::new(7);
/// p.add_area("hall-a", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
/// let base = p.add_base("hall-a", Position::new(30.0, 30.0), 80.0);
/// let policy = p.trusting_policy(&[base], Permissions::all());
/// let robot = p.add_robot("robot:1:1", Position::new(40.0, 30.0), 80.0, policy)?;
/// p.pump_millis(3_000);
/// assert!(p.node(robot).name == "robot:1:1");
/// # Ok(())
/// # }
/// ```
pub struct Platform {
    /// The simulated world.
    pub sim: Simulator,
    bases: Vec<BaseStation>,
    nodes: Vec<MobileNode>,
    next_req: u64,
    rpc_outcomes: Vec<RpcOutcome>,
    telemetry: pmp_telemetry::Shared,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("bases", &self.bases.len())
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl Platform {
    /// Creates a platform over a fresh deterministic world.
    pub fn new(seed: u64) -> Platform {
        Self::with_link(seed, pmp_net::LinkModel::default())
    }

    /// Creates a platform with an explicit radio link model (lossy
    /// worlds for failure testing).
    pub fn with_link(seed: u64, link: pmp_net::LinkModel) -> Platform {
        let telemetry = pmp_telemetry::Shared::new();
        let mut sim = Simulator::with_link(seed, link);
        sim.attach_telemetry(&telemetry);
        Platform {
            sim,
            bases: Vec::new(),
            nodes: Vec::new(),
            next_req: 1,
            rpc_outcomes: Vec::new(),
            telemetry,
        }
    }

    /// The platform-wide telemetry (sim-clocked registry + journal):
    /// the network simulator, every registrar, every extension base,
    /// and every adaptation service record into it. Per-node VM
    /// metrics live in each node's own registry
    /// ([`MobileNode::vm`]'s `telemetry()`).
    pub fn telemetry(&self) -> &pmp_telemetry::Shared {
        &self.telemetry
    }

    /// Renders the platform registry plus every node's VM registry as
    /// one text report — the per-scenario telemetry summary.
    pub fn render_telemetry(&self) -> String {
        let mut out = String::new();
        out.push_str("== platform ==\n");
        out.push_str(&self.telemetry.render_table());
        for n in &self.nodes {
            out.push_str(&format!("== vm {} ==\n", n.name));
            out.push_str(&n.vm.telemetry().render_table());
        }
        out
    }

    /// Adds a rectangular area (production hall).
    pub fn add_area(&mut self, name: &str, min: Position, max: Position) -> AreaId {
        self.sim.add_area(name, min, max)
    }

    /// Adds a base station for `hall` at `pos`; its registrar and
    /// extension base start immediately.
    pub fn add_base(&mut self, hall: &str, pos: Position, range: f64) -> BaseId {
        let node = self.sim.add_node(format!("base:{hall}"), pos, range);
        let mut station = BaseStation::build(node, hall, format!("seed:{hall}").as_bytes());
        station.registrar.attach_telemetry(&self.telemetry);
        station.base.attach_telemetry(&self.telemetry);
        station.registrar.start(&mut self.sim);
        station.base.start(&mut self.sim);
        self.bases.push(station);
        BaseId(self.bases.len() - 1)
    }

    /// A receiver policy trusting the given bases' authorities, each
    /// capped at `cap`.
    pub fn trusting_policy(&self, bases: &[BaseId], cap: Permissions) -> ReceiverPolicy {
        let mut policy = ReceiverPolicy::new();
        for b in bases {
            let principal = self.bases[b.0].principal();
            policy.set_signer_cap(principal.name.clone(), cap);
            policy.trust.add(principal);
        }
        policy
    }

    fn add_mobile(
        &mut self,
        name: &str,
        pos: Position,
        range: f64,
        policy: ReceiverPolicy,
        with_robot: bool,
    ) -> Result<MobId, VmError> {
        let node = self.sim.add_node(name, pos, range);
        let clock = self.sim.clock();
        let clock_fn: Arc<dyn Fn() -> u64 + Send + Sync> = Arc::new(move || clock.now().0);
        let mut mobile = MobileNode::build(node, name, policy, clock_fn, with_robot)?;
        mobile.receiver.attach_telemetry(&self.telemetry);
        mobile.receiver.start(&mut self.sim);
        self.nodes.push(mobile);
        Ok(MobId(self.nodes.len() - 1))
    }

    /// Adds a robot node (plotter hardware + drawing service).
    ///
    /// # Errors
    ///
    /// VM registration failures.
    pub fn add_robot(
        &mut self,
        name: &str,
        pos: Position,
        range: f64,
        policy: ReceiverPolicy,
    ) -> Result<MobId, VmError> {
        self.add_mobile(name, pos, range, policy, true)
    }

    /// Adds a bare mobile node (e.g. a PDA) without robot hardware.
    ///
    /// # Errors
    ///
    /// VM registration failures.
    pub fn add_device(
        &mut self,
        name: &str,
        pos: Position,
        range: f64,
        policy: ReceiverPolicy,
    ) -> Result<MobId, VmError> {
        self.add_mobile(name, pos, range, policy, false)
    }

    /// Immutable base access.
    pub fn base(&self, id: BaseId) -> &BaseStation {
        &self.bases[id.0]
    }

    /// Mutable base access.
    pub fn base_mut(&mut self, id: BaseId) -> &mut BaseStation {
        &mut self.bases[id.0]
    }

    /// Immutable mobile-node access.
    pub fn node(&self, id: MobId) -> &MobileNode {
        &self.nodes[id.0]
    }

    /// Mutable mobile-node access.
    pub fn node_mut(&mut self, id: MobId) -> &mut MobileNode {
        &mut self.nodes[id.0]
    }

    /// Moves a mobile node.
    pub fn move_node(&mut self, id: MobId, pos: Position) {
        let node = self.nodes[id.0].node;
        self.sim.move_node(node, pos);
    }

    /// Seals `pkg` with `base`'s authority and adds it to the catalog;
    /// nodes already adapted receive a live replacement
    /// ([`pmp_midas::base::ExtensionBase::update_extension`]).
    pub fn publish_extension(&mut self, base: BaseId, pkg: &pmp_midas::ExtensionPackage) {
        let sign_start = std::time::Instant::now();
        let sealed = self.bases[base.0].seal(pkg);
        let ns = sign_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.telemetry.record("midas.base.sign_ns", ns);
        self.telemetry.event(
            pmp_telemetry::Subsystem::Midas,
            "midas.sign",
            format!("{} by {}", pkg.meta.id, sealed.signer()),
        );
        self.bases[base.0]
            .base
            .update_extension(&mut self.sim, sealed);
    }

    /// Revokes an extension hall-wide: removed from the catalog and
    /// withdrawn from every adapted node.
    pub fn revoke_extension(&mut self, base: BaseId, ext_id: &str, reason: &str) {
        self.bases[base.0]
            .base
            .revoke_extension(&mut self.sim, ext_id, reason);
    }

    /// Makes two bases roaming neighbours (both directions): when a node
    /// departs one, the other receives a handoff record (paper §3.2's
    /// "simple roaming algorithm").
    pub fn link_bases(&mut self, a: BaseId, b: BaseId) {
        let (na, nb) = (self.bases[a.0].node, self.bases[b.0].node);
        self.bases[a.0].base.add_neighbor(nb);
        self.bases[b.0].base.add_neighbor(na);
    }

    /// Routes movements of `source_robot` (as observed by `base`) to a
    /// replica robot, scaled by `num/den` (paper §4.5 remote
    /// replication).
    pub fn mirror(&mut self, base: BaseId, source_robot: &str, replica: MobId, num: i64, den: i64) {
        assert!(den != 0, "scale denominator must be nonzero");
        let replica_node = self.nodes[replica.0].node;
        self.bases[base.0]
            .mirrors
            .entry(source_robot.to_string())
            .or_default()
            .push((replica_node, num, den));
    }

    /// Issues a remote service call to `target` from `base`'s node
    /// (Fig. 2: the remote invocation of `m_R`). The outcome arrives in
    /// [`Platform::take_rpc_outcomes`] after pumping.
    pub fn rpc(
        &mut self,
        base: BaseId,
        target: MobId,
        caller: &str,
        class: &str,
        method: &str,
        args: Vec<i64>,
    ) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        let msg = RpcMsg::Call {
            caller: caller.to_string(),
            class: class.to_string(),
            method: method.to_string(),
            args,
            req,
        };
        let from = self.bases[base.0].node;
        let to = self.nodes[target.0].node;
        self.sim.send(from, to, RPC_CHANNEL, pmp_wire::to_bytes(&msg));
        req
    }

    /// Drains completed remote calls.
    pub fn take_rpc_outcomes(&mut self) -> Vec<RpcOutcome> {
        std::mem::take(&mut self.rpc_outcomes)
    }

    /// Pumps the world for `ns` of simulated time, dispatching every
    /// node's inbox and flushing outboxes.
    pub fn pump(&mut self, ns: u64) {
        let until = self.sim.now().plus(ns);
        loop {
            match self.sim.peek_next() {
                Some(t) if t <= until => {
                    self.sim.step();
                }
                _ => break,
            }
            self.dispatch_all();
        }
        if self.sim.now() < until {
            self.sim.run_until(until);
        }
    }

    /// Pumps for `ms` milliseconds of simulated time.
    pub fn pump_millis(&mut self, ms: u64) {
        self.pump(ms * 1_000_000);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn dispatch_all(&mut self) {
        // Base stations.
        for i in 0..self.bases.len() {
            let node = self.bases[i].node;
            let inbox = self.sim.drain_inbox(node);
            for inc in inbox {
                self.bases[i].registrar.handle(&mut self.sim, &inc);
                let evs = self.bases[i].base.handle(&mut self.sim, &inc);
                self.bases[i].events.extend(evs);
                self.handle_base_app(i, &inc);
            }
        }
        // Mobile nodes.
        for i in 0..self.nodes.len() {
            let node = self.nodes[i].node;
            let inbox = self.sim.drain_inbox(node);
            for inc in inbox {
                {
                    let n = &mut self.nodes[i];
                    let evs = n.receiver.handle(&mut self.sim, &mut n.vm, &n.prose, &inc);
                    for e in &evs {
                        if let ReceiverEvent::Installed { base, .. } = e {
                            n.home_base = Some(*base);
                        }
                    }
                    n.events.extend(evs);
                }
                self.handle_node_channels(i, &inc);
            }
            self.flush_outbox(i);
        }
    }

    fn handle_base_app(&mut self, i: usize, inc: &Incoming) {
        let Incoming::Message {
            channel, payload, ..
        } = inc
        else {
            return;
        };
        if &**channel == RPC_CHANNEL {
            if let Ok(RpcMsg::Reply { req, ok, value }) = pmp_wire::from_bytes::<RpcMsg>(payload) {
                self.rpc_outcomes.push(RpcOutcome { req, ok, value });
            }
            return;
        }
        if &**channel != APP_CHANNEL {
            return;
        }
        let Ok(msg) = pmp_wire::from_bytes::<AppMsg>(payload) else {
            return;
        };
        match msg {
            AppMsg::Monitor { record } => {
                self.bases[i].store.append(record);
            }
            AppMsg::Replicate { record } => {
                self.bases[i].store.append(record.clone());
                let routes = self.bases[i]
                    .mirrors
                    .get(&record.robot)
                    .cloned()
                    .unwrap_or_default();
                let from = self.bases[i].node;
                for (replica, num, den) in routes {
                    let mut scaled = record.clone();
                    for a in &mut scaled.args {
                        *a = *a * num / den;
                    }
                    self.sim
                        .send(from, replica, MIRROR_CHANNEL, pmp_wire::to_bytes(&scaled));
                }
            }
            AppMsg::Charge {
                robot,
                reason,
                amount,
            } => {
                self.bases[i].charges.push((robot, reason, amount));
            }
            AppMsg::Persist { robot, key, value } => {
                self.bases[i].persisted.push((robot, key, value));
            }
        }
    }

    fn handle_node_channels(&mut self, i: usize, inc: &Incoming) {
        let Incoming::Message {
            from,
            channel,
            payload,
            ..
        } = inc
        else {
            return;
        };
        if &**channel == MIRROR_CHANNEL {
            if let Ok(record) = pmp_wire::from_bytes::<MovementRecord>(payload) {
                let n = &mut self.nodes[i];
                // Mirror application errors (frozen hardware etc.) are
                // isolated: a broken replica must not wedge the pump.
                let _ = pmp_extensions::replication::mirror_record(
                    &mut n.vm, &n.motors, &record, 1, 1,
                );
            }
            return;
        }
        if &**channel != RPC_CHANNEL {
            return;
        }
        let Ok(msg) = pmp_wire::from_bytes::<RpcMsg>(payload) else {
            return;
        };
        match msg {
            RpcMsg::Call {
                caller,
                class,
                method,
                args,
                req,
            } => {
                let reply = {
                    let n = &mut self.nodes[i];
                    *n.wiring.caller.lock() = caller;
                    let result = match n.services.get(&class).cloned() {
                        Some(svc) => n.vm.call(
                            &class,
                            &method,
                            svc,
                            args.into_iter().map(Value::Int).collect(),
                        ),
                        None => Err(VmError::link(format!("no service {class:?}"))),
                    };
                    *n.wiring.caller.lock() = String::new();
                    match result {
                        Ok(v) => RpcMsg::Reply {
                            req,
                            ok: true,
                            value: v.to_string(),
                        },
                        Err(e) => RpcMsg::Reply {
                            req,
                            ok: false,
                            value: e.to_string(),
                        },
                    }
                };
                let node = self.nodes[i].node;
                self.sim.send(node, *from, RPC_CHANNEL, pmp_wire::to_bytes(&reply));
            }
            RpcMsg::Reply { req, ok, value } => {
                self.rpc_outcomes.push(RpcOutcome { req, ok, value });
            }
        }
    }

    fn flush_outbox(&mut self, i: usize) {
        let msgs: Vec<AppMsg> = {
            let n = &self.nodes[i];
            let mut outbox = n.wiring.outbox.lock();
            if outbox.is_empty() {
                return;
            }
            // Without a home base the data stays queued locally
            // ("first locally stored", §4.4).
            if n.home_base.is_none() {
                return;
            }
            outbox.drain(..).collect()
        };
        let node = self.nodes[i].node;
        let home = self.nodes[i].home_base.expect("checked above");
        for m in msgs {
            self.sim.send(node, home, APP_CHANNEL, pmp_wire::to_bytes(&m));
        }
    }
}
