//! Leases: time-bounded grants that must be renewed to stay alive
//! (the Jini model the paper relies on for locality of adaptations).

use pmp_net::SimTime;

/// A lease on a resource, valid until `expires`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Grant duration for each renewal, in nanoseconds.
    pub duration_ns: u64,
    /// Current expiry instant.
    pub expires: SimTime,
}

impl Lease {
    /// Grants a fresh lease of `duration_ns` starting at `now`.
    pub fn grant(now: SimTime, duration_ns: u64) -> Self {
        Self {
            duration_ns,
            expires: now.plus(duration_ns),
        }
    }

    /// Has the lease lapsed at `now`?
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires
    }

    /// Extends the lease from `now` by the original duration.
    /// Returns `false` (and leaves the lease unchanged) if it had
    /// already expired — lapsed leases cannot be revived.
    pub fn renew(&mut self, now: SimTime) -> bool {
        if self.expired(now) {
            return false;
        }
        self.expires = now.plus(self.duration_ns);
        true
    }

    /// Nanoseconds of validity remaining at `now`.
    pub fn remaining(&self, now: SimTime) -> u64 {
        self.expires.since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_expiry() {
        let l = Lease::grant(SimTime::ZERO, 1_000);
        assert!(!l.expired(SimTime(999)));
        assert!(l.expired(SimTime(1_000)));
        assert_eq!(l.remaining(SimTime(400)), 600);
    }

    #[test]
    fn renewal_extends_monotonically() {
        let mut l = Lease::grant(SimTime::ZERO, 1_000);
        assert!(l.renew(SimTime(500)));
        assert_eq!(l.expires, SimTime(1_500));
        assert!(l.renew(SimTime(1_499)));
        assert_eq!(l.expires, SimTime(2_499));
    }

    #[test]
    fn lapsed_lease_cannot_be_revived() {
        let mut l = Lease::grant(SimTime::ZERO, 1_000);
        assert!(!l.renew(SimTime(1_000)));
        assert_eq!(l.expires, SimTime(1_000));
    }
}
