//! Lease-sweep cascade ordering (ISSUE 5 satellite).
//!
//! When a node departs, every lease it holds stops being renewed at
//! once, so one expiry sweep withdraws *all* of its extensions — the
//! paper's "immediately withdrawn from the system". The removal order
//! is observable (unweave shutdown notifications, `Removed` reasons,
//! journal events) and is part of the deterministic-replay contract:
//! sweeps process expired ids in sorted order, cascades remove
//! dependents before the extension they rely on, and implicit
//! dependencies leave only after their last dependent.

use pmp_crypto::{KeyPair, Principal};
use pmp_discovery::Registrar;
use pmp_midas::{
    AdaptationService, BaseEvent, ExtensionBase, ExtensionMeta, ExtensionPackage, ReceiverEvent,
    ReceiverPolicy, SignedExtension,
};
use pmp_net::prelude::*;
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod, Prose};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::prelude::*;

fn noop_aspect(aspect_name: &str, class_name: &str) -> PortableAspect {
    let mut body = MethodBuilder::new();
    body.op(Op::Ret);
    let class = PortableClass {
        name: class_name.into(),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "onCall".into(),
            params: vec![
                "any".into(),
                "str".into(),
                "any".into(),
                "any".into(),
                "any".into(),
            ],
            ret: "any".into(),
            body: body.build(),
        }],
    };
    let aspect = Aspect::script(
        aspect_name,
        class,
        vec![(
            Crosscut::parse("before * Motor.*(..)").unwrap(),
            "onCall".into(),
            0,
        )],
    );
    PortableAspect::try_from(&aspect).unwrap()
}

fn package(
    id: &str,
    requires: Vec<String>,
    implicit: bool,
    aspect: PortableAspect,
) -> ExtensionPackage {
    ExtensionPackage {
        meta: ExtensionMeta {
            id: id.into(),
            version: 1,
            description: format!("{id} extension"),
            requires,
            permissions: vec!["print".into()],
            implicit,
        },
        aspect,
    }
}

struct World {
    sim: Simulator,
    base_node: NodeId,
    registrar: Registrar,
    base: ExtensionBase,
    robot_node: NodeId,
    vm: Vm,
    prose: Prose,
    receiver: AdaptationService,
    receiver_events: Vec<ReceiverEvent>,
    base_events: Vec<BaseEvent>,
    authority: KeyPair,
}

fn world() -> World {
    let mut sim = Simulator::new(91);
    sim.add_area("hall-a", Position::new(0.0, 0.0), Position::new(50.0, 50.0));
    let base_node = sim.add_node("base:hall-a", Position::new(25.0, 25.0), 60.0);
    let robot_node = sim.add_node("robot:1:1", Position::new(30.0, 25.0), 60.0);

    let mut registrar = Registrar::new(base_node, "lookup:hall-a");
    registrar.start(&mut sim);
    let mut base = ExtensionBase::new(base_node, base_node);
    base.start(&mut sim);

    let authority = KeyPair::from_seed(b"authority:hall-a");
    let mut policy = ReceiverPolicy::new();
    policy
        .trust
        .add(Principal::new("authority:hall-a", authority.public_key()));
    policy.set_signer_cap(
        "authority:hall-a",
        Permissions::none().with(Permission::Print),
    );

    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Motor")
            .method("rotate", [TypeSig::Int], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    let prose = Prose::attach(&mut vm);
    let mut receiver = AdaptationService::new(robot_node, "robot:1:1", policy);
    receiver.start(&mut sim);

    World {
        sim,
        base_node,
        registrar,
        base,
        robot_node,
        vm,
        prose,
        receiver,
        receiver_events: Vec::new(),
        base_events: Vec::new(),
        authority,
    }
}

impl World {
    fn publish(&mut self, pkg: &ExtensionPackage) {
        let sealed = SignedExtension::seal("authority:hall-a", &self.authority, pkg);
        self.base.catalog.put(sealed);
    }

    fn pump(&mut self, ns: u64) {
        let until = self.sim.now().plus(ns);
        loop {
            match self.sim.peek_next() {
                Some(t) if t <= until => {
                    self.sim.step();
                }
                _ => break,
            }
            for inc in self.sim.drain_inbox(self.base_node) {
                self.registrar.handle(&mut self.sim, &inc);
                self.base_events
                    .extend(self.base.handle(&mut self.sim, &inc));
            }
            for inc in self.sim.drain_inbox(self.robot_node) {
                self.receiver_events.extend(self.receiver.handle(
                    &mut self.sim,
                    &mut self.vm,
                    &self.prose,
                    &inc,
                ));
            }
        }
    }

    fn removals(&self) -> Vec<(String, String)> {
        self.receiver_events
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Removed { ext_id, reason } => {
                    Some((ext_id.clone(), reason.clone()))
                }
                _ => None,
            })
            .collect()
    }
}

const SEC: u64 = 1_000_000_000;

/// Two dependents of one implicit dependency plus an unrelated
/// extension, all lapsing in the same sweep. The sweep walks expired
/// ids in sorted order, and the implicit dependency leaves only after
/// its *last* dependent — with the bookkeeping reason, not a second
/// "lease expired".
#[test]
fn simultaneous_departure_sweeps_in_sorted_order_and_releases_implicit_deps_last() {
    let mut w = world();
    w.publish(&package(
        "hall-a/session",
        vec![],
        true,
        noop_aspect("session", "SessionC1"),
    ));
    w.publish(&package(
        "hall-a/access-a",
        vec!["hall-a/session".into()],
        false,
        noop_aspect("access-a", "AccessCA"),
    ));
    w.publish(&package(
        "hall-a/access-b",
        vec!["hall-a/session".into()],
        false,
        noop_aspect("access-b", "AccessCB"),
    ));
    w.publish(&package(
        "hall-a/zz-monitor",
        vec![],
        false,
        noop_aspect("zz-monitor", "MonCZ"),
    ));
    w.pump(5 * SEC);
    assert_eq!(
        w.receiver.installed_ids(),
        vec![
            "hall-a/access-a",
            "hall-a/access-b",
            "hall-a/session",
            "hall-a/zz-monitor"
        ]
    );
    // The accessor the chaos oracle drives: one deadline per install,
    // sorted, all in the future.
    let now = w.sim.now().0;
    let deadlines = w.receiver.lease_deadlines();
    assert_eq!(deadlines.len(), 4);
    assert!(deadlines.windows(2).all(|p| p[0].0 < p[1].0));
    assert!(deadlines.iter().all(|(_, at)| *at > now));

    // Depart: renewals stop, every lease lapses in the same window.
    w.sim.move_node(w.robot_node, Position::new(500.0, 500.0));
    w.pump(10 * SEC);

    assert!(w.receiver.installed_ids().is_empty());
    assert!(w.receiver.lease_deadlines().is_empty());
    assert_eq!(
        w.removals(),
        vec![
            ("hall-a/access-a".into(), "lease expired".into()),
            ("hall-a/access-b".into(), "lease expired".into()),
            ("hall-a/session".into(), "no longer required".into()),
            ("hall-a/zz-monitor".into(), "lease expired".into()),
        ]
    );
}

/// When the dependency's id sorts *before* its dependent, the sweep
/// reaches the dependency first and must cascade: the dependent goes
/// first (it relies on the dependency) with a cascade reason, then the
/// dependency itself with "lease expired" — and the dependent is not
/// swept a second time.
#[test]
fn cascade_removes_dependents_before_the_expired_dependency() {
    let mut w = world();
    // Explicit (non-implicit) dependency whose id sorts first.
    w.publish(&package(
        "hall-a/a-core",
        vec![],
        false,
        noop_aspect("a-core", "CoreC1"),
    ));
    w.publish(&package(
        "hall-a/z-audit",
        vec!["hall-a/a-core".into()],
        false,
        noop_aspect("z-audit", "AuditC1"),
    ));
    w.pump(5 * SEC);
    assert_eq!(
        w.receiver.installed_ids(),
        vec!["hall-a/a-core", "hall-a/z-audit"]
    );

    w.sim.move_node(w.robot_node, Position::new(500.0, 500.0));
    w.pump(10 * SEC);

    assert!(w.receiver.installed_ids().is_empty());
    assert_eq!(
        w.removals(),
        vec![
            (
                "hall-a/z-audit".into(),
                "dependency hall-a/a-core removed".into()
            ),
            ("hall-a/a-core".into(), "lease expired".into()),
        ]
    );
}
