//! Roaming handoffs between bases and the orthogonal-persistence
//! extension through the full platform.

use pmp::core::Platform;
use pmp::extensions;
use pmp::midas::BaseEvent;
use pmp::net::Position;
use pmp::vm::prelude::*;

const SEC: u64 = 1_000_000_000;

#[test]
fn departing_node_is_handed_off_to_the_neighbour_base() {
    let mut p = Platform::new(83);
    p.add_area("hall-a", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    p.add_area("hall-b", Position::new(70.0, 0.0), Position::new(130.0, 60.0));
    // Adjacent halls: both bases in radio range of each other.
    let base_a = p.add_base("hall-a", Position::new(30.0, 30.0), 80.0);
    let base_b = p.add_base("hall-b", Position::new(100.0, 30.0), 80.0);
    p.link_bases(base_a, base_b);

    let pkg = extensions::billing::package("* Motor.*(..)", 1, 1);
    let sealed = p.base(base_a).seal(&pkg);
    p.base_mut(base_a).base.catalog.put(sealed);

    let policy = p.trusting_policy(&[base_a, base_b], Permissions::none().with(Permission::Net));
    let dev = p
        .add_device("pda:r", Position::new(35.0, 30.0), 40.0, policy)
        .unwrap();
    p.pump(5 * SEC);
    assert!(p.node(dev).receiver.is_installed("ext/billing"));

    // The device wanders far away; base A notices the departure and
    // hands the roaming record to base B.
    p.move_node(dev, Position::new(500.0, 500.0));
    p.pump(10 * SEC);

    assert!(p
        .base(base_a)
        .events
        .iter()
        .any(|e| matches!(e, BaseEvent::NodeDeparted { node_name } if node_name == "pda:r")));
    assert!(p
        .base(base_b)
        .events
        .iter()
        .any(|e| matches!(e, BaseEvent::HandoffReceived { node_name, ext_ids }
            if node_name == "pda:r" && ext_ids.contains(&"ext/billing".to_string()))));
    assert!(p.base(base_b).base.roaming_cache.contains_key("pda:r"));

    // The whole episode is observable in the platform registry: the
    // device's adaptation, the shipped extension, and the expiry of its
    // presence lease after wandering off.
    let t = p.telemetry();
    assert!(t.counter_value("midas.base.delivered") >= 1);
    assert!(t.counter_value("midas.receiver.installed") >= 1);
    assert!(
        t.counter_value("discovery.registrar.lease_expiries") >= 1,
        "departure showed up as a lease expiry"
    );
    println!("{}", p.render_telemetry());
}

#[test]
fn persistence_extension_streams_field_writes_to_the_base() {
    let mut p = Platform::new(84);
    p.add_area("hall", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    let base = p.add_base("hall", Position::new(30.0, 30.0), 80.0);
    // Persist every write to Counter.value.
    let pkg = extensions::persistence::package("Counter.value", 1);
    let sealed = p.base(base).seal(&pkg);
    p.base_mut(base).base.catalog.put(sealed);

    let cap = Permissions::none().with(Permission::Store).with(Permission::Net);
    let policy = p.trusting_policy(&[base], cap);
    let dev = p
        .add_device("pda:p", Position::new(35.0, 30.0), 80.0, policy)
        .unwrap();

    // The device's own application, registered after the fact — the
    // platform refreshes the weaves so existing aspects cover it.
    {
        let node = p.node_mut(dev);
        node.vm
            .register_class(
                ClassDef::build("Counter")
                    .field("value", TypeSig::Int)
                    .method("set", [TypeSig::Int], TypeSig::Void, |b| {
                        b.op(Op::Load(0)).op(Op::Load(1)).op(Op::PutField {
                            class: "Counter".into(),
                            field: "value".into(),
                        });
                        b.op(Op::Ret);
                    })
                    .done(),
            )
            .unwrap();
    }
    p.pump(5 * SEC);
    assert!(p.node(dev).receiver.is_installed("ext/persistence"));

    // Drive the app locally; writes stream to the base asynchronously.
    {
        let node = p.node_mut(dev);
        let counter = node.vm.new_object("Counter").unwrap();
        for v in [7i64, 8, 9] {
            node.vm
                .call("Counter", "set", counter.clone(), vec![Value::Int(v)])
                .unwrap();
        }
    }
    p.pump(3 * SEC);

    let persisted = &p.base(base).persisted;
    assert_eq!(persisted.len(), 3, "{persisted:?}");
    assert!(persisted
        .iter()
        .all(|(robot, key, _)| robot == "pda:p" && key == "Counter.value"));
    let values: Vec<&str> = persisted.iter().map(|(_, _, v)| v.as_str()).collect();
    assert_eq!(values, ["7", "8", "9"]);
}
