//! The five suite programs, each a VM application assembled from
//! bytecode (so the JIT-stub overhead applies to them exactly as to any
//! hosted application).

use crate::Size;
use pmp_vm::prelude::{Value, Vm, VmError};

/// `_201_compress`-flavoured run-length encoder.
pub mod compress {
    use super::*;
    use pmp_vm::class::ClassDef;
    use pmp_vm::op::Op;
    use pmp_vm::types::TypeSig;

    /// Registers the `Compress` class.
    ///
    /// # Errors
    ///
    /// [`VmError::Link`] on duplicate registration.
    pub fn register(vm: &mut Vm) -> Result<(), VmError> {
        let class = ClassDef::build("Compress")
            // fill(buf): buf[i] = (i / 13) % 7
            .method("fill", [TypeSig::Bytes], TypeSig::Void, |b| {
                b.locals(2); // 2: i, 3: len
                let top = b.label();
                let done = b.label();
                b.op(Op::Load(1)).op(Op::BufLen).op(Op::Store(3));
                b.konst(0i64).op(Op::Store(2));
                b.bind(top);
                b.op(Op::Load(2)).op(Op::Load(3)).op(Op::Lt);
                b.jump_if_not(done);
                b.op(Op::Load(1)).op(Op::Load(2));
                b.op(Op::Load(2)).konst(13i64).op(Op::Div).konst(7i64).op(Op::Rem);
                b.op(Op::BufSet);
                b.op(Op::Load(2)).konst(1i64).op(Op::Add).op(Op::Store(2));
                b.jump(top);
                b.bind(done);
                b.op(Op::Ret);
            })
            // runLength(buf, start) -> length of the run at start
            .method(
                "runLength",
                [TypeSig::Bytes, TypeSig::Int],
                TypeSig::Int,
                |b| {
                    b.locals(3); // 3: len, 4: i, 5: v
                    let top = b.label();
                    let done = b.label();
                    b.op(Op::Load(1)).op(Op::BufLen).op(Op::Store(3));
                    b.op(Op::Load(1)).op(Op::Load(2)).op(Op::BufGet).op(Op::Store(5));
                    b.op(Op::Load(2)).konst(1i64).op(Op::Add).op(Op::Store(4));
                    b.bind(top);
                    b.op(Op::Load(4)).op(Op::Load(3)).op(Op::Lt);
                    b.jump_if_not(done);
                    b.op(Op::Load(1)).op(Op::Load(4)).op(Op::BufGet);
                    b.op(Op::Load(5)).op(Op::Eq);
                    b.jump_if_not(done);
                    b.op(Op::Load(4)).konst(1i64).op(Op::Add).op(Op::Store(4));
                    b.jump(top);
                    b.bind(done);
                    b.op(Op::Load(4)).op(Op::Load(2)).op(Op::Sub).op(Op::RetVal);
                },
            )
            // encode(in, out) -> encoded length (pairs of [run, byte])
            .method(
                "encode",
                [TypeSig::Bytes, TypeSig::Bytes],
                TypeSig::Int,
                |b| {
                    b.locals(4); // 3: i, 4: len, 5: run, 6: o
                    let top = b.label();
                    let done = b.label();
                    let capped = b.label();
                    b.op(Op::Load(1)).op(Op::BufLen).op(Op::Store(4));
                    b.konst(0i64).op(Op::Store(3));
                    b.konst(0i64).op(Op::Store(6));
                    b.bind(top);
                    b.op(Op::Load(3)).op(Op::Load(4)).op(Op::Lt);
                    b.jump_if_not(done);
                    // run = min(runLength(in, i), 255)
                    b.op(Op::Load(1)).op(Op::Load(3));
                    b.op(Op::CallStatic {
                        class: "Compress".into(),
                        method: "runLength".into(),
                        argc: 2,
                    });
                    b.op(Op::Store(5));
                    b.op(Op::Load(5)).konst(255i64).op(Op::Le);
                    b.jump_if(capped);
                    b.konst(255i64).op(Op::Store(5));
                    b.bind(capped);
                    // out[o] = run; out[o+1] = in[i]; o += 2; i += run
                    b.op(Op::Load(2)).op(Op::Load(6)).op(Op::Load(5)).op(Op::BufSet);
                    b.op(Op::Load(2));
                    b.op(Op::Load(6)).konst(1i64).op(Op::Add);
                    b.op(Op::Load(1)).op(Op::Load(3)).op(Op::BufGet);
                    b.op(Op::BufSet);
                    b.op(Op::Load(6)).konst(2i64).op(Op::Add).op(Op::Store(6));
                    b.op(Op::Load(3)).op(Op::Load(5)).op(Op::Add).op(Op::Store(3));
                    b.jump(top);
                    b.bind(done);
                    b.op(Op::Load(6)).op(Op::RetVal);
                },
            )
            // checksum(buf, n) -> rolling hash
            .method(
                "checksum",
                [TypeSig::Bytes, TypeSig::Int],
                TypeSig::Int,
                |b| {
                    b.locals(2); // 3: s, 4: i
                    let top = b.label();
                    let done = b.label();
                    b.konst(0i64).op(Op::Store(3));
                    b.konst(0i64).op(Op::Store(4));
                    b.bind(top);
                    b.op(Op::Load(4)).op(Op::Load(2)).op(Op::Lt);
                    b.jump_if_not(done);
                    b.op(Op::Load(3)).konst(31i64).op(Op::Mul);
                    b.op(Op::Load(1)).op(Op::Load(4)).op(Op::BufGet);
                    b.op(Op::Add).konst(0xFF_FFFFi64).op(Op::BitAnd).op(Op::Store(3));
                    b.op(Op::Load(4)).konst(1i64).op(Op::Add).op(Op::Store(4));
                    b.jump(top);
                    b.bind(done);
                    b.op(Op::Load(3)).op(Op::RetVal);
                },
            )
            // main(n) -> checksum(encoded) + encoded length
            .method("main", [TypeSig::Int], TypeSig::Int, |b| {
                b.locals(3); // 2: in, 3: out, 4: m
                b.op(Op::Load(1)).op(Op::NewBuffer).op(Op::Store(2));
                b.op(Op::Load(1)).konst(2i64).op(Op::Mul).op(Op::NewBuffer).op(Op::Store(3));
                b.op(Op::Load(2));
                b.op(Op::CallStatic {
                    class: "Compress".into(),
                    method: "fill".into(),
                    argc: 1,
                });
                b.op(Op::Pop);
                b.op(Op::Load(2)).op(Op::Load(3));
                b.op(Op::CallStatic {
                    class: "Compress".into(),
                    method: "encode".into(),
                    argc: 2,
                });
                b.op(Op::Store(4));
                b.op(Op::Load(3)).op(Op::Load(4));
                b.op(Op::CallStatic {
                    class: "Compress".into(),
                    method: "checksum".into(),
                    argc: 2,
                });
                b.op(Op::Load(4)).op(Op::Add).op(Op::RetVal);
            })
            .done();
        vm.register_class(class)?;
        Ok(())
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Propagates VM errors.
    pub fn run(vm: &mut Vm, size: Size) -> Result<Value, VmError> {
        let n = match size {
            Size::Small => 2_000,
            Size::Large => 60_000,
        };
        vm.call("Compress", "main", Value::Null, vec![Value::Int(n)])
    }
}

/// Integer-mixing rounds with one static call per round (xorshift64).
pub mod crypto {
    use super::*;
    use pmp_vm::class::ClassDef;
    use pmp_vm::op::Op;
    use pmp_vm::types::TypeSig;

    /// Reference implementation used by tests.
    pub fn mix_reference(mut x: i64, rounds: u64) -> i64 {
        for _ in 0..rounds {
            x ^= x.wrapping_shl(13);
            x ^= x.wrapping_shr(7);
            x ^= x.wrapping_shl(17);
        }
        x
    }

    /// Registers the `Crypto` class.
    ///
    /// # Errors
    ///
    /// [`VmError::Link`] on duplicate registration.
    pub fn register(vm: &mut Vm) -> Result<(), VmError> {
        let class = ClassDef::build("Crypto")
            .method("mixOne", [TypeSig::Int], TypeSig::Int, |b| {
                b.locals(1); // 2: x
                b.op(Op::Load(1)).op(Op::Store(2));
                b.op(Op::Load(2)).op(Op::Load(2)).konst(13i64).op(Op::Shl).op(Op::BitXor).op(Op::Store(2));
                b.op(Op::Load(2)).op(Op::Load(2)).konst(7i64).op(Op::Shr).op(Op::BitXor).op(Op::Store(2));
                b.op(Op::Load(2)).op(Op::Load(2)).konst(17i64).op(Op::Shl).op(Op::BitXor).op(Op::Store(2));
                b.op(Op::Load(2)).op(Op::RetVal);
            })
            .method("main", [TypeSig::Int], TypeSig::Int, |b| {
                b.locals(2); // 2: s, 3: i
                let top = b.label();
                let done = b.label();
                b.konst(0x2545F491i64).op(Op::Store(2));
                b.konst(0i64).op(Op::Store(3));
                b.bind(top);
                b.op(Op::Load(3)).op(Op::Load(1)).op(Op::Lt);
                b.jump_if_not(done);
                b.op(Op::Load(2));
                b.op(Op::CallStatic {
                    class: "Crypto".into(),
                    method: "mixOne".into(),
                    argc: 1,
                });
                b.op(Op::Store(2));
                b.op(Op::Load(3)).konst(1i64).op(Op::Add).op(Op::Store(3));
                b.jump(top);
                b.bind(done);
                b.op(Op::Load(2)).op(Op::RetVal);
            })
            .done();
        vm.register_class(class)?;
        Ok(())
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Propagates VM errors.
    pub fn run(vm: &mut Vm, size: Size) -> Result<Value, VmError> {
        let rounds = match size {
            Size::Small => 2_000,
            Size::Large => 100_000,
        };
        vm.call("Crypto", "main", Value::Null, vec![Value::Int(rounds)])
    }
}

/// `_209_db`-flavoured object workload: records, virtual calls, field
/// traffic.
pub mod db {
    use super::*;
    use pmp_vm::class::ClassDef;
    use pmp_vm::op::Op;
    use pmp_vm::types::TypeSig;

    /// Reference result used by tests.
    pub fn reference(n: i64, passes: i64) -> i64 {
        let mut vals: Vec<i64> = (0..n).map(|i| i * 3).collect();
        let mut total = 0;
        for _ in 0..passes {
            for (i, v) in vals.iter_mut().enumerate() {
                total += *v;
                if (i as i64) & 1 == 1 {
                    *v += 1;
                }
            }
        }
        total
    }

    /// Registers the `Rec` and `Db` classes.
    ///
    /// # Errors
    ///
    /// [`VmError::Link`] on duplicate registration.
    pub fn register(vm: &mut Vm) -> Result<(), VmError> {
        vm.register_class(
            ClassDef::build("Rec")
                .field("key", TypeSig::Int)
                .field("val", TypeSig::Int)
                .method("get", [], TypeSig::Int, |b| {
                    b.op(Op::Load(0))
                        .op(Op::GetField {
                            class: "Rec".into(),
                            field: "val".into(),
                        })
                        .op(Op::RetVal);
                })
                .method("bump", [], TypeSig::Void, |b| {
                    b.op(Op::Load(0));
                    b.op(Op::Load(0)).op(Op::GetField {
                        class: "Rec".into(),
                        field: "val".into(),
                    });
                    b.konst(1i64).op(Op::Add);
                    b.op(Op::PutField {
                        class: "Rec".into(),
                        field: "val".into(),
                    });
                    b.op(Op::Ret);
                })
                .done(),
        )?;
        vm.register_class(
            ClassDef::build("Db")
                // main(n, passes) -> total
                .method("main", [TypeSig::Int, TypeSig::Int], TypeSig::Int, |b| {
                    b.locals(5); // 3: arr, 4: i, 5: total, 6: rec, 7: pass
                    let fill_top = b.label();
                    let fill_done = b.label();
                    let pass_top = b.label();
                    let pass_done = b.label();
                    let scan_top = b.label();
                    let scan_done = b.label();
                    let no_bump = b.label();
                    // arr = new Rec[n], fill
                    b.op(Op::Load(1)).op(Op::NewArray).op(Op::Store(3));
                    b.konst(0i64).op(Op::Store(4));
                    b.bind(fill_top);
                    b.op(Op::Load(4)).op(Op::Load(1)).op(Op::Lt);
                    b.jump_if_not(fill_done);
                    b.op(Op::New("Rec".into())).op(Op::Store(6));
                    b.op(Op::Load(6)).op(Op::Load(4)).op(Op::PutField {
                        class: "Rec".into(),
                        field: "key".into(),
                    });
                    b.op(Op::Load(6));
                    b.op(Op::Load(4)).konst(3i64).op(Op::Mul);
                    b.op(Op::PutField {
                        class: "Rec".into(),
                        field: "val".into(),
                    });
                    b.op(Op::Load(3)).op(Op::Load(4)).op(Op::Load(6)).op(Op::ArrSet);
                    b.op(Op::Load(4)).konst(1i64).op(Op::Add).op(Op::Store(4));
                    b.jump(fill_top);
                    b.bind(fill_done);
                    // passes
                    b.konst(0i64).op(Op::Store(5)); // total
                    b.konst(0i64).op(Op::Store(7)); // pass
                    b.bind(pass_top);
                    b.op(Op::Load(7)).op(Op::Load(2)).op(Op::Lt);
                    b.jump_if_not(pass_done);
                    b.konst(0i64).op(Op::Store(4));
                    b.bind(scan_top);
                    b.op(Op::Load(4)).op(Op::Load(1)).op(Op::Lt);
                    b.jump_if_not(scan_done);
                    b.op(Op::Load(3)).op(Op::Load(4)).op(Op::ArrGet).op(Op::Store(6));
                    // total += rec.get()
                    b.op(Op::Load(5));
                    b.op(Op::Load(6)).op(Op::CallV {
                        method: "get".into(),
                        argc: 0,
                    });
                    b.op(Op::Add).op(Op::Store(5));
                    // if (key & 1) == 1 → rec.bump()
                    b.op(Op::Load(6)).op(Op::GetField {
                        class: "Rec".into(),
                        field: "key".into(),
                    });
                    b.konst(1i64).op(Op::BitAnd).konst(1i64).op(Op::Eq);
                    b.jump_if_not(no_bump);
                    b.op(Op::Load(6)).op(Op::CallV {
                        method: "bump".into(),
                        argc: 0,
                    });
                    b.op(Op::Pop);
                    b.bind(no_bump);
                    b.op(Op::Load(4)).konst(1i64).op(Op::Add).op(Op::Store(4));
                    b.jump(scan_top);
                    b.bind(scan_done);
                    b.op(Op::Load(7)).konst(1i64).op(Op::Add).op(Op::Store(7));
                    b.jump(pass_top);
                    b.bind(pass_done);
                    b.op(Op::Load(5)).op(Op::RetVal);
                })
                .done(),
        )?;
        Ok(())
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Propagates VM errors.
    pub fn run(vm: &mut Vm, size: Size) -> Result<Value, VmError> {
        let (n, passes) = match size {
            Size::Small => (200, 3),
            Size::Large => (3_000, 10),
        };
        vm.call(
            "Db",
            "main",
            Value::Null,
            vec![Value::Int(n), Value::Int(passes)],
        )
    }
}

/// SciMark-SOR-flavoured float stencil over a flattened grid.
pub mod sor {
    use super::*;
    use pmp_vm::class::ClassDef;
    use pmp_vm::op::Op;
    use pmp_vm::types::TypeSig;

    /// Reference result used by tests (identical operation order).
    pub fn reference(k: usize, sweeps: usize) -> f64 {
        let mut g: Vec<f64> = (0..k * k).map(|i| (i % 10) as f64).collect();
        for _ in 0..sweeps {
            for i in 1..k - 1 {
                for j in 1..k - 1 {
                    let idx = i * k + j;
                    g[idx] = 0.25 * (g[idx - 1] + g[idx + 1] + g[idx - k] + g[idx + k]);
                }
            }
        }
        g[(k / 2) * k + k / 2]
    }

    /// Registers the `Sor` class.
    ///
    /// # Errors
    ///
    /// [`VmError::Link`] on duplicate registration.
    pub fn register(vm: &mut Vm) -> Result<(), VmError> {
        let class = ClassDef::build("Sor")
            // main(k, sweeps) -> center value
            .method("main", [TypeSig::Int, TypeSig::Int], TypeSig::Float, |b| {
                b.locals(6); // 3: g, 4: i, 5: j, 6: s, 7: idx, 8: n
                let fill_top = b.label();
                let fill_done = b.label();
                let sweep_top = b.label();
                let sweep_done = b.label();
                let i_top = b.label();
                let i_done = b.label();
                let j_top = b.label();
                let j_done = b.label();
                // n = k*k; g = new [n]; g[i] = float(i % 10)
                b.op(Op::Load(1)).op(Op::Load(1)).op(Op::Mul).op(Op::Store(8));
                b.op(Op::Load(8)).op(Op::NewArray).op(Op::Store(3));
                b.konst(0i64).op(Op::Store(4));
                b.bind(fill_top);
                b.op(Op::Load(4)).op(Op::Load(8)).op(Op::Lt);
                b.jump_if_not(fill_done);
                b.op(Op::Load(3)).op(Op::Load(4));
                b.op(Op::Load(4)).konst(10i64).op(Op::Rem).op(Op::ToFloat);
                b.op(Op::ArrSet);
                b.op(Op::Load(4)).konst(1i64).op(Op::Add).op(Op::Store(4));
                b.jump(fill_top);
                b.bind(fill_done);
                // sweeps
                b.konst(0i64).op(Op::Store(6));
                b.bind(sweep_top);
                b.op(Op::Load(6)).op(Op::Load(2)).op(Op::Lt);
                b.jump_if_not(sweep_done);
                b.konst(1i64).op(Op::Store(4));
                b.bind(i_top);
                b.op(Op::Load(4)).op(Op::Load(1)).konst(1i64).op(Op::Sub).op(Op::Lt);
                b.jump_if_not(i_done);
                b.konst(1i64).op(Op::Store(5));
                b.bind(j_top);
                b.op(Op::Load(5)).op(Op::Load(1)).konst(1i64).op(Op::Sub).op(Op::Lt);
                b.jump_if_not(j_done);
                // idx = i*k + j
                b.op(Op::Load(4)).op(Op::Load(1)).op(Op::Mul).op(Op::Load(5)).op(Op::Add).op(Op::Store(7));
                // g[idx] = 0.25*(g[idx-1]+g[idx+1]+g[idx-k]+g[idx+k])
                b.op(Op::Load(3)).op(Op::Load(7));
                b.konst(0.25f64);
                b.op(Op::Load(3)).op(Op::Load(7)).konst(1i64).op(Op::Sub).op(Op::ArrGet);
                b.op(Op::Load(3)).op(Op::Load(7)).konst(1i64).op(Op::Add).op(Op::ArrGet);
                b.op(Op::Add);
                b.op(Op::Load(3)).op(Op::Load(7)).op(Op::Load(1)).op(Op::Sub).op(Op::ArrGet);
                b.op(Op::Add);
                b.op(Op::Load(3)).op(Op::Load(7)).op(Op::Load(1)).op(Op::Add).op(Op::ArrGet);
                b.op(Op::Add);
                b.op(Op::Mul);
                b.op(Op::ArrSet);
                b.op(Op::Load(5)).konst(1i64).op(Op::Add).op(Op::Store(5));
                b.jump(j_top);
                b.bind(j_done);
                b.op(Op::Load(4)).konst(1i64).op(Op::Add).op(Op::Store(4));
                b.jump(i_top);
                b.bind(i_done);
                b.op(Op::Load(6)).konst(1i64).op(Op::Add).op(Op::Store(6));
                b.jump(sweep_top);
                b.bind(sweep_done);
                // center
                b.op(Op::Load(3));
                b.op(Op::Load(1)).konst(2i64).op(Op::Div).op(Op::Load(1)).op(Op::Mul);
                b.op(Op::Load(1)).konst(2i64).op(Op::Div).op(Op::Add);
                b.op(Op::ArrGet).op(Op::RetVal);
            })
            .done();
        vm.register_class(class)?;
        Ok(())
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Propagates VM errors.
    pub fn run(vm: &mut Vm, size: Size) -> Result<Value, VmError> {
        let (k, sweeps) = match size {
            Size::Small => (16, 4),
            Size::Large => (64, 16),
        };
        vm.call(
            "Sor",
            "main",
            Value::Null,
            vec![Value::Int(k), Value::Int(sweeps)],
        )
    }
}

/// SciMark-MonteCarlo-flavoured π estimation with an LCG.
pub mod montecarlo {
    use super::*;
    use pmp_vm::class::ClassDef;
    use pmp_vm::op::Op;
    use pmp_vm::types::TypeSig;

    const LCG_MUL: i64 = 6364136223846793005;
    const LCG_INC: i64 = 1442695040888963407;

    /// Reference hit count used by tests.
    pub fn reference(n: i64) -> i64 {
        let mut seed: i64 = 12345;
        let mut next = || {
            seed = seed.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
            seed
        };
        let mut hits = 0;
        for _ in 0..n {
            let x = ((next().wrapping_shr(11)) & 0xF_FFFF) as f64 / 1_048_576.0;
            let y = ((next().wrapping_shr(11)) & 0xF_FFFF) as f64 / 1_048_576.0;
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        hits
    }

    /// Registers the `Mc` class.
    ///
    /// # Errors
    ///
    /// [`VmError::Link`] on duplicate registration.
    pub fn register(vm: &mut Vm) -> Result<(), VmError> {
        let class = ClassDef::build("Mc")
            .method("next", [TypeSig::Int], TypeSig::Int, |b| {
                b.op(Op::Load(1)).konst(LCG_MUL).op(Op::Mul).konst(LCG_INC).op(Op::Add);
                b.op(Op::RetVal);
            })
            // unit(seed) -> float in [0, 1) from the seed's high bits
            .method("unit", [TypeSig::Int], TypeSig::Float, |b| {
                b.op(Op::Load(1)).konst(11i64).op(Op::Shr).konst(0xF_FFFFi64).op(Op::BitAnd);
                b.op(Op::ToFloat).konst(1_048_576.0f64).op(Op::Div);
                b.op(Op::RetVal);
            })
            // main(n) -> hits inside the quarter circle
            .method("main", [TypeSig::Int], TypeSig::Int, |b| {
                b.locals(5); // 2: seed, 3: i, 4: hits, 5: x, 6: y
                let top = b.label();
                let done = b.label();
                let miss = b.label();
                b.konst(12345i64).op(Op::Store(2));
                b.konst(0i64).op(Op::Store(3));
                b.konst(0i64).op(Op::Store(4));
                b.bind(top);
                b.op(Op::Load(3)).op(Op::Load(1)).op(Op::Lt);
                b.jump_if_not(done);
                // seed = next(seed); x = unit(seed)
                b.op(Op::Load(2));
                b.op(Op::CallStatic {
                    class: "Mc".into(),
                    method: "next".into(),
                    argc: 1,
                });
                b.op(Op::Store(2));
                b.op(Op::Load(2));
                b.op(Op::CallStatic {
                    class: "Mc".into(),
                    method: "unit".into(),
                    argc: 1,
                });
                b.op(Op::Store(5));
                // seed = next(seed); y = unit(seed)
                b.op(Op::Load(2));
                b.op(Op::CallStatic {
                    class: "Mc".into(),
                    method: "next".into(),
                    argc: 1,
                });
                b.op(Op::Store(2));
                b.op(Op::Load(2));
                b.op(Op::CallStatic {
                    class: "Mc".into(),
                    method: "unit".into(),
                    argc: 1,
                });
                b.op(Op::Store(6));
                // if x*x + y*y <= 1.0 → hits++
                b.op(Op::Load(5)).op(Op::Load(5)).op(Op::Mul);
                b.op(Op::Load(6)).op(Op::Load(6)).op(Op::Mul);
                b.op(Op::Add).konst(1.0f64).op(Op::Le);
                b.jump_if_not(miss);
                b.op(Op::Load(4)).konst(1i64).op(Op::Add).op(Op::Store(4));
                b.bind(miss);
                b.op(Op::Load(3)).konst(1i64).op(Op::Add).op(Op::Store(3));
                b.jump(top);
                b.bind(done);
                b.op(Op::Load(4)).op(Op::RetVal);
            })
            .done();
        vm.register_class(class)?;
        Ok(())
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Propagates VM errors.
    pub fn run(vm: &mut Vm, size: Size) -> Result<Value, VmError> {
        let n = match size {
            Size::Small => 1_000,
            Size::Large => 50_000,
        };
        vm.call("Mc", "main", Value::Null, vec![Value::Int(n)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::prelude::VmConfig;

    fn fresh() -> Vm {
        Vm::new(VmConfig::default())
    }

    #[test]
    fn compress_encodes_known_input_correctly() {
        let mut vm = fresh();
        compress::register(&mut vm).unwrap();
        let input = vm.new_buffer(vec![5, 5, 5, 2]);
        let out = vm.new_buffer(vec![0; 8]);
        let len = vm
            .call(
                "Compress",
                "encode",
                Value::Null,
                vec![input, out.clone()],
            )
            .unwrap();
        assert_eq!(len, Value::Int(4));
        let id = out.as_ref_id().unwrap();
        assert_eq!(&vm.heap().buffer_bytes(id).unwrap()[..4], &[3, 5, 1, 2]);
    }

    #[test]
    fn compress_run_is_deterministic() {
        let mut vm = fresh();
        compress::register(&mut vm).unwrap();
        let a = compress::run(&mut vm, Size::Small).unwrap();
        let b = compress::run(&mut vm, Size::Small).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, Value::Int(0));
    }

    #[test]
    fn crypto_matches_reference() {
        let mut vm = fresh();
        crypto::register(&mut vm).unwrap();
        let got = crypto::run(&mut vm, Size::Small).unwrap();
        assert_eq!(got, Value::Int(crypto::mix_reference(0x2545F491, 2_000)));
    }

    #[test]
    fn db_matches_reference() {
        let mut vm = fresh();
        db::register(&mut vm).unwrap();
        let got = db::run(&mut vm, Size::Small).unwrap();
        assert_eq!(got, Value::Int(db::reference(200, 3)));
    }

    #[test]
    fn sor_matches_reference_bit_for_bit() {
        let mut vm = fresh();
        sor::register(&mut vm).unwrap();
        let got = sor::run(&mut vm, Size::Small).unwrap();
        assert_eq!(got, Value::Float(sor::reference(16, 4)));
    }

    #[test]
    fn montecarlo_estimates_pi() {
        let mut vm = fresh();
        montecarlo::register(&mut vm).unwrap();
        let got = montecarlo::run(&mut vm, Size::Small).unwrap();
        let hits = got.as_int().unwrap();
        assert_eq!(hits, montecarlo::reference(1_000));
        let pi = 4.0 * hits as f64 / 1_000.0;
        assert!((2.9..3.4).contains(&pi), "π estimate {pi}");
    }
}
