//! The differential-execution oracle for the weave-time optimizer.
//!
//! Bases ship extension packages optimized by default
//! ([`pmp_midas::ShipMode::Optimized`]); the soundness claim is that an
//! optimized advice body is *observationally identical* to the
//! authored one. Translation validation (re-running the stack-depth
//! verifier) proves the optimized body is well-formed; this oracle
//! proves it is *equivalent*: both bodies are executed method by
//! method against the same VM state and join-point argument battery,
//! and every observable — return value or error, host-side system
//! calls in order, aspect field state, session-blackboard state —
//! must match exactly.
//!
//! Heap references are compared opaquely (`<ref>`), since dead-code
//! elimination may legitimately change allocation order without
//! changing semantics.

use pmp_extensions::support::{register_session_blackboard, register_sink, Posted};
use pmp_midas::{optimize_package, ExtensionPackage};
use pmp_telemetry::sync::Mutex;
use pmp_vm::op::Op;
use pmp_vm::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Everything observable about one method invocation, rendered in a
/// heap-id-independent form.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    method: String,
    battery: usize,
    result: String,
    sys_calls: Vec<String>,
    fields: Vec<(String, String)>,
    session: Vec<(String, String)>,
}

/// Renders a value with heap references made opaque: DCE may remove a
/// dead allocation, shifting every later `ObjId`, without changing
/// observable behaviour.
fn canon(v: &Value) -> String {
    match v {
        Value::Ref(_) => "<ref>".to_string(),
        other => format!("{other:?}"),
    }
}

fn canon_result(r: &Result<Value, VmError>) -> String {
    match r {
        Ok(v) => format!("Ok({})", canon(v)),
        Err(e) => format!("Err({e})"),
    }
}

fn canon_posts(posts: &[Posted]) -> Vec<String> {
    posts
        .iter()
        .map(|p| {
            let args: Vec<String> = p.args.iter().map(canon).collect();
            format!("{}({})", p.op, args.join(", "))
        })
        .collect()
}

/// The per-type canonical argument used for non-advice methods.
fn default_arg(ty: &str) -> Value {
    match ty {
        "int" => Value::Int(1),
        "float" => Value::Float(1.0),
        "bool" => Value::Bool(true),
        "str" => Value::str("x"),
        _ => Value::Null,
    }
}

/// Executes every method of `pkg`'s aspect class in declaration order
/// against the advice-argument battery, returning the full observable
/// record. Both legs of the differential run through here.
fn run_all(pkg: &ExtensionPackage) -> Result<Vec<Outcome>, String> {
    let class = &pkg.aspect.class;
    let mut vm = Vm::new(VmConfig::default());

    // Host plumbing: one recording sink per system operation the class
    // references, plus the session blackboard (pre-seeded so the
    // access-control caller-check path executes) when it uses one.
    let mut sys_names: BTreeSet<String> = BTreeSet::new();
    for m in &class.methods {
        for op in &m.body.ops {
            if let Op::Sys { name, .. } = op {
                sys_names.insert(name.clone());
            }
        }
    }
    let uses_session = sys_names.iter().any(|n| n.starts_with("session."));
    let board = if uses_session {
        sys_names.retain(|n| !n.starts_with("session."));
        let board = register_session_blackboard(&mut vm);
        board.lock().insert("caller".into(), Value::str("op:1"));
        Some(board)
    } else {
        None
    };
    let sinks: Vec<(String, Arc<Mutex<Vec<Posted>>>)> = sys_names
        .iter()
        .map(|n| (n.clone(), register_sink(&mut vm, n, None)))
        .collect();

    let def = class
        .to_class_def()
        .map_err(|e| format!("{}: bad class: {e}", pkg.meta.id))?;
    vm.register_class(def)
        .map_err(|e| format!("{}: register: {e}", pkg.meta.id))?;
    let this = vm
        .new_object(&class.name)
        .map_err(|e| format!("{}: instantiate: {e}", pkg.meta.id))?;

    let snapshot_fields = |vm: &Vm| -> Vec<(String, String)> {
        let oid = this.as_ref_id().expect("aspect instance is a ref");
        class
            .fields
            .iter()
            .map(|(name, _)| {
                let v = vm
                    .get_field(oid, &class.name, name)
                    .map_or_else(|e| format!("<{e}>"), |v| canon(&v));
                (name.clone(), v)
            })
            .collect()
    };
    // register_session_blackboard hands back a HashMap; sort here so
    // the comparison is order-independent.
    let snapshot_board = || -> Vec<(String, String)> {
        match &board {
            None => Vec::new(),
            Some(b) => {
                let mut entries: Vec<(String, String)> = b
                    .lock()
                    .iter()
                    .map(|(k, v)| (k.clone(), canon(v)))
                    .collect();
                entries.sort();
                entries
            }
        }
    };

    let mut outcomes = Vec::new();
    for m in &class.methods {
        let mid = vm
            .method_id(&class.name, &m.name)
            .ok_or_else(|| format!("{}: method {} vanished", pkg.meta.id, m.name))?;
        // The 5-parameter advice convention gets a battery of
        // join-point-shaped argument tuples; everything else gets one
        // call with canonical per-type defaults.
        let batteries: Vec<Vec<Value>> = if m.params.len() == 5 {
            let args_a = vm.new_array(vec![Value::Int(5), Value::str("payload")]);
            let args_b = vm.new_array(vec![Value::Int(30)]);
            vec![
                vec![
                    Value::Null,
                    Value::str("Svc.op(int,str)"),
                    args_a,
                    Value::Int(7),
                    Value::Null,
                ],
                vec![
                    Value::str("entry"),
                    Value::str("Motor.rotate(int)"),
                    args_b,
                    Value::Null,
                    Value::str("reason"),
                ],
                vec![
                    Value::Null,
                    Value::str(""),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            ]
        } else {
            vec![m.params.iter().map(|t| default_arg(t)).collect()]
        };
        for (battery, args) in batteries.into_iter().enumerate() {
            for (_, log) in &sinks {
                log.lock().clear();
            }
            let result = vm.invoke(mid, this.clone(), args);
            let mut sys_calls = Vec::new();
            for (_, log) in &sinks {
                sys_calls.extend(canon_posts(&log.lock()));
            }
            outcomes.push(Outcome {
                method: m.name.clone(),
                battery,
                result: canon_result(&result),
                sys_calls,
                fields: snapshot_fields(&vm),
                session: snapshot_board(),
            });
        }
    }
    Ok(outcomes)
}

/// Differentially executes `pkg` against its optimized form: every
/// method, every argument battery, every observable must agree.
///
/// # Errors
///
/// A human-readable description of the first divergence (or of an
/// optimization that failed translation validation).
pub fn differential_check(pkg: &ExtensionPackage) -> Result<(), String> {
    let (optimized, report) = optimize_package(pkg);
    if !report.all_validated() {
        return Err(format!(
            "{}: optimized package failed translation validation:\n{report}",
            pkg.meta.id
        ));
    }
    let original = run_all(pkg)?;
    let opt = run_all(&optimized)?;
    if original.len() != opt.len() {
        return Err(format!(
            "{}: outcome counts diverge: {} vs {}",
            pkg.meta.id,
            original.len(),
            opt.len()
        ));
    }
    for (a, b) in original.iter().zip(&opt) {
        if a != b {
            return Err(format!(
                "{}: divergence at {}#{}:\n  original:  {a:?}\n  optimized: {b:?}",
                pkg.meta.id, a.method, a.battery
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{ExtKind, ALL_KINDS};

    #[test]
    fn all_chaos_extension_kinds_pass_differential() {
        for kind in ALL_KINDS {
            for version in [1, 2] {
                let pkg = kind.package(version);
                differential_check(&pkg)
                    .unwrap_or_else(|e| panic!("{kind:?} v{version}: {e}"));
            }
        }
    }

    #[test]
    fn every_shipped_package_passes_differential() {
        use pmp_extensions as ext;
        let packages = [
            ext::monitoring::package(1),
            ext::session::package("* DrawingService.*(..)", 1),
            ext::access_control::package("* DrawingService.*(..)", &["op:1"], 1),
            ext::encryption::package(0x42, 1),
            ext::geofence::package(0, 0, 30, 30, 1),
            ext::billing::package("* Motor.*(..)", 2, 1),
            ext::persistence::package("Robot.state", 1),
            ext::transactions::package("* Svc.tx*(..)", "Svc", &["a", "b"], 1),
            ext::agegate::package("* Svc.*(..)", 1_000, 1),
            ext::replication::package(1),
        ];
        for pkg in &packages {
            differential_check(pkg).unwrap_or_else(|e| panic!("{}: {e}", pkg.meta.id));
        }
    }

    #[test]
    fn a_semantics_changing_rewrite_is_caught() {
        // Sanity-check the oracle itself: hand it a "pretend optimized"
        // package by comparing two packages whose advice differs, via
        // the internal runner.
        let a = ExtKind::Billing.package(1);
        let mut b = a.clone();
        // Billing counts one unit per call; double it and the field
        // snapshot after the first battery must diverge.
        for m in &mut b.aspect.class.methods {
            for op in &mut m.body.ops {
                if let Op::Const(pmp_vm::op::Const::Int(n)) = op {
                    *n *= 2;
                }
            }
        }
        let ra = run_all(&a).unwrap();
        let rb = run_all(&b).unwrap();
        assert_ne!(ra, rb, "runner failed to observe a semantic change");
    }
}
