//! Regression tests pinning the semantics of [`VmStats`] counters.
//!
//! The important ones:
//!
//! * `hook_checks` counts **stub probes** (one entry stub + one exit
//!   stub per invocation while hooks are live), never individual
//!   hook-table reads — so it is exactly 2 per stubbed invocation with
//!   a dispatcher installed, regardless of which hooks are active.
//! * `reset_stats` zeroes *every* field (it resets the whole telemetry
//!   registry, so a newly-added counter cannot be missed).

use pmp_vm::hooks::{Dispatcher, Outcome, HOOK_ENTRY, HOOK_EXIT};
use pmp_vm::prelude::*;
use pmp_vm::VmException;

/// A dispatcher that does nothing — only its presence matters.
struct Inert;

impl Dispatcher for Inert {
    fn method_entry(
        &self,
        _vm: &mut Vm,
        _mid: MethodId,
        _this: &Value,
        _args: &mut Vec<Value>,
    ) -> Result<(), VmError> {
        Ok(())
    }

    fn method_exit(
        &self,
        _vm: &mut Vm,
        _mid: MethodId,
        _this: &Value,
        _args: &[Value],
        _outcome: &mut Outcome,
    ) -> Result<(), VmError> {
        Ok(())
    }

    fn field_get(
        &self,
        _vm: &mut Vm,
        _fid: FieldId,
        _obj: ObjId,
        _value: &mut Value,
    ) -> Result<(), VmError> {
        Ok(())
    }

    fn field_set(
        &self,
        _vm: &mut Vm,
        _fid: FieldId,
        _obj: ObjId,
        _value: &mut Value,
    ) -> Result<(), VmError> {
        Ok(())
    }

    fn exception_throw(
        &self,
        _vm: &mut Vm,
        _site: MethodId,
        _exc: &VmException,
    ) -> Result<(), VmError> {
        Ok(())
    }

    fn exception_catch(
        &self,
        _vm: &mut Vm,
        _site: MethodId,
        _exc: &VmException,
    ) -> Result<(), VmError> {
        Ok(())
    }
}

fn vm_with_id_method() -> Vm {
    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("T")
            .method("id", [TypeSig::Int], TypeSig::Int, |b| {
                b.op(Op::Load(1)).op(Op::RetVal);
            })
            .done(),
    )
    .unwrap();
    vm
}

#[test]
fn hook_checks_count_stub_probes_not_table_reads() {
    let mut vm = vm_with_id_method();
    vm.set_dispatcher(std::sync::Arc::new(Inert));

    // No hooks active: both stubs still probe the table once each.
    vm.call("T", "id", Value::Null, vec![Value::Int(1)]).unwrap();
    let s = vm.stats();
    assert_eq!(s.hook_checks, 2, "entry stub + exit stub: {s:?}");
    assert_eq!(s.advice_dispatches, 0, "no hooks active: {s:?}");

    // Entry hook only: same two probes, one dispatch.
    let mid = vm.method_id("T", "id").unwrap();
    vm.reset_stats();
    vm.hooks().activate_method(mid, HOOK_ENTRY);
    vm.call("T", "id", Value::Null, vec![Value::Int(1)]).unwrap();
    let s = vm.stats();
    assert_eq!(s.hook_checks, 2, "{s:?}");
    assert_eq!(s.advice_dispatches, 1, "{s:?}");

    // Entry + exit: still two probes, two dispatches.
    vm.reset_stats();
    vm.hooks().activate_method(mid, HOOK_ENTRY | HOOK_EXIT);
    vm.call("T", "id", Value::Null, vec![Value::Int(1)]).unwrap();
    let s = vm.stats();
    assert_eq!(s.hook_checks, 2, "{s:?}");
    assert_eq!(s.advice_dispatches, 2, "{s:?}");
}

#[test]
fn no_dispatcher_means_no_hook_checks() {
    let mut vm = vm_with_id_method();
    vm.call("T", "id", Value::Null, vec![Value::Int(1)]).unwrap();
    let s = vm.stats();
    assert_eq!(s.hook_checks, 0, "{s:?}");
    assert_eq!(s.advice_dispatches, 0, "{s:?}");
    assert_eq!(s.invocations, 1, "{s:?}");
}

#[test]
fn reset_stats_zeroes_every_field() {
    let mut vm = vm_with_id_method();
    vm.set_dispatcher(std::sync::Arc::new(Inert));
    let mid = vm.method_id("T", "id").unwrap();
    vm.hooks().activate_method(mid, HOOK_ENTRY | HOOK_EXIT);
    vm.call("T", "id", Value::Null, vec![Value::Int(1)]).unwrap();

    // Exercise the advice-fuel counter too.
    let scope = vm.begin_advice(Permissions::all(), Some(100));
    vm.set_fuel(Some(60)); // pretend advice burned 40 fuel
    vm.end_advice(scope);

    let s = vm.stats();
    assert!(s.invocations > 0 && s.bytecode_ops > 0, "{s:?}");
    assert!(s.hook_checks > 0 && s.advice_dispatches > 0, "{s:?}");
    assert!(s.compiled_methods > 0, "{s:?}");
    assert_eq!(s.advice_fuel_used, 40, "{s:?}");

    vm.reset_stats();
    assert_eq!(vm.stats(), VmStats::default(), "all fields zeroed");
}

#[test]
fn stats_view_matches_telemetry_registry() {
    let mut vm = vm_with_id_method();
    vm.set_dispatcher(std::sync::Arc::new(Inert));
    vm.call("T", "id", Value::Null, vec![Value::Int(7)]).unwrap();
    let s = vm.stats();
    let r = &vm.telemetry().registry;
    assert_eq!(r.counter_value("vm.interp.invocations"), s.invocations);
    assert_eq!(r.counter_value("vm.interp.bytecode_ops"), s.bytecode_ops);
    assert_eq!(r.counter_value("vm.hooks.checks"), s.hook_checks);
    assert_eq!(
        r.counter_value("vm.hooks.advice_dispatches"),
        s.advice_dispatches
    );
    assert_eq!(
        r.counter_value("vm.jit.compiled_methods"),
        s.compiled_methods
    );
}
