//! The metric registry: named counters, gauges, and fixed-bucket
//! latency histograms.
//!
//! Registration returns a small copyable id; updates through an id are
//! a bounds-checked array bump — cheap enough for the interpreter hot
//! path (`vm.interp.bytecode_ops` is bumped once per opcode). By-name
//! lookups exist for registration, tests, and exporters, not for hot
//! paths.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The pseudo-counter name under which by-name read misses are
/// tallied; see [`Registry::counter_value`].
pub const MISSES_COUNTER: &str = "telemetry.registry.misses";

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(pub(crate) u32);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GaugeId(pub(crate) u32);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HistogramId(pub(crate) u32);

#[derive(Clone, Copy, Debug)]
enum Slot {
    Counter(u32),
    Gauge(u32),
    Histogram(u32),
}

/// Number of power-of-two buckets: bucket 0 holds the value 0, bucket
/// `i` (1 ≤ i ≤ 63) holds values in `[2^(i-1), 2^i)`, bucket 64 holds
/// the rest (≥ `2^63`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket latency histogram over `u64` samples (nanoseconds by
/// convention). Percentile readout walks the power-of-two buckets and
/// clamps to the observed `[min, max]`, so a single-sample histogram
/// reports that exact sample at every percentile.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
#[inline]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= 64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-th percentile (`p` in 0..=100), estimated as the upper
    /// bound of the bucket holding the rank-`ceil(p/100·count)` sample,
    /// clamped to the observed `[min, max]`. Returns 0 when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Zeroes the histogram.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

/// The registry of named metrics. Names follow
/// `<crate>.<subsystem>.<name>`; registering an existing name returns
/// the existing id (names are unique across all three metric kinds).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, Histogram)>,
    index: HashMap<String, Slot>,
    /// By-name reads of names never registered. A typo'd
    /// `counter_value("vm.hooks.checkz")` silently reads 0, which makes
    /// a misspelled assertion pass vacuously; debug builds tally (and
    /// log, once per name) such reads here. Atomic because the read
    /// paths take `&self`. Not exported — it is reachable only through
    /// [`MISSES_COUNTER`], keeping render/export bytes unchanged.
    misses: AtomicU64,
    // Only read under `debug_assertions` (see `note_miss`).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    warned: std::sync::Mutex<std::collections::HashSet<String>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or finds) the counter `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match self.index.get(name) {
            Some(Slot::Counter(i)) => CounterId(*i),
            Some(_) => panic!("metric {name:?} already registered with a different kind"),
            None => {
                let i = u32::try_from(self.counters.len()).expect("< 4G metrics");
                self.counters.push((name.to_string(), 0));
                self.index.insert(name.to_string(), Slot::Counter(i));
                CounterId(i)
            }
        }
    }

    /// Registers (or finds) the gauge `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match self.index.get(name) {
            Some(Slot::Gauge(i)) => GaugeId(*i),
            Some(_) => panic!("metric {name:?} already registered with a different kind"),
            None => {
                let i = u32::try_from(self.gauges.len()).expect("< 4G metrics");
                self.gauges.push((name.to_string(), 0));
                self.index.insert(name.to_string(), Slot::Gauge(i));
                GaugeId(i)
            }
        }
    }

    /// Registers (or finds) the histogram `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        match self.index.get(name) {
            Some(Slot::Histogram(i)) => HistogramId(*i),
            Some(_) => panic!("metric {name:?} already registered with a different kind"),
            None => {
                let i = u32::try_from(self.histograms.len()).expect("< 4G metrics");
                self.histograms.push((name.to_string(), Histogram::new()));
                self.index.insert(name.to_string(), Slot::Histogram(i));
                HistogramId(i)
            }
        }
    }

    /// Bumps a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Bumps a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].1 += n;
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter_get(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].1
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0 as usize].1 = value;
    }

    /// Adjusts a gauge by `delta` (may be negative).
    #[inline]
    pub fn add_gauge(&mut self, id: GaugeId, delta: i64) {
        self.gauges[id.0 as usize].1 += delta;
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge_get(&self, id: GaugeId) -> i64 {
        self.gauges[id.0 as usize].1
    }

    /// Records a sample into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0 as usize].1.record(value);
    }

    /// The histogram behind `id`.
    #[must_use]
    pub fn histogram_get(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0 as usize].1
    }

    /// Records (debug builds only) a by-name read of a name that was
    /// never registered: bumps the miss tally and logs once per name.
    fn note_miss(&self, name: &str) {
        #[cfg(debug_assertions)]
        {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let mut warned = self.warned.lock().unwrap_or_else(|e| e.into_inner());
            if warned.insert(name.to_string()) {
                eprintln!("pmp-telemetry: read of unregistered metric {name:?}");
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = name;
    }

    /// Unregistered-name reads observed so far (always 0 in release
    /// builds).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Value of the counter `name`, or 0 when unregistered. In debug
    /// builds, reads of names never registered are logged and counted;
    /// the tally itself reads back as the pseudo-counter
    /// [`MISSES_COUNTER`].
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.index.get(name) {
            Some(Slot::Counter(i)) => self.counters[*i as usize].1,
            Some(_) => 0,
            None if name == MISSES_COUNTER => self.misses(),
            None => {
                self.note_miss(name);
                0
            }
        }
    }

    /// Value of the gauge `name`, or 0 when unregistered (misses are
    /// logged and counted in debug builds, like
    /// [`Registry::counter_value`]).
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> i64 {
        match self.index.get(name) {
            Some(Slot::Gauge(i)) => self.gauges[*i as usize].1,
            Some(_) => 0,
            None => {
                self.note_miss(name);
                0
            }
        }
    }

    /// The histogram `name`, when registered.
    #[must_use]
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        match self.index.get(name) {
            Some(Slot::Histogram(i)) => Some(&self.histograms[*i as usize].1),
            _ => None,
        }
    }

    /// All counters as `(name, value)`, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All gauges as `(name, value)`, in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All histograms as `(name, histogram)`, in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Zeroes every metric (and the miss tally); registrations (names
    /// and ids) survive.
    pub fn reset(&mut self) {
        for c in &mut self.counters {
            c.1 = 0;
        }
        for g in &mut self.gauges {
            g.1 = 0;
        }
        for h in &mut self.histograms {
            h.1.reset();
        }
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_register_and_bump() {
        let mut r = Registry::new();
        let a = r.counter("x.y.a");
        let b = r.counter("x.y.b");
        r.inc(a);
        r.add(b, 5);
        r.add(a, 2);
        assert_eq!(r.counter_get(a), 3);
        assert_eq!(r.counter_value("x.y.b"), 5);
        // Re-registration returns the same id.
        assert_eq!(r.counter("x.y.a"), a);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let mut r = Registry::new();
        let g = r.gauge("p.aspects.active");
        r.add_gauge(g, 3);
        r.add_gauge(g, -1);
        assert_eq!(r.gauge_get(g), 2);
        r.set_gauge(g, 10);
        assert_eq!(r.gauge_value("p.aspects.active"), 10);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let mut r = Registry::new();
        r.counter("same.name");
        r.gauge("same.name");
    }

    // -- Histogram bucket boundaries (satellite: telemetry coverage) --

    #[test]
    fn bucket_boundaries() {
        // Bucket 0: {0}; bucket i: [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn p99_on_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.p99(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn percentiles_on_one_sample_are_that_sample() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p90(), 777);
        assert_eq!(h.p99(), 777);
        assert_eq!(h.percentile(0.0), 777);
        assert_eq!(h.percentile(100.0), 777);
        assert_eq!(h.mean(), 777);
    }

    #[test]
    fn p99_on_overflow_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 3);
        // Both land in the overflow bucket (≥ 2^63); the estimate is the
        // bucket upper bound clamped to the observed range.
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.min(), u64::MAX - 3);
        // Sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn percentile_walk_spread() {
        let mut h = Histogram::new();
        // 90 fast samples at 100 ns, 10 slow at 1_000_000 ns.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        // p50/p90 land in the 100 ns bucket [64,127]; clamped ≥ min.
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p90(), 127);
        // p99 lands in the slow bucket, clamped to max.
        assert_eq!(h.p99(), 1_000_000);
    }

    // -- Unregistered-name reads (satellite: debug miss check) --

    #[test]
    #[cfg(debug_assertions)]
    fn unregistered_reads_are_tallied_in_debug() {
        let mut r = Registry::new();
        r.counter("vm.hooks.checks");
        assert_eq!(r.counter_value("vm.hooks.checks"), 0);
        assert_eq!(r.misses(), 0, "registered reads are not misses");
        assert_eq!(r.counter_value("vm.hooks.checkz"), 0);
        assert_eq!(r.gauge_value("vm.hooks.checkz"), 0);
        assert_eq!(r.misses(), 2);
        // The tally reads back through the normal counter path without
        // counting itself as a miss.
        assert_eq!(r.counter_value(MISSES_COUNTER), 2);
        assert_eq!(r.misses(), 2);
        r.reset();
        assert_eq!(r.counter_value(MISSES_COUNTER), 0);
    }

    #[test]
    fn kind_mismatch_reads_zero_without_a_miss() {
        let mut r = Registry::new();
        r.gauge("p.aspects.active");
        assert_eq!(r.counter_value("p.aspects.active"), 0);
        assert_eq!(r.misses(), 0, "the name exists, just as another kind");
    }

    #[test]
    fn histogram_reset() {
        let mut r = Registry::new();
        let h = r.histogram("a.b.lat");
        r.record(h, 5);
        r.reset();
        assert_eq!(r.histogram_get(h).count(), 0);
        assert_eq!(r.histogram_get(h).max(), 0);
    }
}
