//! E4 — Fig. 1's run-time adaptation process: weave/unweave latency vs
//! the number of join points the crosscut matches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmp_bench::{weave_target_vm, weave_unweave_once};
use pmp_prose::Prose;

fn bench_weaving(c: &mut Criterion) {
    let mut group = c.benchmark_group("weaving");
    for (classes, methods) in [(1usize, 10usize), (4, 25), (10, 100)] {
        let mut vm = weave_target_vm(classes, methods);
        let prose = Prose::attach(&mut vm);
        let n = classes * methods;
        group.bench_with_input(
            BenchmarkId::new("weave-unweave", n),
            &n,
            |b, _| {
                b.iter(|| weave_unweave_once(&mut vm, &prose));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_weaving);
criterion_main!(benches);
