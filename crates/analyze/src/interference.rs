//! Bridge for pass 4 — aspect interference.
//!
//! The interference analyzer itself lives in
//! [`pmp_prose::interference`], because it must read the weaver's live
//! dispatch tables *after* a weave; this module converts its reports
//! into the pipeline's common [`Finding`] currency so
//! `midas::receiver` journals and thresholds all four passes
//! uniformly.

use crate::{Finding, Pass, Severity};
use pmp_prose::interference::{Interference, InterferenceKind};

/// Converts interference reports into findings. Shared field writes
/// are warnings (the last-woven aspect silently wins); ambiguous
/// ordering is informational (often benign, e.g. two monitors).
pub fn findings(reports: &[Interference]) -> Vec<Finding> {
    reports
        .iter()
        .map(|i| {
            let severity = match i.kind {
                InterferenceKind::SharedFieldWrite => Severity::Warning,
                InterferenceKind::AmbiguousOrder => Severity::Info,
            };
            Finding::new(
                severity,
                Pass::Interference,
                "",
                None,
                format!("{} at {}: {}", i.kind, i.site, i.detail),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_severities() {
        let reports = vec![
            Interference {
                kind: InterferenceKind::SharedFieldWrite,
                aspect_a: "a".into(),
                aspect_b: "b".into(),
                site: "Robot.state".into(),
                detail: "both write".into(),
            },
            Interference {
                kind: InterferenceKind::AmbiguousOrder,
                aspect_a: "a".into(),
                aspect_b: "b".into(),
                site: "entry void Motor.rotate(int)".into(),
                detail: "equal priority".into(),
            },
        ];
        let f = findings(&reports);
        assert_eq!(f[0].severity, Severity::Warning);
        assert_eq!(f[1].severity, Severity::Info);
        assert!(f.iter().all(|x| x.pass == Pass::Interference));
        assert!(f[0].message.contains("Robot.state"));
    }
}
