//! Positions and physical areas (the paper's production halls).

use std::fmt;

/// A 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// Identifier of an area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AreaId(pub u32);

impl fmt::Display for AreaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "area#{}", self.0)
    }
}

/// An axis-aligned rectangular area, e.g. one production hall.
#[derive(Debug, Clone, PartialEq)]
pub struct Area {
    /// The area's id.
    pub id: AreaId,
    /// Human-readable name (`"hall-a"`).
    pub name: String,
    /// Minimum corner.
    pub min: Position,
    /// Maximum corner.
    pub max: Position,
}

impl Area {
    /// Does the area contain `p` (inclusive bounds)?
    pub fn contains(&self, p: Position) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The centre of the area.
    pub fn center(&self) -> Position {
        Position::new((self.min.x + self.max.x) / 2.0, (self.min.y + self.max.y) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn containment() {
        let hall = Area {
            id: AreaId(0),
            name: "hall-a".into(),
            min: Position::new(0.0, 0.0),
            max: Position::new(10.0, 10.0),
        };
        assert!(hall.contains(Position::new(5.0, 5.0)));
        assert!(hall.contains(Position::new(0.0, 0.0)));
        assert!(hall.contains(Position::new(10.0, 10.0)));
        assert!(!hall.contains(Position::new(10.1, 5.0)));
        assert_eq!(hall.center(), Position::new(5.0, 5.0));
    }
}
