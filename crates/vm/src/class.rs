//! Class, field, and method definitions, plus the fluent builders used
//! by applications and the robot substrate to register code.

use crate::error::VmError;
use crate::op::BytecodeBody;
use crate::types::{MethodSig, TypeSig};
use crate::value::Value;
use crate::vm::Vm;
use std::fmt;
use std::sync::Arc;

/// Arguments to a native method invocation.
#[derive(Debug, Clone)]
pub struct NativeCall {
    /// Receiver (`Value::Null` for static methods).
    pub this: Value,
    /// Positional arguments.
    pub args: Vec<Value>,
}

impl NativeCall {
    /// The `i`-th argument, or `Null` if missing.
    pub fn arg(&self, i: usize) -> Value {
        self.args.get(i).cloned().unwrap_or(Value::Null)
    }

    /// The `i`-th argument as an int.
    ///
    /// # Errors
    ///
    /// `TypeError` exception if absent or not an int.
    pub fn int_arg(&self, i: usize) -> Result<i64, VmError> {
        self.arg(i).as_int().ok_or_else(|| {
            VmError::exception(
                crate::error::exception_class::TYPE,
                format!("argument {i} must be int"),
            )
        })
    }

    /// The `i`-th argument as a string.
    ///
    /// # Errors
    ///
    /// `TypeError` exception if absent or not a string.
    pub fn str_arg(&self, i: usize) -> Result<Arc<str>, VmError> {
        match self.arg(i) {
            Value::Str(s) => Ok(s),
            _ => Err(VmError::exception(
                crate::error::exception_class::TYPE,
                format!("argument {i} must be str"),
            )),
        }
    }
}

/// A native method implementation. Receives the VM (for heap access and
/// nested calls) and the call arguments.
pub type NativeFn = Arc<dyn Fn(&mut Vm, NativeCall) -> Result<Value, VmError> + Send + Sync>;

/// How a method's behaviour is defined.
#[derive(Clone)]
pub enum MethodBody {
    /// Portable bytecode, interpretable and shippable.
    Bytecode(BytecodeBody),
    /// A Rust closure (device proxies, built-in libraries, test probes).
    Native(NativeFn),
}

impl fmt::Debug for MethodBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodBody::Bytecode(b) => write!(f, "Bytecode({} ops)", b.ops.len()),
            MethodBody::Native(_) => write!(f, "Native(..)"),
        }
    }
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name, unique within the class.
    pub name: String,
    /// Declared type.
    pub ty: TypeSig,
}

/// A method declaration.
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// Method name, unique within the class (no overloading).
    pub name: String,
    /// Parameter types (excluding the receiver).
    pub params: Vec<TypeSig>,
    /// Return type.
    pub ret: TypeSig,
    /// The implementation.
    pub body: MethodBody,
}

/// A class declaration, registered with [`Vm::register_class`].
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Class name, unique within the VM.
    pub name: String,
    /// Optional superclass (must be registered first).
    pub superclass: Option<String>,
    /// Declared fields (inherited fields are prepended by the VM).
    pub fields: Vec<FieldDef>,
    /// Declared methods (override inherited ones by name).
    pub methods: Vec<MethodDef>,
}

impl ClassDef {
    /// Starts a fluent builder for a class named `name`.
    pub fn build(name: impl Into<String>) -> ClassBuilder {
        ClassBuilder {
            def: ClassDef {
                name: name.into(),
                superclass: None,
                fields: Vec::new(),
                methods: Vec::new(),
            },
        }
    }

    /// Computes the signature of the method named `name`, if declared.
    pub fn sig_of(&self, name: &str) -> Option<MethodSig> {
        self.methods.iter().find(|m| m.name == name).map(|m| MethodSig {
            class: Arc::from(self.name.as_str()),
            name: Arc::from(m.name.as_str()),
            params: m.params.clone(),
            ret: m.ret.clone(),
        })
    }
}

/// Fluent builder for [`ClassDef`].
///
/// # Examples
///
/// ```
/// use pmp_vm::class::ClassDef;
/// use pmp_vm::types::TypeSig;
/// use pmp_vm::builder::MethodBuilder;
/// use pmp_vm::op::{Op, Const};
///
/// let class = ClassDef::build("Counter")
///     .field("count", TypeSig::Int)
///     .method("get", [], TypeSig::Int, |b: &mut MethodBuilder| {
///         b.op(Op::Load(0))
///          .op(Op::GetField { class: "Counter".into(), field: "count".into() })
///          .op(Op::RetVal);
///     })
///     .done();
/// assert_eq!(class.fields.len(), 1);
/// ```
#[derive(Debug)]
pub struct ClassBuilder {
    def: ClassDef,
}

impl ClassBuilder {
    /// Sets the superclass.
    pub fn extends(mut self, superclass: impl Into<String>) -> Self {
        self.def.superclass = Some(superclass.into());
        self
    }

    /// Declares a field.
    pub fn field(mut self, name: impl Into<String>, ty: TypeSig) -> Self {
        self.def.fields.push(FieldDef {
            name: name.into(),
            ty,
        });
        self
    }

    /// Declares a bytecode method assembled by `f`.
    pub fn method(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = TypeSig>,
        ret: TypeSig,
        f: impl FnOnce(&mut crate::builder::MethodBuilder),
    ) -> Self {
        let mut b = crate::builder::MethodBuilder::new();
        f(&mut b);
        self.def.methods.push(MethodDef {
            name: name.into(),
            params: params.into_iter().collect(),
            ret,
            body: MethodBody::Bytecode(b.build()),
        });
        self
    }

    /// Declares a bytecode method from a pre-built body.
    pub fn method_body(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = TypeSig>,
        ret: TypeSig,
        body: BytecodeBody,
    ) -> Self {
        self.def.methods.push(MethodDef {
            name: name.into(),
            params: params.into_iter().collect(),
            ret,
            body: MethodBody::Bytecode(body),
        });
        self
    }

    /// Declares a native method.
    pub fn native(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = TypeSig>,
        ret: TypeSig,
        f: impl Fn(&mut Vm, NativeCall) -> Result<Value, VmError> + Send + Sync + 'static,
    ) -> Self {
        self.def.methods.push(MethodDef {
            name: name.into(),
            params: params.into_iter().collect(),
            ret,
            body: MethodBody::Native(Arc::new(f)),
        });
        self
    }

    /// Finishes the builder, returning the class definition.
    pub fn done(self) -> ClassDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn builder_assembles_class() {
        let class = ClassDef::build("Motor")
            .extends("Device")
            .field("position", TypeSig::Int)
            .field("power", TypeSig::Int)
            .method("stop", [], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .native("id", [], TypeSig::Int, |_vm, _call| Ok(Value::Int(1)))
            .done();
        assert_eq!(class.name, "Motor");
        assert_eq!(class.superclass.as_deref(), Some("Device"));
        assert_eq!(class.fields.len(), 2);
        assert_eq!(class.methods.len(), 2);
    }

    #[test]
    fn sig_of_declared_method() {
        let class = ClassDef::build("A")
            .method("f", [TypeSig::Int], TypeSig::Str, |b| {
                b.op(Op::Ret);
            })
            .done();
        let sig = class.sig_of("f").unwrap();
        assert_eq!(sig.to_string(), "str A.f(int)");
        assert!(class.sig_of("g").is_none());
    }

    #[test]
    fn native_call_arg_helpers() {
        let call = NativeCall {
            this: Value::Null,
            args: vec![Value::Int(5), Value::str("x")],
        };
        assert_eq!(call.int_arg(0).unwrap(), 5);
        assert_eq!(&*call.str_arg(1).unwrap(), "x");
        assert!(call.int_arg(1).is_err());
        assert!(call.str_arg(5).is_err());
        assert_eq!(call.arg(9), Value::Null);
    }
}
