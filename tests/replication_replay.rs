//! Integration tests for the §4.5 applications of the monitoring data:
//! remote replication (mirrored and scaled robots) and simulation
//! (replay from the hall database), plus live policy evolution.

use pmp::core::{Platform, ProductionHalls};
use pmp::extensions;
use pmp::net::Position;
use pmp::vm::prelude::{Permission, Permissions};
use std::collections::HashMap;

const SEC: u64 = 1_000_000_000;

/// Builds a world with a source robot and an identical replica in hall
/// A, whose catalog carries the replication extension.
fn replication_world() -> (Platform, pmp::core::BaseId, pmp::core::MobId, pmp::core::MobId) {
    let mut p = Platform::new(23);
    p.add_area("hall-a", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    let base = p.add_base("hall-a", Position::new(30.0, 30.0), 80.0);
    let cap = Permissions::none()
        .with(Permission::Net)
        .with(Permission::Print);
    let policy = p.trusting_policy(&[base], cap);
    let source = p
        .add_robot("robot:src", Position::new(35.0, 30.0), 80.0, policy.clone())
        .unwrap();
    let replica = p
        .add_robot("robot:mirror", Position::new(25.0, 30.0), 80.0, policy)
        .unwrap();

    let pkg = extensions::replication::package(1);
    let sealed = p.base(base).seal(&pkg);
    p.base_mut(base).base.catalog.put(sealed);
    (p, base, source, replica)
}

#[test]
fn remote_replication_mirrors_the_drawing() {
    let (mut p, base, source, replica) = replication_world();
    p.mirror(base, "robot:src", replica, 1, 1);
    p.pump(6 * SEC);
    assert!(p.node(source).receiver.is_installed("ext/replication"));

    // Draw a square on the source via remote calls.
    for (x0, y0, x1, y1) in [(0, 0, 10, 0), (10, 0, 10, 10), (10, 10, 0, 10), (0, 10, 0, 0)] {
        p.rpc(
            base,
            source,
            "operator:1",
            "DrawingService",
            "drawLine",
            vec![x0, y0, x1, y1],
        );
        p.pump(SEC);
    }
    p.pump(3 * SEC);

    let src_canvas = p.node(source).canvas().unwrap();
    let mirror_canvas = p.node(replica).canvas().unwrap();
    assert_eq!(src_canvas.len(), 4, "source drew the square");
    assert_eq!(
        mirror_canvas, src_canvas,
        "the replica reproduced it stroke for stroke"
    );
}

#[test]
fn scaled_replication_amplifies_the_drawing() {
    let (mut p, base, source, replica) = replication_world();
    p.mirror(base, "robot:src", replica, 3, 1);
    p.pump(6 * SEC);

    p.rpc(
        base,
        source,
        "operator:1",
        "DrawingService",
        "drawLine",
        vec![0, 0, 10, 0],
    );
    p.pump(4 * SEC);

    let src = p.node(source).canvas().unwrap();
    let mirror = p.node(replica).canvas().unwrap();
    assert_eq!(
        mirror,
        src.scaled(3, 1),
        "replica at 3× scale (paper: replication at a different scale)"
    );
    assert_eq!(mirror.strokes()[0].to, (30, 0));
}

#[test]
fn replay_from_the_hall_database_reproduces_the_figure() {
    // Draw in the standard world, then replay the log onto a fresh
    // robot and compare drawings (paper §4.5 "Simulation").
    let mut w = ProductionHalls::build(31);
    w.platform.pump(6 * SEC);
    for (x0, y0, x1, y1) in [(0, 0, 12, 0), (12, 0, 12, 8)] {
        w.platform.rpc(
            w.base_a,
            w.robot,
            "operator:1",
            "DrawingService",
            "drawLine",
            vec![x0, y0, x1, y1],
        );
        w.platform.pump(SEC);
    }
    w.platform.pump(3 * SEC);
    let original = w.platform.node(w.robot).canvas().unwrap();
    assert!(original.len() >= 2);

    // Stand up an offline replica robot and replay the log.
    let mut vm = pmp::vm::Vm::new(pmp::vm::VmConfig::default());
    let handle = pmp::robot::new_handle();
    pmp::robot::register_robot_classes(&mut vm, &handle).unwrap();
    let mut motors = HashMap::new();
    for port in pmp::robot::Port::MOTORS {
        motors.insert(
            format!("motor:{port}"),
            pmp::robot::spawn_motor(&mut vm, port).unwrap(),
        );
    }
    let store = &w.platform.base(w.base_a).store;
    let steps = extensions::replay::plan(store, "robot:1:1");
    assert!(!steps.is_empty(), "the database has the movement log");
    extensions::replay::apply_plan(&mut vm, &motors, &steps).unwrap();

    assert_eq!(
        handle.lock().canvas(),
        &original,
        "replay reproduced the exact drawing"
    );
}

#[test]
fn policy_evolution_replaces_extensions_on_live_robots() {
    let mut w = ProductionHalls::build(37);
    w.platform.pump(6 * SEC);
    assert!(w.platform.node(w.robot).receiver.is_installed("ext/monitoring"));

    // Draw once: movements logged.
    w.platform.rpc(
        w.base_a,
        w.robot,
        "operator:1",
        "DrawingService",
        "drawLine",
        vec![0, 0, 5, 0],
    );
    w.platform.pump(2 * SEC);
    let logged_before = w.platform.base(w.base_a).store.len();
    assert!(logged_before > 0);

    // The hall now wants access control to also allow operator:3 —
    // publish v2 of the access-control extension to the live robot.
    let v2 = extensions::access_control::package(
        "* DrawingService.*(..)",
        &["operator:3"],
        2,
    );
    w.platform.publish_extension(w.base_a, &v2);
    w.platform.pump(3 * SEC);

    // operator:1 is no longer allowed; operator:3 now is.
    let old = w.platform.rpc(
        w.base_a,
        w.robot,
        "operator:1",
        "DrawingService",
        "moveTo",
        vec![1, 1],
    );
    let new = w.platform.rpc(
        w.base_a,
        w.robot,
        "operator:3",
        "DrawingService",
        "moveTo",
        vec![2, 2],
    );
    w.platform.pump(2 * SEC);
    let outcomes = w.platform.take_rpc_outcomes();
    assert!(!outcomes.iter().find(|o| o.req == old).unwrap().ok);
    assert!(outcomes.iter().find(|o| o.req == new).unwrap().ok);
}
