//! Dead-code and unreachable-branch elimination.
//!
//! Two stages. First, every op unreachable from entry (or from a live
//! exception handler — handler liveness is a fixpoint with
//! reachability, see [`crate::cfg::reachable_ops`]) is turned into
//! `Nop`; constant-folded branches from the constprop pass are what
//! usually makes whole arms unreachable. Second, *compaction*: all
//! `Nop`s are removed and every jump target and handler range is
//! remapped to the compacted pc space. Remapping a target `T` to the
//! first surviving pc `>= T` is sound because the ops that terminate a
//! reachable path (`Ret`, `RetVal`, `Throw`, `Jump`) are never Nop-ed,
//! so a reachable target always has a surviving op at or after it.
//! Handlers whose guarded range compacts to nothing are dropped.

use crate::cfg::reachable_ops;
use pmp_vm::op::{BytecodeBody, Op};

/// Removes unreachable code and compacts `Nop`s out of `body`.
/// Returns the number of ops removed. On any internal inconsistency
/// (a jump target with no surviving successor) the body is left
/// untouched — translation validation would reject it anyway.
pub fn eliminate(body: &mut BytecodeBody) -> usize {
    let len = body.ops.len();
    if len == 0 {
        return 0;
    }
    let reach = reachable_ops(body);
    let mut work = body.ops.clone();
    for (pc, live) in reach.iter().enumerate() {
        if !live {
            work[pc] = Op::Nop;
        }
    }

    // Compaction: `remap[pc]` = new index of the first kept op >= pc.
    let keep: Vec<bool> = work.iter().map(|op| *op != Op::Nop).collect();
    if keep.iter().all(|&k| k) {
        return 0; // nothing to remove
    }
    if !keep.iter().any(|&k| k) {
        return 0; // all-Nop body: leave as-is rather than emit an empty one
    }
    let mut remap = vec![usize::MAX; len + 1];
    let mut next = keep.iter().filter(|&&k| k).count(); // = new length
    for pc in (0..len).rev() {
        if keep[pc] {
            next -= 1;
        }
        remap[pc] = if keep[pc] { next } else { remap[pc + 1] };
    }
    remap[len] = keep.iter().filter(|&&k| k).count();

    // Every live jump must land on a surviving op.
    for (pc, op) in work.iter().enumerate() {
        if !keep[pc] {
            continue;
        }
        let t = match op {
            Op::Jump(t) | Op::JumpIf(t) | Op::JumpIfNot(t) => *t as usize,
            _ => continue,
        };
        if t > len || remap[t] == usize::MAX || remap[t] >= remap[len] {
            return 0;
        }
    }

    let new_ops: Vec<Op> = work
        .into_iter()
        .enumerate()
        .filter(|(pc, _)| keep[*pc])
        .map(|(_, op)| match op {
            Op::Jump(t) => Op::Jump(remap[t as usize] as u32),
            Op::JumpIf(t) => Op::JumpIf(remap[t as usize] as u32),
            Op::JumpIfNot(t) => Op::JumpIfNot(remap[t as usize] as u32),
            other => other,
        })
        .collect();

    let new_handlers = body
        .handlers
        .iter()
        .filter_map(|h| {
            let start = remap[(h.start as usize).min(len)];
            let end = remap[(h.end as usize).min(len)];
            let target = remap[(h.target as usize).min(len)];
            if start >= end || target >= new_ops.len() {
                return None; // guarded range or handler body compacted away
            }
            let mut nh = h.clone();
            nh.start = start as u32;
            nh.end = end as u32;
            nh.target = target as u32;
            Some(nh)
        })
        .collect();

    let removed = len - new_ops.len();
    body.ops = new_ops;
    body.handlers = new_handlers;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::op::{Const, HandlerDef};

    fn body(ops: Vec<Op>) -> BytecodeBody {
        BytecodeBody {
            extra_locals: 0,
            ops,
            handlers: vec![],
        }
    }

    #[test]
    fn removes_nops_and_remaps_jumps() {
        let mut b = body(vec![
            Op::Nop,                      // 0
            Op::Const(Const::Bool(true)), // 1
            Op::JumpIf(5),                // 2
            Op::Nop,                      // 3
            Op::Ret,                      // 4
            Op::Ret,                      // 5
        ]);
        assert_eq!(eliminate(&mut b), 2);
        assert_eq!(
            b.ops,
            vec![
                Op::Const(Const::Bool(true)),
                Op::JumpIf(3),
                Op::Ret,
                Op::Ret,
            ]
        );
    }

    #[test]
    fn unreachable_arm_is_dropped() {
        let mut b = body(vec![
            Op::Jump(3),              // 0
            Op::Const(Const::Int(0)), // 1 (dead)
            Op::RetVal,               // 2 (dead)
            Op::Ret,                  // 3
        ]);
        assert_eq!(eliminate(&mut b), 2);
        assert_eq!(b.ops, vec![Op::Jump(1), Op::Ret]);
    }

    #[test]
    fn dead_handler_is_dropped_with_its_range() {
        let mut b = BytecodeBody {
            extra_locals: 0,
            ops: vec![
                Op::Ret,                              // 0
                Op::Const(Const::Str("x".into())),    // 1 (dead, guarded)
                Op::Throw("E".into()),                // 2 (dead)
                Op::Pop,                              // 3 (dead handler)
                Op::Ret,                              // 4 (dead)
            ],
            handlers: vec![HandlerDef {
                start: 1,
                end: 3,
                class: "*".into(),
                target: 3,
            }],
        };
        assert_eq!(eliminate(&mut b), 4);
        assert_eq!(b.ops, vec![Op::Ret]);
        assert!(b.handlers.is_empty());
    }

    #[test]
    fn live_handler_range_is_remapped() {
        let mut b = BytecodeBody {
            extra_locals: 0,
            ops: vec![
                Op::Nop,                           // 0
                Op::Const(Const::Str("m".into())), // 1
                Op::Throw("E".into()),             // 2
                Op::Pop,                           // 3: handler entry
                Op::Ret,                           // 4
            ],
            handlers: vec![HandlerDef {
                start: 1,
                end: 3,
                class: "*".into(),
                target: 3,
            }],
        };
        assert_eq!(eliminate(&mut b), 1);
        assert_eq!(b.handlers.len(), 1);
        assert_eq!(
            (b.handlers[0].start, b.handlers[0].end, b.handlers[0].target),
            (0, 2, 2)
        );
    }

    #[test]
    fn untouched_body_reports_zero() {
        let mut b = body(vec![Op::Const(Const::Int(1)), Op::RetVal]);
        assert_eq!(eliminate(&mut b), 0);
        assert_eq!(b.ops.len(), 2);
    }
}
