//! Crosscuts: which join points an advice applies to.

use crate::parser::{parse_field_pattern, parse_method_pattern, ParsePatternError};
use crate::pattern::{FieldPattern, MethodPattern, NamePat};
use pmp_wire::{Reader, Wire, WireError, Writer};
use std::fmt;

/// A crosscut selects a set of join points in the running application
/// (paper §3.1: "the crosscut of this aspect is the collection of method
/// entries ... that matches the specified signature patterns").
#[derive(Debug, Clone, PartialEq)]
pub enum Crosscut {
    /// Before the bodies of methods matching the pattern.
    MethodEntry(MethodPattern),
    /// After the bodies of methods matching the pattern (normal or
    /// exceptional completion).
    MethodExit(MethodPattern),
    /// After reads of matching fields.
    FieldGet(FieldPattern),
    /// Before writes of matching fields.
    FieldSet(FieldPattern),
    /// When exceptions with matching class names are thrown.
    ExceptionThrow(NamePat),
    /// When exceptions with matching class names are caught.
    ExceptionCatch(NamePat),
}

impl Crosscut {
    /// Parses `before <sig>` / `after <sig>` / `get <field>` /
    /// `set <field>` / `throw <class>` / `catch <class>`.
    ///
    /// # Errors
    ///
    /// [`ParsePatternError`] when the keyword or pattern is malformed.
    ///
    /// # Examples
    ///
    /// ```
    /// use pmp_prose::crosscut::Crosscut;
    ///
    /// let c = Crosscut::parse("before void *.send*(byte[], ..)").unwrap();
    /// assert!(matches!(c, Crosscut::MethodEntry(_)));
    /// ```
    pub fn parse(input: &str) -> Result<Crosscut, ParsePatternError> {
        let s = input.trim();
        let (kw, rest) = s
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParsePatternError {
                input: input.to_string(),
                reason: "expected '<keyword> <pattern>'".to_string(),
            })?;
        let rest = rest.trim();
        Ok(match kw {
            "before" => Crosscut::MethodEntry(parse_method_pattern(rest)?),
            "after" => Crosscut::MethodExit(parse_method_pattern(rest)?),
            "get" => Crosscut::FieldGet(parse_field_pattern(rest)?),
            "set" => Crosscut::FieldSet(parse_field_pattern(rest)?),
            "throw" => Crosscut::ExceptionThrow(NamePat::new(rest)),
            "catch" => Crosscut::ExceptionCatch(NamePat::new(rest)),
            other => {
                return Err(ParsePatternError {
                    input: input.to_string(),
                    reason: format!("unknown crosscut keyword {other:?}"),
                })
            }
        })
    }
}

impl fmt::Display for Crosscut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Crosscut::MethodEntry(p) => write!(f, "before {p}"),
            Crosscut::MethodExit(p) => write!(f, "after {p}"),
            Crosscut::FieldGet(p) => write!(f, "get {p}"),
            Crosscut::FieldSet(p) => write!(f, "set {p}"),
            Crosscut::ExceptionThrow(p) => write!(f, "throw {p}"),
            Crosscut::ExceptionCatch(p) => write!(f, "catch {p}"),
        }
    }
}

// Crosscuts travel over the wire in their textual form — compact and
// self-describing; decode re-parses and validates.
impl Wire for Crosscut {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.to_string());
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        // Borrowed read: the textual form is only parsed, never stored,
        // so this hot per-delivery path allocates nothing for it.
        let s = r.read_str()?;
        Crosscut::parse(s).map_err(|_| WireError::Invalid {
            type_name: "Crosscut",
            reason: "unparseable crosscut text",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_keywords() {
        assert!(matches!(
            Crosscut::parse("before * Motor.*(..)").unwrap(),
            Crosscut::MethodEntry(_)
        ));
        assert!(matches!(
            Crosscut::parse("after * Motor.*(..)").unwrap(),
            Crosscut::MethodExit(_)
        ));
        assert!(matches!(
            Crosscut::parse("get Motor.position").unwrap(),
            Crosscut::FieldGet(_)
        ));
        assert!(matches!(
            Crosscut::parse("set *.state").unwrap(),
            Crosscut::FieldSet(_)
        ));
        assert!(matches!(
            Crosscut::parse("throw Security*").unwrap(),
            Crosscut::ExceptionThrow(_)
        ));
        assert!(matches!(
            Crosscut::parse("catch *").unwrap(),
            Crosscut::ExceptionCatch(_)
        ));
    }

    #[test]
    fn rejects_unknown_keyword() {
        assert!(Crosscut::parse("around * A.f(..)").is_err());
        assert!(Crosscut::parse("before").is_err());
    }

    #[test]
    fn wire_roundtrip() {
        for src in [
            "before void *.send*(byte[], ..)",
            "after * Motor.*(..)",
            "get Motor.pos*",
            "set *.state",
            "throw Err*",
            "catch *",
        ] {
            let c = Crosscut::parse(src).unwrap();
            let bytes = pmp_wire::to_bytes(&c);
            assert_eq!(pmp_wire::from_bytes::<Crosscut>(&bytes).unwrap(), c);
        }
    }

    #[test]
    fn malformed_wire_text_rejected() {
        let bytes = pmp_wire::to_bytes(&"nonsense".to_string());
        assert!(pmp_wire::from_bytes::<Crosscut>(&bytes).is_err());
    }
}
