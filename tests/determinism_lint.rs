//! Determinism lint: a source-level guard over the crates whose code
//! feeds the replayable digests (`trace_digest`, journal digest, WAL
//! bytes). Cross-driver byte-equality is the platform's core testable
//! claim, and the two ways it historically rots are wall-clock reads
//! and hash-order iteration leaking into send/journal paths.
//!
//! The lint scans non-test sources of the digest-feeding crates for:
//!
//! * `Instant::now`, `SystemTime`, `thread_rng`, `rand::` — real time
//!   and real entropy must never reach simulated state;
//! * iteration over values declared as `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.values()`, …) — hash order is
//!   per-process-random, so any such order that escapes into bytes is
//!   a nondeterminism bug. A hit is cleared automatically when a
//!   `.sort` appears within the next three lines (the
//!   collect-then-sort idiom), and otherwise must be justified in
//!   `tools/determinism-allowlist.txt`.
//!
//! The allowlist is exact: every entry must match a current finding,
//! so stale entries fail the build too. The scan is line-based and
//! heuristic — multi-line iterator chains evade it — but it catches
//! the common single-line forms and, more importantly, forces every
//! new wall-clock read into a reviewed allowlist entry.

use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose state feeds trace/journal/WAL digests.
const CRATES: &[&str] = &["core", "midas", "discovery", "tuplespace", "trace", "vm"];

/// Forbidden-token needles (matched as substrings of non-comment code
/// lines).
const TOKENS: &[&str] = &["Instant::now", "SystemTime", "thread_rng", "rand::"];

#[derive(Debug)]
struct Finding {
    /// Repo-relative path, forward slashes.
    path: String,
    line: usize,
    /// The token or iteration expression that fired.
    what: String,
    text: String,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Everything before the first `#[cfg(test)]`: the convention in this
/// repo is a single trailing test module per file.
fn non_test_source(text: &str) -> &str {
    match text.find("#[cfg(test)]") {
        Some(idx) => &text[..idx],
        None => text,
    }
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("//!") || t.starts_with("///")
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Names declared in `line` with a `HashMap`/`HashSet` type or
/// constructor: `name: HashMap<..>`, `let mut name = HashMap::new()`.
fn declared_hash_names(line: &str, out: &mut Vec<String>) {
    let line = line.replace("std::collections::", "");
    for needle in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(pos) = line[from..].find(needle) {
            let at = from + pos;
            from = at + needle.len();
            // Walk back over the separator (`: ` or `= `) to the
            // declared identifier.
            let prefix = line[..at].trim_end();
            let prefix = prefix
                .strip_suffix(':')
                .or_else(|| prefix.strip_suffix('='))
                .map(str::trim_end);
            let Some(prefix) = prefix else { continue };
            let name: String = prefix
                .chars()
                .rev()
                .take_while(|&c| is_ident_char(c))
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !name.is_empty() && !name.chars().next().unwrap().is_numeric() {
                out.push(name);
            }
        }
    }
}

/// Iteration methods whose order is hash order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

fn scan_file(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let src = non_test_source(text);
    let lines: Vec<&str> = src.lines().collect();

    let mut hash_names: Vec<String> = Vec::new();
    for line in &lines {
        if !is_comment(line) {
            declared_hash_names(line, &mut hash_names);
        }
    }
    hash_names.sort();
    hash_names.dedup();

    for (i, line) in lines.iter().enumerate() {
        if is_comment(line) {
            continue;
        }
        for token in TOKENS {
            if line.contains(token) {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: i + 1,
                    what: (*token).to_string(),
                    text: line.trim().to_string(),
                });
            }
        }
        for name in &hash_names {
            for method in ITER_METHODS {
                let needle = format!("{name}{method}");
                let Some(pos) = line.find(&needle) else {
                    continue;
                };
                // Word boundary on the left of the name.
                if pos > 0
                    && line[..pos]
                        .chars()
                        .next_back()
                        .is_some_and(is_ident_char)
                {
                    continue;
                }
                // collect-then-sort idiom: a `.sort` on this line or
                // within the next three clears the hit.
                let sorted_nearby = lines[i..lines.len().min(i + 4)]
                    .iter()
                    .any(|l| l.contains(".sort"));
                if sorted_nearby {
                    continue;
                }
                findings.push(Finding {
                    path: rel.to_string(),
                    line: i + 1,
                    what: needle.clone(),
                    text: line.trim().to_string(),
                });
            }
        }
    }
}

/// Allowlist entries: `path:substring`, substring matched against the
/// finding's `what` or line text.
fn load_allowlist(root: &Path) -> Vec<(String, String)> {
    let path = root.join("tools/determinism-allowlist.txt");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (path, pat) = l
                .split_once(':')
                .unwrap_or_else(|| panic!("allowlist entry without `path:pattern`: {l}"));
            (path.trim().to_string(), pat.trim().to_string())
        })
        .collect()
}

#[test]
fn digest_feeding_crates_are_free_of_nondeterminism_sources() {
    let root = repo_root();
    let mut findings = Vec::new();
    for krate in CRATES {
        let dir = root.join("crates").join(krate).join("src");
        assert!(dir.is_dir(), "missing crate source dir {}", dir.display());
        let mut files = Vec::new();
        rust_files(&dir, &mut files);
        assert!(!files.is_empty(), "no sources under {}", dir.display());
        for file in files {
            let text = fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
            let rel = file
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            scan_file(&rel, &text, &mut findings);
        }
    }

    let allowlist = load_allowlist(&root);
    let mut used = vec![false; allowlist.len()];
    let mut violations = Vec::new();
    for f in &findings {
        let allowed = allowlist.iter().enumerate().any(|(i, (path, pat))| {
            let hit = f.path == *path && (f.what.contains(pat) || f.text.contains(pat));
            if hit {
                used[i] = true;
            }
            hit
        });
        if !allowed {
            violations.push(format!("{}:{}: [{}] {}", f.path, f.line, f.what, f.text));
        }
    }
    let stale: Vec<String> = allowlist
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|((p, pat), _)| format!("{p}:{pat}"))
        .collect();

    assert!(
        violations.is_empty(),
        "nondeterminism-source findings not in tools/determinism-allowlist.txt:\n  {}",
        violations.join("\n  ")
    );
    assert!(
        stale.is_empty(),
        "stale allowlist entries (no longer match any finding — remove them):\n  {}",
        stale.join("\n  ")
    );
}
