//! Quickstart: weave an aspect into a running application, watch it
//! intercept, then unweave — the PROSE half of the platform in ~60
//! lines.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use pmp::prose::prelude::*;
use pmp::vm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A running application: a Motor class on the managed runtime.
    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Motor")
            .field("position", TypeSig::Int)
            .method("rotate", [TypeSig::Int], TypeSig::Void, |b| {
                b.op(Op::Load(0));
                b.op(Op::Load(0)).op(Op::GetField {
                    class: "Motor".into(),
                    field: "position".into(),
                });
                b.op(Op::Load(1)).op(Op::Add);
                b.op(Op::PutField {
                    class: "Motor".into(),
                    field: "position".into(),
                });
                b.op(Op::Ret);
            })
            .done(),
    )?;
    let prose = Prose::attach(&mut vm);
    let motor = vm.new_object("Motor")?;

    // 2. The application runs, unobserved.
    vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(30)])?;
    println!("before weaving: rotate(30) ran silently");

    // 3. Weave a logging aspect at run time — the application is not
    //    restarted, recompiled, or even aware.
    let aspect = Aspect::build("trace")
        .before("* Motor.*(..)", |ctx| {
            if let JoinPoint::MethodEntry { sig, args, .. } = &ctx.jp {
                println!("  [trace] {sig} called with {args:?}");
            }
            Ok(())
        })
        .done()?;
    let id = prose.weave(&mut vm, aspect, WeaveOptions::default())?;
    let info = prose.info(id).expect("woven");
    println!(
        "wove aspect {:?} covering {} join point(s)",
        info.name, info.join_points
    );

    vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(45)])?;
    vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(-15)])?;

    // 4. Unweave: the extension was local in time.
    prose.unweave(&mut vm, id, "demo over")?;
    vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(5)])?;
    println!("after unweaving: rotate(5) ran silently again");

    let pos = vm.call("Motor", "position", motor, vec![]);
    // `position` was never declared — show the graceful error too.
    println!("calling a missing method errors cleanly: {:?}", pos.err().map(|e| e.to_string()));
    Ok(())
}
