//! The client side of discovery: registrar tracking, registration with
//! auto-renewal, and lookups.

use crate::proto::{DiscoveryMsg, CHANNEL};
use crate::service::{ServiceId, ServiceItem, ServiceQuery};
use pmp_net::{Incoming, NetPort, NodeId, SimTime};
use std::collections::HashMap;

const RENEW_TAG: &str = "disc.renew";
const REGCHECK_TAG: &str = "disc.regcheck";

/// Events surfaced to the client's host component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryEvent {
    /// A registrar announced itself for the first time (or after being
    /// lost).
    RegistrarDiscovered {
        /// The registrar's host node.
        node: NodeId,
        /// Its advertised name.
        name: String,
    },
    /// A known registrar has not announced within the timeout.
    RegistrarLost {
        /// The registrar's host node.
        node: NodeId,
    },
    /// A registration completed.
    Registered {
        /// The request id returned by [`DiscoveryClient::register`].
        req: u64,
        /// The assigned service id.
        service: ServiceId,
        /// The registrar holding it.
        registrar: NodeId,
    },
    /// A lease renewal was refused (the registrar dropped us) or the
    /// registrar is unreachable; the registration is gone.
    RegistrationLost {
        /// The lost service.
        service: ServiceId,
        /// The registrar that held it.
        registrar: NodeId,
    },
    /// A lookup completed.
    LookupDone {
        /// The request id returned by [`DiscoveryClient::lookup`].
        req: u64,
        /// Matching services.
        items: Vec<ServiceItem>,
    },
    /// A federated lookup completed.
    FedLookupDone {
        /// The request id returned by [`DiscoveryClient::fed_lookup`].
        req: u64,
        /// Matching services.
        items: Vec<ServiceItem>,
        /// Registrar-to-registrar hops the query took to be answered.
        hops: u16,
    },
}

#[derive(Debug)]
struct Registration {
    registrar: NodeId,
    service: Option<ServiceId>,
    lease_ns: u64,
    req: u64,
    /// The item, kept for re-sending unconfirmed registrations.
    item: ServiceItem,
    /// Renewals sent without an ack yet.
    outstanding: u32,
}

#[derive(Debug)]
struct KnownRegistrar {
    name: String,
    last_seen: SimTime,
    announced: bool,
}

/// The discovery client state machine for one node. Drive it by passing
/// every [`Incoming`] to [`DiscoveryClient::handle`] and collecting the
/// returned events.
#[derive(Debug)]
pub struct DiscoveryClient {
    node: NodeId,
    registrars: HashMap<NodeId, KnownRegistrar>,
    registrations: Vec<Registration>,
    next_req: u64,
    /// A registrar is lost after this long without an announcement.
    pub registrar_timeout_ns: u64,
    started: bool,
    /// Token of the outstanding renewal timer (exactly one is kept
    /// regardless of how many registrations exist). Timers are matched
    /// by token so co-located components never react to each other's
    /// firings.
    renew_token: Option<u64>,
    /// Token of the outstanding registrar-liveness timer.
    regcheck_token: Option<u64>,
    telemetry: Option<pmp_telemetry::Sink>,
}

impl DiscoveryClient {
    /// Creates a client for `node`.
    pub fn new(node: NodeId) -> Self {
        Self {
            node,
            registrars: HashMap::new(),
            registrations: Vec::new(),
            next_req: 1,
            registrar_timeout_ns: 1_600_000_000, // ≈3 announce periods
            started: false,
            renew_token: None,
            regcheck_token: None,
            telemetry: None,
        }
    }

    /// Mirrors client activity into `shared` as `discovery.client.*`
    /// counters (requests sent, lookup round-trips completed).
    pub fn attach_telemetry(&mut self, shared: &pmp_telemetry::Shared) {
        self.telemetry = Some(pmp_telemetry::Sink::direct(shared));
    }

    /// Routes telemetry through a per-cell [`pmp_telemetry::Sink`].
    pub fn attach_sink(&mut self, sink: pmp_telemetry::Sink) {
        self.telemetry = Some(sink);
    }

    fn count(&self, name: &str) {
        if let Some(s) = &self.telemetry {
            s.inc(name);
        }
    }

    /// Schedules the single renewal timer if none is outstanding.
    fn ensure_renew_timer(&mut self, sim: &mut dyn NetPort) {
        if self.renew_token.is_some() {
            return;
        }
        let Some(min_half) = self
            .registrations
            .iter()
            .map(|r| r.lease_ns / 2)
            .min()
        else {
            return;
        };
        self.renew_token = Some(sim.set_timer(self.node, min_half.max(1), RENEW_TAG));
    }

    /// Starts the periodic registrar-liveness check. Idempotent.
    pub fn start(&mut self, sim: &mut dyn NetPort) {
        if self.started {
            return;
        }
        self.started = true;
        self.regcheck_token =
            Some(sim.set_timer(self.node, self.registrar_timeout_ns / 2, REGCHECK_TAG));
    }

    fn fresh_req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    /// Registrars currently believed alive, as `(node, name)`.
    pub fn known_registrars(&self) -> Vec<(NodeId, String)> {
        let mut known: Vec<(NodeId, String)> = self
            .registrars
            .iter()
            .map(|(n, k)| (*n, k.name.clone()))
            .collect();
        known.sort_by(|a, b| (a.0 .0, &a.1).cmp(&(b.0 .0, &b.1)));
        known
    }

    /// Registers `item` with `registrar` under a lease of `lease_ns`;
    /// the client renews it automatically at half-lease until
    /// [`DiscoveryClient::cancel`] or loss, and re-sends the
    /// registration itself while unconfirmed (lossy radios drop
    /// messages). Returns the request id that correlates with
    /// [`DiscoveryEvent::Registered`].
    pub fn register(
        &mut self,
        sim: &mut dyn NetPort,
        registrar: NodeId,
        item: ServiceItem,
        lease_ns: u64,
    ) -> u64 {
        let req = self.fresh_req();
        self.registrations.push(Registration {
            registrar,
            service: None,
            lease_ns,
            req,
            item: item.clone(),
            outstanding: 0,
        });
        let msg = DiscoveryMsg::Register {
            item,
            lease_ns,
            req,
        };
        sim.send(self.node, registrar, CHANNEL, pmp_trace::TraceCtx::NIL.wrap(&msg));
        self.ensure_renew_timer(sim);
        req
    }

    /// Cancels an active registration.
    pub fn cancel(&mut self, sim: &mut dyn NetPort, service: ServiceId) {
        if let Some(idx) = self
            .registrations
            .iter()
            .position(|r| r.service == Some(service))
        {
            let reg = self.registrations.remove(idx);
            let msg = DiscoveryMsg::Cancel { service };
            sim.send(self.node, reg.registrar, CHANNEL, pmp_trace::TraceCtx::NIL.wrap(&msg));
        }
    }

    /// Sends a lookup to `registrar`; the result arrives as
    /// [`DiscoveryEvent::LookupDone`] with the returned request id.
    pub fn lookup(&mut self, sim: &mut dyn NetPort, registrar: NodeId, query: ServiceQuery) -> u64 {
        self.count("discovery.client.lookups_sent");
        let req = self.fresh_req();
        let msg = DiscoveryMsg::Lookup { query, req };
        sim.send(self.node, registrar, CHANNEL, pmp_trace::TraceCtx::NIL.wrap(&msg));
        req
    }

    /// Sends a *federated* lookup: the query enters the directory tier
    /// at `registrar` and is routed through the registrar tree; the
    /// answering registrar replies straight back here. The result
    /// arrives as [`DiscoveryEvent::FedLookupDone`].
    pub fn fed_lookup(
        &mut self,
        sim: &mut dyn NetPort,
        registrar: NodeId,
        query: ServiceQuery,
    ) -> u64 {
        self.count("discovery.client.fed_lookups_sent");
        let req = self.fresh_req();
        let msg = DiscoveryMsg::FedLookup {
            query,
            origin: self.node.0,
            path: Vec::new(),
            req,
        };
        sim.send(self.node, registrar, CHANNEL, pmp_trace::TraceCtx::NIL.wrap(&msg));
        req
    }

    /// Processes one inbox entry; returns surfaced events.
    pub fn handle(&mut self, sim: &mut dyn NetPort, incoming: &Incoming) -> Vec<DiscoveryEvent> {
        let mut events = Vec::new();
        match incoming {
            Incoming::Timer { token, .. } if Some(*token) == self.renew_token => {
                self.renew_token = None;
                self.renew_all(sim, &mut events);
                self.ensure_renew_timer(sim);
            }
            Incoming::Timer { token, .. } if Some(*token) == self.regcheck_token => {
                self.check_registrars(sim.now(), &mut events);
                self.regcheck_token =
                    Some(sim.set_timer(self.node, self.registrar_timeout_ns / 2, REGCHECK_TAG));
            }
            Incoming::Message {
                from,
                channel,
                payload,
                ..
            } if &**channel == CHANNEL => {
                if let Ok(env) = pmp_wire::from_bytes::<pmp_trace::Traced<DiscoveryMsg>>(payload) {
                    self.handle_msg(sim, *from, env.msg, &mut events);
                }
            }
            _ => {}
        }
        events
    }

    fn handle_msg(
        &mut self,
        sim: &mut dyn NetPort,
        from: NodeId,
        msg: DiscoveryMsg,
        events: &mut Vec<DiscoveryEvent>,
    ) {
        match msg {
            DiscoveryMsg::Announce { name } => {
                let now = sim.now();
                let entry = self.registrars.entry(from).or_insert(KnownRegistrar {
                    name: name.clone(),
                    last_seen: now,
                    announced: false,
                });
                entry.last_seen = now;
                entry.name = name.clone();
                if !entry.announced {
                    entry.announced = true;
                    events.push(DiscoveryEvent::RegistrarDiscovered { node: from, name });
                }
            }
            DiscoveryMsg::Registered {
                service,
                lease_ns,
                req,
            } => {
                if let Some(reg) = self.registrations.iter_mut().find(|r| r.req == req) {
                    reg.service = Some(service);
                    reg.lease_ns = lease_ns;
                    events.push(DiscoveryEvent::Registered {
                        req,
                        service,
                        registrar: from,
                    });
                    // Schedule the first renewal at half-lease.
                    self.ensure_renew_timer(sim);
                }
            }
            DiscoveryMsg::RenewAck { service, ok, .. } => {
                if let Some(idx) = self
                    .registrations
                    .iter()
                    .position(|r| r.service == Some(service))
                {
                    if ok {
                        self.registrations[idx].outstanding = 0;
                    } else {
                        let reg = self.registrations.remove(idx);
                        events.push(DiscoveryEvent::RegistrationLost {
                            service,
                            registrar: reg.registrar,
                        });
                    }
                }
            }
            DiscoveryMsg::LookupResult { items, req } => {
                self.count("discovery.client.lookup_roundtrips");
                events.push(DiscoveryEvent::LookupDone { req, items });
            }
            DiscoveryMsg::FedLookupResult {
                items,
                hops,
                origin,
                req,
                ..
            } => {
                // In-transit relays are the co-located registrar's
                // business; only the origin's client consumes.
                if origin == self.node.0 {
                    self.count("discovery.client.fed_lookup_roundtrips");
                    events.push(DiscoveryEvent::FedLookupDone { req, items, hops });
                }
            }
            // Registrar-bound messages are ignored by the client.
            DiscoveryMsg::Register { .. }
            | DiscoveryMsg::Renew { .. }
            | DiscoveryMsg::Cancel { .. }
            | DiscoveryMsg::Lookup { .. }
            | DiscoveryMsg::DirAdvertise { .. }
            | DiscoveryMsg::FedLookup { .. } => {}
        }
    }

    fn renew_all(&mut self, sim: &mut dyn NetPort, events: &mut Vec<DiscoveryEvent>) {
        let mut lost: Vec<usize> = Vec::new();
        for (idx, reg) in self.registrations.iter_mut().enumerate() {
            let Some(service) = reg.service else {
                // Unconfirmed: the Register (or its reply) may have been
                // lost — re-send it with the same correlation id.
                let msg = DiscoveryMsg::Register {
                    item: reg.item.clone(),
                    lease_ns: reg.lease_ns,
                    req: reg.req,
                };
                sim.send(self.node, reg.registrar, CHANNEL, pmp_trace::TraceCtx::NIL.wrap(&msg));
                continue;
            };
            // Two unanswered renewals ⇒ the registrar is unreachable and
            // the lease will lapse: declare the registration lost.
            if reg.outstanding >= 2 {
                lost.push(idx);
                continue;
            }
            reg.outstanding += 1;
            let req = 0; // renewals correlate by service id
            let msg = DiscoveryMsg::Renew { service, req };
            sim.send(self.node, reg.registrar, CHANNEL, pmp_trace::TraceCtx::NIL.wrap(&msg));
        }
        for idx in lost.into_iter().rev() {
            let reg = self.registrations.remove(idx);
            if let Some(service) = reg.service {
                events.push(DiscoveryEvent::RegistrationLost {
                    service,
                    registrar: reg.registrar,
                });
            }
        }
    }

    fn check_registrars(&mut self, now: SimTime, events: &mut Vec<DiscoveryEvent>) {
        let timeout = self.registrar_timeout_ns;
        let mut lost: Vec<NodeId> = self
            .registrars
            .iter()
            .filter(|(_, k)| k.announced && now.since(k.last_seen) > timeout)
            .map(|(n, _)| *n)
            .collect();
        // Event order must not follow hash order.
        lost.sort_by_key(|n| n.0);
        for node in lost {
            if let Some(k) = self.registrars.get_mut(&node) {
                k.announced = false;
            }
            events.push(DiscoveryEvent::RegistrarLost { node });
        }
    }
}
