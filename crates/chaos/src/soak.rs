//! Long-horizon soak scenarios: sustained RPC load plus an
//! adversarial publish stream, on a quiet loss-free radio, so the
//! `perf.soak-*` oracle family (DESIGN.md §17) is armed end to end.
//!
//! A soak is just a [`Scenario`] — same wire format, same executor,
//! same shrinker — whose step program is a dense periodic schedule
//! instead of sparse chaos: semantic calls at a fixed cadence cycling
//! through at-most-once / at-least-once / maybe, hostile packages
//! hammering the admission gate, stream subscribers mirroring every
//! durable namespace, and periodic checkpoints so the WAL cannot grow
//! with the horizon. Because everything is simulated time, an
//! "hour-long" soak costs only the event count, not the hour — and an
//! injected [`Op::SlowLinks`] regression is caught by
//! `perf.soak-rpc-p99` at the first barrier whose p99 crosses the
//! ceiling, then ddmin-shrinks like any other failure.

use crate::script::{CatalogEntry, ExtKind, Op, Scenario, Step, Topology};
use pmp_net::SimRng;

/// Decorrelates soak scheduling jitter from both the generator's
/// script stream and the platform's link RNG.
const SOAK_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Soak knobs. All times are simulated milliseconds.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Active load phase length (steps stop here; settle follows).
    pub horizon_ms: u32,
    /// Period between semantic RPC calls.
    pub rpc_every_ms: u32,
    /// Period between hostile publishes (0 disables them).
    pub adversarial_every_ms: u32,
    /// Attach a stream subscriber per durable namespace at start.
    pub subscribe_streams: bool,
    /// Inject a link-latency regression: `(at_ms, multiplier)`. The
    /// perf oracles must then flag the run — this is the knob the
    /// pinned `.redrepro` and the E19 harness row are built on.
    pub slow_link: Option<(u32, u8)>,
}

impl SoakConfig {
    /// CI-sized soak: one simulated minute of sustained load, a call
    /// every 500 ms, a hostile publish every 2 s.
    #[must_use]
    pub fn ci() -> SoakConfig {
        SoakConfig {
            horizon_ms: 60_000,
            rpc_every_ms: 500,
            adversarial_every_ms: 2_000,
            subscribe_streams: true,
            slow_link: None,
        }
    }

    /// Hour-scale soak: 3600 simulated seconds, a call every 250 ms
    /// (~14k calls), a hostile publish every second (~3.6k attacks).
    #[must_use]
    pub fn hour() -> SoakConfig {
        SoakConfig {
            horizon_ms: 3_600_000,
            rpc_every_ms: 250,
            adversarial_every_ms: 1_000,
            subscribe_streams: true,
            slow_link: None,
        }
    }
}

/// Compiles a soak scenario. Deterministic in `(seed, cfg)`; the seed
/// feeds both the platform link RNG and the schedule's small
/// decisions (which node, which semantics offset, which attack).
///
/// The topology deliberately avoids every radio disturbance — no
/// roams, no corridors, no partitions, no crashes — so
/// `OracleState::radio_quiet` holds and `perf.soak-rpc-p99` stays
/// armed for the whole horizon. Checkpoints are scheduled every ~10 s
/// to keep recovery material bounded; they perturb nothing the perf
/// oracles watch.
#[must_use]
pub fn soak(seed: u64, cfg: &SoakConfig) -> Scenario {
    let mut rng = SimRng::new(seed ^ SOAK_SALT);
    let robots = 2u8;
    let mut steps: Vec<Step> = Vec::new();

    if cfg.subscribe_streams {
        for ns in 0..3u8 {
            steps.push(Step {
                at_ms: 300 + u32::from(ns) * 20,
                op: Op::Subscribe { base: 0, ns },
            });
        }
    }

    // Let adaptation converge before the load phase begins.
    let start_ms: u32 = 3_000;
    let mut t = start_ms;
    while t < cfg.horizon_ms {
        steps.push(Step {
            at_ms: t,
            op: Op::RpcSem {
                base: 0,
                node: rng.range_u64(u64::from(robots)) as u8,
                // Cycle 1,2,1,2,...,0: mostly semantic calls, with an
                // occasional maybe call riding along as the control.
                sem: if rng.chance(0.1) { 0 } else { 1 + (t / cfg.rpc_every_ms % 2) as u8 },
                x: rng.range_u64(60) as u8,
                y: rng.range_u64(60) as u8,
            },
        });
        t += cfg.rpc_every_ms.max(1);
    }
    if cfg.adversarial_every_ms > 0 {
        let mut t = start_ms + 100;
        let mut attack = 0u8;
        while t < cfg.horizon_ms {
            steps.push(Step {
                at_ms: t,
                op: Op::AdversarialPublish {
                    base: 0,
                    attack,
                    version: 1 + t / cfg.adversarial_every_ms.max(1),
                },
            });
            attack = (attack + 1) % 5;
            t += cfg.adversarial_every_ms;
        }
    }
    let mut t = start_ms + 10_000;
    while t < cfg.horizon_ms {
        steps.push(Step {
            at_ms: t,
            op: Op::CheckpointBase { base: 0 },
        });
        t += 10_000;
    }
    if let Some((at_ms, mult)) = cfg.slow_link {
        steps.push(Step {
            at_ms,
            op: Op::SlowLinks { mult },
        });
    }
    steps.sort_by_key(|s| s.at_ms);

    Scenario {
        seed,
        topology: Topology {
            halls: 1,
            loss_per_mille: 0,
            robots,
            catalogs: vec![vec![
                CatalogEntry {
                    kind: ExtKind::Session,
                    version: 1,
                },
                CatalogEntry {
                    kind: ExtKind::Monitoring,
                    version: 1,
                },
            ]],
            lease_ms: 3_000,
            link_neighbors: false,
        },
        steps,
        // Longer than the full retry schedule plus the throughput
        // oracle's slack, so every call issued at the horizon's edge
        // still gets its resolution checked.
        settle_ms: 20_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_is_deterministic_and_time_ordered() {
        let cfg = SoakConfig::ci();
        let a = soak(9, &cfg);
        assert_eq!(a, soak(9, &cfg));
        assert_ne!(a, soak(10, &cfg));
        assert!(a.steps.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        // ~1 call per 500ms over 57s of load phase.
        let calls = a
            .steps
            .iter()
            .filter(|s| matches!(s.op, Op::RpcSem { .. }))
            .count();
        assert!(calls > 100, "{calls} calls");
    }

    #[test]
    fn hour_soak_scales_without_duplicating_schedules() {
        let sc = soak(3, &SoakConfig::hour());
        let calls = sc
            .steps
            .iter()
            .filter(|s| matches!(s.op, Op::RpcSem { .. }))
            .count();
        let attacks = sc
            .steps
            .iter()
            .filter(|s| matches!(s.op, Op::AdversarialPublish { .. }))
            .count();
        assert!(calls > 14_000, "{calls}");
        assert!(attacks > 3_500, "{attacks}");
    }

    #[test]
    fn slow_link_injection_lands_in_the_schedule() {
        let cfg = SoakConfig {
            slow_link: Some((30_000, 2)),
            ..SoakConfig::ci()
        };
        let sc = soak(1, &cfg);
        assert!(sc
            .steps
            .iter()
            .any(|s| s.at_ms == 30_000 && s.op == Op::SlowLinks { mult: 2 }));
    }
}
