//! E2 — the paper's §4.6 micro-costs: a void non-intercepted interface
//! call (paper: ≈700 ns) vs a performed interception (paper: +≈900 ns).

use criterion::{criterion_group, criterion_main, Criterion};
use pmp_bench::{ping_once, ping_vm, PingMode};

fn bench_interception(c: &mut Criterion) {
    let mut group = c.benchmark_group("interception");
    for (label, mode) in [
        ("no-stubs", PingMode::NoStubs),
        ("inactive-hook", PingMode::InactiveHook),
        ("native-advice", PingMode::NativeAdvice),
        ("script-advice", PingMode::ScriptAdvice),
    ] {
        let (mut vm, obj) = ping_vm(mode);
        group.bench_function(label, |b| b.iter(|| ping_once(&mut vm, &obj)));
    }
    group.finish();
}

criterion_group!(benches, bench_interception);
criterion_main!(benches);
