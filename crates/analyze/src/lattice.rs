//! Typed abstract-interpretation lattice for the weave-time optimizer.
//!
//! Each abstract value is one of three lattice points:
//!
//! ```text
//!            Any
//!          /     \
//!   Const(c)      SelfRef
//! ```
//!
//! `Const(c)` means "at run time this slot always holds exactly the
//! value of portable constant `c`"; `SelfRef` means "this slot always
//! holds the receiver (`this`)" — the fact class-hierarchy analysis
//! needs for devirtualisation, since advice classes are leaf classes;
//! `Any` is ⊤. The analysis runs the same worklist the stack-depth
//! verifier uses, so it agrees with admission on which pcs are
//! reachable and on merge points, and it computes the *entry* state
//! (abstract stack + locals) of every reachable pc.
//!
//! [`fold`] is the constant evaluator: it mirrors the interpreter's
//! exec semantics *exactly* (wrapping integer arithmetic, `Display`
//! formatting for `Concat`/`ToStr`, trim-then-parse for `ToInt`), and
//! refuses to fold anything whose concrete execution would throw
//! (division by zero, NaN ordering, type mismatches, unparseable
//! strings) — those ops must stay in the body so the exception still
//! fires at run time.

use pmp_vm::op::{BytecodeBody, Const, Op};

/// One point of the abstract-value lattice.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsVal {
    /// Always exactly this constant.
    Const(Const),
    /// Always the receiver (`this`, local slot 0 at entry).
    SelfRef,
    /// Unknown (⊤).
    Any,
}

impl AbsVal {
    /// Least upper bound of two lattice points.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        if self == other {
            self.clone()
        } else {
            AbsVal::Any
        }
    }

    /// The constant, if this point is one.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            AbsVal::Const(c) => Some(c),
            _ => None,
        }
    }
}

/// Abstract machine state at the entry of one pc.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsState {
    /// Abstract operand stack, bottom first.
    pub stack: Vec<AbsVal>,
    /// Abstract local slots (`0` = `this`).
    pub locals: Vec<AbsVal>,
}

impl AbsState {
    fn join_from(&mut self, other: &AbsState) -> Option<bool> {
        if self.stack.len() != other.stack.len() || self.locals.len() != other.locals.len() {
            return None; // depth disagreement — verifier rejects such bodies
        }
        let mut changed = false;
        for (a, b) in self
            .stack
            .iter_mut()
            .zip(&other.stack)
            .chain(self.locals.iter_mut().zip(&other.locals))
        {
            let j = a.join(b);
            if *a != j {
                *a = j;
                changed = true;
            }
        }
        Some(changed)
    }
}

/// Number of operands a *pure* (side-effect-free, non-throwing-on-fold)
/// op consumes, or `None` if the op is not a folding candidate.
pub fn pure_arity(op: &Op) -> Option<usize> {
    match op {
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Shl
        | Op::Shr
        | Op::BitAnd
        | Op::BitOr
        | Op::BitXor
        | Op::Eq
        | Op::Ne
        | Op::Lt
        | Op::Le
        | Op::Gt
        | Op::Ge
        | Op::Concat => Some(2),
        Op::Neg | Op::Not | Op::ToStr | Op::ToInt | Op::ToFloat => Some(1),
        _ => None,
    }
}

/// Evaluates a pure op over constant operands (`args` bottom-to-top),
/// mirroring the interpreter exactly. Returns `None` when the concrete
/// execution would throw or the operand types don't fit — the op is
/// left in place in that case.
#[allow(clippy::too_many_lines)]
pub fn fold(op: &Op, args: &[Const]) -> Option<Const> {
    use Const::{Bool, Float, Int, Str};
    let bin = || (args[0].clone(), args[1].clone());
    Some(match op {
        Op::Add => match bin() {
            (Int(a), Int(b)) => Int(a.wrapping_add(b)),
            (Float(a), Float(b)) => Float(a + b),
            _ => return None,
        },
        Op::Sub => match bin() {
            (Int(a), Int(b)) => Int(a.wrapping_sub(b)),
            (Float(a), Float(b)) => Float(a - b),
            _ => return None,
        },
        Op::Mul => match bin() {
            (Int(a), Int(b)) => Int(a.wrapping_mul(b)),
            (Float(a), Float(b)) => Float(a * b),
            _ => return None,
        },
        Op::Div => match bin() {
            (Int(_), Int(0)) => return None, // would throw ArithmeticException
            (Int(a), Int(b)) => Int(a.wrapping_div(b)),
            (Float(a), Float(b)) => Float(a / b),
            _ => return None,
        },
        Op::Rem => match bin() {
            (Int(_), Int(0)) => return None, // would throw ArithmeticException
            (Int(a), Int(b)) => Int(a.wrapping_rem(b)),
            (Float(a), Float(b)) => Float(a % b),
            _ => return None,
        },
        Op::Neg => match &args[0] {
            Int(i) => Int(i.wrapping_neg()),
            Float(f) => Float(-f),
            _ => return None,
        },
        Op::Shl => match bin() {
            (Int(a), Int(b)) => Int(a.wrapping_shl(b as u32 & 63)),
            _ => return None,
        },
        Op::Shr => match bin() {
            (Int(a), Int(b)) => Int(a.wrapping_shr(b as u32 & 63)),
            _ => return None,
        },
        Op::BitAnd => match bin() {
            (Int(a), Int(b)) => Int(a & b),
            _ => return None,
        },
        Op::BitOr => match bin() {
            (Int(a), Int(b)) => Int(a | b),
            _ => return None,
        },
        Op::BitXor => match bin() {
            (Int(a), Int(b)) => Int(a ^ b),
            _ => return None,
        },
        // Structural equality, exactly the interpreter's `a == b` on
        // `Value` (so `Int(1) != Float(1.0)` and `NaN != NaN`).
        Op::Eq => Bool(args[0].to_value() == args[1].to_value()),
        Op::Ne => Bool(args[0].to_value() != args[1].to_value()),
        Op::Lt | Op::Le | Op::Gt | Op::Ge => {
            let ord = match bin() {
                (Int(a), Int(b)) => a.cmp(&b),
                (Float(a), Float(b)) => a.partial_cmp(&b)?, // NaN: would throw
                (Str(a), Str(b)) => a.cmp(&b),
                _ => return None,
            };
            Bool(match op {
                Op::Lt => ord.is_lt(),
                Op::Le => ord.is_le(),
                Op::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            })
        }
        Op::Not => match &args[0] {
            Bool(b) => Bool(!b),
            _ => return None,
        },
        Op::Concat => Str(format!("{}{}", args[0].to_value(), args[1].to_value())),
        Op::ToStr => Str(args[0].to_value().to_string()),
        Op::ToInt => match &args[0] {
            Int(i) => Int(*i),
            Float(f) => Int(*f as i64),
            Bool(b) => Int(i64::from(*b)),
            Str(s) => Int(s.trim().parse::<i64>().ok()?), // parse failure: would throw
            Const::Null => return None,
        },
        Op::ToFloat => match &args[0] {
            Int(i) => Float(*i as f64),
            Float(f) => Float(*f),
            Str(s) => Float(s.trim().parse::<f64>().ok()?),
            _ => return None, // the VM has no bool→float coercion
        },
        _ => return None,
    })
}

/// Applies one op to an abstract state, returning the fall-through
/// successor state (`None` on abstract underflow — a body the verifier
/// rejects anyway). Branch targets receive the same popped state.
fn transfer(op: &Op, state: &AbsState) -> Option<AbsState> {
    let mut s = state.clone();
    let popn = |s: &mut AbsState, n: usize| -> Option<Vec<AbsVal>> {
        if s.stack.len() < n {
            return None;
        }
        let at = s.stack.len() - n;
        Some(s.stack.split_off(at))
    };
    match op {
        Op::Const(c) => s.stack.push(AbsVal::Const(c.clone())),
        Op::Load(i) => {
            let v = s.locals.get(*i as usize)?.clone();
            s.stack.push(v);
        }
        Op::Store(i) => {
            let v = popn(&mut s, 1)?.pop()?;
            *s.locals.get_mut(*i as usize)? = v;
        }
        Op::Dup => {
            let v = s.stack.last()?.clone();
            s.stack.push(v);
        }
        Op::Pop => {
            popn(&mut s, 1)?;
        }
        Op::Swap => {
            let n = s.stack.len();
            if n < 2 {
                return None;
            }
            s.stack.swap(n - 1, n - 2);
        }
        Op::JumpIf(_) | Op::JumpIfNot(_) => {
            popn(&mut s, 1)?;
        }
        Op::Jump(_) | Op::Ret | Op::Nop => {}
        Op::RetVal | Op::Throw(_) => {
            popn(&mut s, 1)?;
        }
        Op::New(_) => s.stack.push(AbsVal::Any),
        Op::GetField { .. } => {
            popn(&mut s, 1)?;
            s.stack.push(AbsVal::Any);
        }
        Op::PutField { .. } => {
            popn(&mut s, 2)?;
        }
        Op::CallV { argc, .. } | Op::CallDirect { argc, .. } => {
            popn(&mut s, *argc as usize + 1)?;
            s.stack.push(AbsVal::Any);
        }
        Op::CallStatic { argc, .. } | Op::Sys { argc, .. } => {
            popn(&mut s, *argc as usize)?;
            s.stack.push(AbsVal::Any);
        }
        Op::NewArray | Op::NewBuffer | Op::ArrLen | Op::BufLen => {
            popn(&mut s, 1)?;
            s.stack.push(AbsVal::Any);
        }
        Op::ArrGet | Op::BufGet => {
            popn(&mut s, 2)?;
            s.stack.push(AbsVal::Any);
        }
        Op::ArrSet | Op::BufSet => {
            popn(&mut s, 3)?;
        }
        other => {
            // Pure value ops: pop operands, push the fold (or Any).
            let n = pure_arity(other)?;
            let operands = popn(&mut s, n)?;
            let consts: Option<Vec<Const>> =
                operands.iter().map(|v| v.as_const().cloned()).collect();
            let out = consts
                .and_then(|cs| fold(other, &cs))
                .map_or(AbsVal::Any, AbsVal::Const);
            s.stack.push(out);
        }
    }
    Some(s)
}

/// Runs the abstract interpretation over `body` and returns the entry
/// state of every pc (`None` for unreachable pcs), or `None` if the
/// body is malformed (abstract underflow / merge-depth disagreement —
/// cases the admission verifier rejects, so optimization just bails).
///
/// `params` is the declared parameter count; locals are laid out as
/// `this` + params + `extra_locals`, with `this` entering as
/// [`AbsVal::SelfRef`], params as [`AbsVal::Any`], and extra locals as
/// `Const(Null)` (the interpreter zero-initialises them to `null`).
pub fn analyze_method(body: &BytecodeBody, params: usize) -> Option<Vec<Option<AbsState>>> {
    let len = body.ops.len();
    let mut entry: Vec<Option<AbsState>> = vec![None; len];
    if len == 0 {
        return Some(entry);
    }

    let mut locals = vec![AbsVal::SelfRef];
    locals.extend(std::iter::repeat_n(AbsVal::Any, params));
    locals.extend(std::iter::repeat_n(
        AbsVal::Const(Const::Null),
        body.extra_locals as usize,
    ));
    entry[0] = Some(AbsState {
        stack: Vec::new(),
        locals,
    });

    let mut work = vec![0usize];
    // `merge` returns whether pc needs (re)processing; None = malformed.
    fn merge(entry: &mut [Option<AbsState>], pc: usize, state: &AbsState) -> Option<bool> {
        match &mut entry[pc] {
            Some(existing) => existing.join_from(state),
            slot @ None => {
                *slot = Some(state.clone());
                Some(true)
            }
        }
    }

    while let Some(pc) = work.pop() {
        let state = entry[pc].clone()?;
        let op = &body.ops[pc];
        let out = transfer(op, &state)?;
        for succ in crate::cfg::successors(op, pc) {
            if succ < len && merge(&mut entry, succ, &out)? {
                work.push(succ);
            }
        }
        // Arm handlers guarding this pc: their entry sees a cleared
        // stack holding the exception message (unknown string) and
        // whatever the locals held when the op faulted — ops never
        // mutate locals mid-fault, so the entry locals are exact.
        for h in &body.handlers {
            let t = h.target as usize;
            if t < len && (h.start as usize..h.end as usize).contains(&pc) {
                let hstate = AbsState {
                    stack: vec![AbsVal::Any],
                    locals: state.locals.clone(),
                };
                if merge(&mut entry, t, &hstate)? {
                    work.push(t);
                }
            }
        }
    }
    Some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(ops: Vec<Op>) -> BytecodeBody {
        BytecodeBody {
            extra_locals: 0,
            ops,
            handlers: vec![],
        }
    }

    #[test]
    fn fold_mirrors_wrapping_arithmetic() {
        assert_eq!(
            fold(&Op::Add, &[Const::Int(i64::MAX), Const::Int(1)]),
            Some(Const::Int(i64::MIN))
        );
        assert_eq!(
            fold(&Op::Mul, &[Const::Int(3), Const::Int(7)]),
            Some(Const::Int(21))
        );
    }

    #[test]
    fn fold_refuses_trapping_ops() {
        assert_eq!(fold(&Op::Div, &[Const::Int(1), Const::Int(0)]), None);
        assert_eq!(fold(&Op::Rem, &[Const::Int(1), Const::Int(0)]), None);
        assert_eq!(
            fold(&Op::Lt, &[Const::Float(f64::NAN), Const::Float(1.0)]),
            None
        );
        assert_eq!(fold(&Op::ToInt, &[Const::Str("zebra".into())]), None);
        assert_eq!(fold(&Op::Add, &[Const::Int(1), Const::Float(2.0)]), None);
        assert_eq!(fold(&Op::ToFloat, &[Const::Bool(true)]), None);
    }

    #[test]
    fn fold_concat_uses_display_formatting() {
        assert_eq!(
            fold(&Op::Concat, &[Const::Str("n=".into()), Const::Int(4)]),
            Some(Const::Str("n=4".into()))
        );
        assert_eq!(
            fold(&Op::ToStr, &[Const::Null]),
            Some(Const::Str("null".into()))
        );
    }

    #[test]
    fn fold_equality_is_structural() {
        assert_eq!(
            fold(&Op::Eq, &[Const::Int(1), Const::Float(1.0)]),
            Some(Const::Bool(false))
        );
        assert_eq!(
            fold(&Op::Eq, &[Const::Str("a".into()), Const::Str("a".into())]),
            Some(Const::Bool(true))
        );
    }

    #[test]
    fn entry_state_tracks_self_and_constants() {
        // this.load; const 2; const 3; add; retval
        let b = body(vec![
            Op::Load(0),
            Op::Const(Const::Int(2)),
            Op::Const(Const::Int(3)),
            Op::Add,
            Op::RetVal,
        ]);
        let states = analyze_method(&b, 0).unwrap();
        let at4 = states[4].as_ref().unwrap();
        assert_eq!(
            at4.stack,
            vec![AbsVal::SelfRef, AbsVal::Const(Const::Int(5))]
        );
    }

    #[test]
    fn join_of_distinct_constants_is_any() {
        // if-else pushing 1 or 2, merging at retval
        let b = body(vec![
            Op::Load(1),              // 0: param (Any bool)
            Op::JumpIf(4),            // 1
            Op::Const(Const::Int(1)), // 2
            Op::Jump(5),              // 3
            Op::Const(Const::Int(2)), // 4
            Op::RetVal,               // 5
        ]);
        let states = analyze_method(&b, 1).unwrap();
        let at5 = states[5].as_ref().unwrap();
        assert_eq!(at5.stack, vec![AbsVal::Any]);
    }

    #[test]
    fn extra_locals_enter_as_null_constants() {
        let b = BytecodeBody {
            extra_locals: 1,
            ops: vec![Op::Load(1), Op::RetVal],
            handlers: vec![],
        };
        let states = analyze_method(&b, 0).unwrap();
        let at1 = states[1].as_ref().unwrap();
        assert_eq!(at1.stack, vec![AbsVal::Const(Const::Null)]);
    }

    #[test]
    fn store_updates_abstract_local() {
        let b = BytecodeBody {
            extra_locals: 1,
            ops: vec![
                Op::Const(Const::Int(9)),
                Op::Store(1),
                Op::Load(1),
                Op::RetVal,
            ],
            handlers: vec![],
        };
        let states = analyze_method(&b, 0).unwrap();
        let at3 = states[3].as_ref().unwrap();
        assert_eq!(at3.stack, vec![AbsVal::Const(Const::Int(9))]);
    }
}
