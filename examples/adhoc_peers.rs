//! Symmetric ad-hoc mode (paper §2.1/§3.2): no base station — two
//! devices meet, each one both *provides* and *receives* extensions,
//! "creating an information system infrastructure in an entirely
//! ad-hoc manner".
//!
//! ```bash
//! cargo run --example adhoc_peers
//! ```

use pmp::crypto::{KeyPair, Principal};
use pmp::discovery::Registrar;
use pmp::extensions;
use pmp::midas::{AdaptationService, ExtensionBase, ReceiverPolicy, SignedExtension};
use pmp::net::prelude::*;
use pmp::prose::Prose;
use pmp::vm::prelude::*;

const SEC: u64 = 1_000_000_000;

struct Peer {
    node: NodeId,
    name: &'static str,
    registrar: Registrar,
    base: ExtensionBase,
    receiver: AdaptationService,
    vm: Vm,
    prose: Prose,
}

fn make_peer(
    sim: &mut Simulator,
    name: &'static str,
    pos: Position,
    trusted: &[(&str, &KeyPair)],
) -> Peer {
    let node = sim.add_node(name, pos, 60.0);
    let mut registrar = Registrar::new(node, format!("lookup:{name}"));
    registrar.start(sim);
    let mut base = ExtensionBase::new(node, node);
    base.start(sim);
    let mut policy = ReceiverPolicy::new();
    for (signer, key) in trusted {
        policy.trust.add(Principal::new(*signer, key.public_key()));
        policy.set_signer_cap(
            *signer,
            Permissions::none()
                .with(Permission::Print)
                .with(Permission::Net)
                .with(Permission::Time),
        );
    }
    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Radio")
            .method("sendPacket", [TypeSig::Bytes], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    let prose = Prose::attach(&mut vm);
    let mut receiver = AdaptationService::new(node, name, policy);
    receiver.start(sim);
    Peer {
        node,
        name,
        registrar,
        base,
        receiver,
        vm,
        prose,
    }
}

fn pump(sim: &mut Simulator, peers: &mut [Peer], ns: u64) {
    let until = sim.now().plus(ns);
    loop {
        match sim.peek_next() {
            Some(t) if t <= until => {
                sim.step();
            }
            _ => break,
        }
        for p in peers.iter_mut() {
            for inc in sim.drain_inbox(p.node) {
                p.registrar.handle(sim, &inc);
                p.base.handle(sim, &inc);
                p.receiver.handle(sim, &mut p.vm, &p.prose, &inc);
            }
        }
    }
}

fn main() {
    let mut sim = Simulator::new(9);
    let key_a = KeyPair::from_seed(b"peer-a");
    let key_b = KeyPair::from_seed(b"peer-b");
    let trusted = [("peer-a", &key_a), ("peer-b", &key_b)];

    let mut a = make_peer(&mut sim, "peer-a", Position::new(0.0, 0.0), &trusted);
    let mut b = make_peer(&mut sim, "peer-b", Position::new(10.0, 0.0), &trusted);

    // Each peer carries something the other needs.
    a.base.catalog.put(SignedExtension::seal(
        "peer-a",
        &key_a,
        &extensions::encryption::package(0x42, 1),
    ));
    b.base.catalog.put(SignedExtension::seal(
        "peer-b",
        &key_b,
        &extensions::agegate::package("* Radio.*(..)", 0, 1),
    ));
    println!("peer-a offers link encryption; peer-b offers an age-gate policy");

    let mut peers = [a, b];
    pump(&mut sim, &mut peers, 8 * SEC);
    for p in &mut peers {
        println!("{} now runs: {:?}", p.name, p.receiver.installed_ids());
    }

    // Peer B's radio is transparently encrypted with A's extension.
    let radio = peers[1].vm.new_object("Radio").unwrap();
    let buf = peers[1].vm.new_buffer(vec![0x00, 0x00]);
    let id = buf.as_ref_id().unwrap();
    peers[1]
        .vm
        .call("Radio", "sendPacket", radio, vec![buf])
        .unwrap();
    println!(
        "peer-b sendPacket([0,0]) left the radio as {:02x?} — encrypted by peer-a's extension",
        peers[1].vm.heap().buffer_bytes(id).unwrap()
    );

    // The community dissolves when the peers separate.
    let b_node = peers[1].node;
    sim.move_node(b_node, Position::new(400.0, 0.0));
    pump(&mut sim, &mut peers, 12 * SEC);
    println!(
        "after separating: peer-b runs {:?} — peer-a's extension evaporated; \
         only peer-b's own (self-leased over loopback) remains",
        peers[1].receiver.installed_ids()
    );
}
