//! Key pairs for the Schnorr signature scheme.

use crate::group::{self, G, Q};
use crate::sha256::sha256_parts;
use crate::sign::{self, Signature};
use pmp_wire::{Reader, Wire, WireError, Writer};
use std::fmt;

/// A secret signing key: a nonzero scalar modulo the group order.
///
/// The `Debug` impl redacts the scalar so keys cannot leak via logs.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(pub(crate) u64);

impl SecretKey {
    /// Derives a secret key deterministically from seed bytes.
    ///
    /// Hash-derived and reduced into `[1, Q-1]`, so any seed is valid.
    pub fn from_seed(seed: &[u8]) -> Self {
        let d = sha256_parts(&[b"pmp-secret-key", seed]);
        SecretKey(d.to_u64() % (Q - 1) + 1)
    }

    /// Computes the corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(group::pow_mod(G, self.0))
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey(<redacted>)")
    }
}

/// A public verification key: a group element `g^sk mod P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub(crate) u64);

impl PublicKey {
    /// Raw group element, e.g. for display or identity derivation.
    pub fn element(&self) -> u64 {
        self.0
    }

    /// Verifies `sig` over `msg` against this key.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        sign::verify(self, msg, sig)
    }

    /// Returns `true` if the element is a valid member of the signing
    /// subgroup. Decoded keys from the network must be checked.
    pub fn is_valid(&self) -> bool {
        group::in_group(self.0)
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pk:{:016x}", self.0)
    }
}

impl Wire for PublicKey {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let pk = PublicKey(r.get_u64()?);
        if pk.is_valid() {
            Ok(pk)
        } else {
            Err(WireError::Invalid {
                type_name: "PublicKey",
                reason: "element outside the signing subgroup",
            })
        }
    }
}

/// A secret/public key pair.
///
/// # Examples
///
/// ```
/// use pmp_crypto::KeyPair;
///
/// let pair = KeyPair::from_seed(b"robot:1:1");
/// let sig = pair.sign(b"hello");
/// assert!(pair.public_key().verify(b"hello", &sig));
/// ```
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Builds the pair for an existing secret key.
    pub fn new(secret: SecretKey) -> Self {
        let public = secret.public_key();
        Self { secret, public }
    }

    /// Derives a pair deterministically from seed bytes.
    pub fn from_seed(seed: &[u8]) -> Self {
        Self::new(SecretKey::from_seed(seed))
    }

    /// The public half.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// The secret half.
    pub fn secret_key(&self) -> &SecretKey {
        &self.secret
    }

    /// Signs `msg` with the secret key (deterministic nonce).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        sign::sign(&self.secret, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_determinism() {
        let a = KeyPair::from_seed(b"seed");
        let b = KeyPair::from_seed(b"seed");
        assert_eq!(a.public_key(), b.public_key());
        let c = KeyPair::from_seed(b"other");
        assert_ne!(a.public_key(), c.public_key());
    }

    #[test]
    fn public_key_is_group_member() {
        let pair = KeyPair::from_seed(b"x");
        assert!(pair.public_key().is_valid());
    }

    #[test]
    fn invalid_public_key_rejected_on_decode() {
        // 2 is not a quadratic residue mod P, so not in the subgroup.
        let bytes = pmp_wire::to_bytes(&2u64);
        assert!(pmp_wire::from_bytes::<PublicKey>(&bytes).is_err());
    }

    #[test]
    fn debug_redacts_secret() {
        let pair = KeyPair::from_seed(b"top secret");
        assert_eq!(format!("{:?}", pair.secret_key()), "SecretKey(<redacted>)");
    }

    // Property tests need the external `proptest` crate; the offline
    // default build gates them behind the (empty) `proptest` feature.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_public_key_roundtrip(seed in proptest::collection::vec(any::<u8>(), 1..32)) {
                let pk = KeyPair::from_seed(&seed).public_key();
                let bytes = pmp_wire::to_bytes(&pk);
                prop_assert_eq!(pmp_wire::from_bytes::<PublicKey>(&bytes).unwrap(), pk);
            }
        }
    }
}
