//! Failure injection: the platform must ride out the realities the
//! paper's wireless setting implies — message loss, base-station
//! outages, and network partitions.

use pmp::crypto::{KeyPair, Principal};
use pmp::discovery::Registrar;
use pmp::extensions;
use pmp::midas::{AdaptationService, ExtensionBase, ReceiverPolicy, SignedExtension};
use pmp::net::prelude::*;
use pmp::net::LinkModel;
use pmp::prose::Prose;
use pmp::vm::prelude::*;

const SEC: u64 = 1_000_000_000;

struct World {
    sim: Simulator,
    base_node: NodeId,
    registrar: Registrar,
    base: ExtensionBase,
    robot_node: NodeId,
    vm: Vm,
    prose: Prose,
    receiver: AdaptationService,
    telemetry: pmp::telemetry::Shared,
}

fn world_with_link(seed: u64, link: LinkModel) -> World {
    let telemetry = pmp::telemetry::Shared::new();
    let mut sim = Simulator::with_link(seed, link);
    sim.attach_telemetry(&telemetry);
    let base_node = sim.add_node("base", Position::new(0.0, 0.0), 80.0);
    let robot_node = sim.add_node("robot", Position::new(10.0, 0.0), 80.0);
    let mut registrar = Registrar::new(base_node, "lookup");
    registrar.attach_telemetry(&telemetry);
    registrar.start(&mut sim);
    let mut base = ExtensionBase::new(base_node, base_node);
    base.attach_telemetry(&telemetry);
    base.start(&mut sim);

    let authority = KeyPair::from_seed(b"authority");
    let pkg = extensions::billing::package("* Motor.*(..)", 1, 1);
    base.catalog
        .put(SignedExtension::seal("authority", &authority, &pkg));

    let mut policy = ReceiverPolicy::new();
    policy
        .trust
        .add(Principal::new("authority", authority.public_key()));
    policy.set_signer_cap("authority", Permissions::none().with(Permission::Net));

    let mut vm = Vm::new(VmConfig::default());
    let prose = Prose::attach(&mut vm);
    let mut receiver = AdaptationService::new(robot_node, "robot", policy);
    receiver.attach_telemetry(&telemetry);
    receiver.start(&mut sim);

    World {
        sim,
        base_node,
        registrar,
        base,
        robot_node,
        vm,
        prose,
        receiver,
        telemetry,
    }
}

fn pump(w: &mut World, ns: u64) {
    let until = w.sim.now().plus(ns);
    loop {
        match w.sim.peek_next() {
            Some(t) if t <= until => {
                w.sim.step();
            }
            _ => break,
        }
        for inc in w.sim.drain_inbox(w.base_node) {
            w.registrar.handle(&mut w.sim, &inc);
            w.base.handle(&mut w.sim, &inc);
        }
        for inc in w.sim.drain_inbox(w.robot_node) {
            w.receiver
                .handle(&mut w.sim, &mut w.vm, &w.prose, &inc);
        }
    }
}

#[test]
fn adaptation_succeeds_over_a_lossy_radio() {
    // 20 % message loss: announcements, registrations, deliveries, and
    // acks all get dropped sometimes. Periodic retries (announce, scan,
    // renew) must still converge.
    let mut w = world_with_link(91, LinkModel::lossy(0.20));
    pump(&mut w, 30 * SEC);
    assert!(
        w.receiver.is_installed("ext/billing"),
        "installed despite 20% loss: {:?}",
        w.receiver.installed_ids()
    );
    assert!(
        w.sim.trace.stats.dropped_loss > 0,
        "the link really was lossy ({} drops)",
        w.sim.trace.stats.dropped_loss
    );
    // And it stays alive: renewals are also lossy but redundant.
    pump(&mut w, 30 * SEC);
    assert!(w.receiver.is_installed("ext/billing"));

    // The telemetry mirror saw the same lossy world as the legacy
    // counters, and the install survived at least one rejection-free
    // delivery pipeline.
    let stats = w.sim.trace.stats;
    assert_eq!(
        w.telemetry.counter_value("net.sim.dropped_loss"),
        stats.dropped_loss
    );
    assert_eq!(w.telemetry.counter_value("net.sim.delivered"), stats.delivered);
    assert!(w.telemetry.counter_value("midas.receiver.installed") >= 1);
    println!("{}", w.telemetry.render_table());
}

#[test]
fn base_outage_revokes_extensions_and_recovery_readapts() {
    let mut w = world_with_link(92, LinkModel::ideal());
    pump(&mut w, 6 * SEC);
    assert!(w.receiver.is_installed("ext/billing"));

    // The base station crashes (radio off): no more lease renewals.
    w.sim.set_online(w.base_node, false);
    pump(&mut w, 15 * SEC);
    assert!(
        !w.receiver.is_installed("ext/billing"),
        "extensions evaporated during the outage"
    );

    // The base comes back: the robot re-advertises and is re-adapted.
    w.sim.set_online(w.base_node, true);
    pump(&mut w, 15 * SEC);
    assert!(
        w.receiver.is_installed("ext/billing"),
        "re-adapted after recovery: {:?}",
        w.receiver.installed_ids()
    );
}

#[test]
fn partition_heals_like_mobility() {
    let mut w = world_with_link(93, LinkModel::ideal());
    pump(&mut w, 6 * SEC);
    assert!(w.receiver.is_installed("ext/billing"));

    w.sim.partition(w.base_node, w.robot_node);
    pump(&mut w, 15 * SEC);
    assert!(!w.receiver.is_installed("ext/billing"));

    w.sim.heal(w.base_node, w.robot_node);
    pump(&mut w, 15 * SEC);
    assert!(w.receiver.is_installed("ext/billing"));
}
