//! # pmp-vm — a managed runtime with simulated JIT and PROSE hooks
//!
//! The paper's PROSE system modifies a JVM's JIT compiler so that every
//! potential *join point* (method entry/exit, field access, exception
//! throw/catch) carries a minimal stub; aspects woven at run time
//! activate those stubs without stopping the application. Rust cannot
//! inject code into a running process, so this crate supplies the
//! substrate the same mechanism needs: a small class-based runtime whose
//! "JIT" (simulated) compiles portable bytecode and optionally
//! plants the stubs ([`hooks`]).
//!
//! The crate deliberately mirrors the cost structure the paper measures:
//!
//! * **stubs off** — no adaptation support, the baseline;
//! * **stubs on, no advice** — one atomic flag check per join point
//!   (the paper's ≈7 % SPECjvm overhead);
//! * **advice active** — a dispatch into the AOP runtime per event (the
//!   paper's ≈900 ns per interception).
//!
//! Applications define classes ([`class::ClassDef`]) whose methods are
//! either portable bytecode ([`op::Op`], assembled with
//! [`builder::MethodBuilder`]) or native Rust closures. Side effects go
//! through the permission-checked system interface ([`sys`]), which is
//! the sandbox boundary for foreign advice.
//!
//! # Examples
//!
//! ```
//! use pmp_vm::prelude::*;
//!
//! # fn main() -> Result<(), VmError> {
//! let mut vm = Vm::new(VmConfig::default());
//! vm.register_class(
//!     ClassDef::build("Adder")
//!         .method("add", [TypeSig::Int, TypeSig::Int], TypeSig::Int, |b| {
//!             b.op(Op::Load(1)).op(Op::Load(2)).op(Op::Add).op(Op::RetVal);
//!         })
//!         .done(),
//! )?;
//! let sum = vm.call("Adder", "add", Value::Null, vec![2.into(), 3.into()])?;
//! assert_eq!(sum, Value::Int(5));
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod class;
pub mod error;
pub mod heap;
pub mod hooks;
mod interp;
mod jit;
pub mod op;
pub mod perm;
pub mod sys;
pub mod types;
pub mod value;
pub mod vm;

pub use error::{Limit, VmError, VmException};
pub use hooks::{ClassId, Dispatcher, FieldId, MethodId, Outcome};
pub use value::{ObjId, Value};
pub use vm::{Vm, VmConfig, VmStats};

/// Common imports for working with the VM.
pub mod prelude {
    pub use crate::builder::MethodBuilder;
    pub use crate::class::{ClassDef, NativeCall};
    pub use crate::error::{exception_class, VmError, VmException};
    pub use crate::hooks::{ClassId, FieldId, MethodId};
    pub use crate::op::{Const, Op};
    pub use crate::perm::{Permission, Permissions};
    pub use crate::types::{MethodSig, TypeSig};
    pub use crate::value::{ObjId, Value};
    pub use crate::vm::{Vm, VmConfig, VmStats};
}
