//! Symmetric (ad-hoc) mode: "if a mobile device is capable of
//! receiving extensions, it should also be able to provide extensions
//! to other nodes" (paper §2.1). Two peers, no base station: each hosts
//! a registrar, an extension base, *and* an adaptation service; when
//! they meet, they exchange extensions both ways.

use pmp::crypto::{KeyPair, Principal};
use pmp::discovery::Registrar;
use pmp::extensions;
use pmp::midas::{AdaptationService, ExtensionBase, ReceiverPolicy};
use pmp::net::prelude::*;
use pmp::prose::Prose;
use pmp::vm::prelude::*;

const SEC: u64 = 1_000_000_000;

/// One fully symmetric peer.
struct Peer {
    node: NodeId,
    registrar: Registrar,
    base: ExtensionBase,
    receiver: AdaptationService,
    vm: Vm,
    prose: Prose,
}

fn make_peer(
    sim: &mut Simulator,
    name: &str,
    pos: Position,
    own_key: &KeyPair,
    trusted: &[(String, &KeyPair)],
) -> Peer {
    let node = sim.add_node(name, pos, 60.0);
    let mut registrar = Registrar::new(node, format!("lookup:{name}"));
    registrar.start(sim);
    let mut base = ExtensionBase::new(node, node);
    base.start(sim);
    let _ = own_key;

    let mut policy = ReceiverPolicy::new();
    let cap = Permissions::none().with(Permission::Print).with(Permission::Net);
    for (signer, key) in trusted {
        policy.trust.add(Principal::new(signer.clone(), key.public_key()));
        policy.set_signer_cap(signer.clone(), cap);
    }

    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Radio")
            .method("sendPacket", [TypeSig::Bytes], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    vm.register_class(
        ClassDef::build("Motor")
            .method("rotate", [TypeSig::Int], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    let prose = Prose::attach(&mut vm);
    let mut receiver = AdaptationService::new(node, name, policy);
    receiver.start(sim);

    Peer {
        node,
        registrar,
        base,
        receiver,
        vm,
        prose,
    }
}

fn pump(sim: &mut Simulator, peers: &mut [Peer], ns: u64) {
    let until = sim.now().plus(ns);
    loop {
        match sim.peek_next() {
            Some(t) if t <= until => {
                sim.step();
            }
            _ => break,
        }
        for p in peers.iter_mut() {
            for inc in sim.drain_inbox(p.node) {
                p.registrar.handle(sim, &inc);
                p.base.handle(sim, &inc);
                p.receiver.handle(sim, &mut p.vm, &p.prose, &inc);
            }
        }
    }
}

#[test]
fn peers_exchange_extensions_both_ways() {
    let mut sim = Simulator::new(51);
    let key_a = KeyPair::from_seed(b"peer-a");
    let key_b = KeyPair::from_seed(b"peer-b");
    // Each peer trusts the *other* (and itself, harmlessly).
    let trusted: Vec<(String, &KeyPair)> = vec![
        ("peer-a".to_string(), &key_a),
        ("peer-b".to_string(), &key_b),
    ];
    let mut a = make_peer(&mut sim, "peer-a", Position::new(0.0, 0.0), &key_a, &trusted);
    let mut b = make_peer(&mut sim, "peer-b", Position::new(10.0, 0.0), &key_b, &trusted);

    // Peer A offers encryption; peer B offers billing.
    let enc = extensions::encryption::package(0x77, 1);
    a.base.catalog.put(pmp::midas::SignedExtension::seal(
        "peer-a", &key_a, &enc,
    ));
    let bill = extensions::billing::package("* Motor.*(..)", 1, 1);
    b.base.catalog.put(pmp::midas::SignedExtension::seal(
        "peer-b", &key_b, &bill,
    ));

    let mut peers = [a, b];
    pump(&mut sim, &mut peers, 8 * SEC);

    // Both directions adapted: A got billing from B, B got encryption
    // from A.
    assert!(
        peers[0].receiver.is_installed("ext/billing"),
        "peer A installed B's extension: {:?}",
        peers[0].receiver.installed_ids()
    );
    assert!(
        peers[1].receiver.is_installed("ext/encryption"),
        "peer B installed A's extension: {:?}",
        peers[1].receiver.installed_ids()
    );
    // And their own, delivered over loopback — a node is also a member
    // of its own community.
    assert!(peers[0].receiver.is_installed("ext/encryption"));
    assert!(peers[1].receiver.is_installed("ext/billing"));

    // The received encryption aspect really intercepts B's radio.
    let radio = peers[1].vm.new_object("Radio").unwrap();
    let buf = peers[1].vm.new_buffer(vec![0, 0, 0]);
    let id = buf.as_ref_id().unwrap();
    peers[1]
        .vm
        .call("Radio", "sendPacket", radio, vec![buf])
        .unwrap();
    assert_eq!(
        peers[1].vm.heap().buffer_bytes(id).unwrap(),
        &[0x77, 0x77, 0x77],
        "B's outgoing packets are now encrypted with A's key"
    );
}

#[test]
fn separating_peers_dissolves_the_adhoc_community() {
    let mut sim = Simulator::new(52);
    let key_a = KeyPair::from_seed(b"peer-a");
    let key_b = KeyPair::from_seed(b"peer-b");
    let trusted: Vec<(String, &KeyPair)> = vec![
        ("peer-a".to_string(), &key_a),
        ("peer-b".to_string(), &key_b),
    ];
    let mut a = make_peer(&mut sim, "peer-a", Position::new(0.0, 0.0), &key_a, &trusted);
    let b = make_peer(&mut sim, "peer-b", Position::new(10.0, 0.0), &key_b, &trusted);
    a.base.set_lease(2 * SEC);
    let enc = extensions::encryption::package(0x11, 1);
    a.base.catalog.put(pmp::midas::SignedExtension::seal(
        "peer-a", &key_a, &enc,
    ));

    let mut peers = [a, b];
    pump(&mut sim, &mut peers, 6 * SEC);
    assert!(peers[1].receiver.is_installed("ext/encryption"));

    // The peers drift apart; leases lapse; the extension evaporates.
    let b_node = peers[1].node;
    sim.move_node(b_node, Position::new(500.0, 0.0));
    pump(&mut sim, &mut peers, 12 * SEC);
    assert!(
        !peers[1].receiver.is_installed("ext/encryption"),
        "extension withdrawn once the peers separated"
    );
}
