//! The ad-hoc transaction extension (paper §4.6 measures its cost;
//! see also the authors' *Ad-Hoc Transactions for Mobile Services*):
//! methods matching the transactional pattern get all-or-nothing
//! semantics over a declared set of fields — entry advice snapshots
//! them into aspect state, exceptional exit restores them.

use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::{Const, Op};

/// Extension id.
pub const ID: &str = "ext/transactions";

/// Builds the transaction package: methods matching `tx_pattern` run
/// transactionally over `class`'s `fields`.
pub fn package(tx_pattern: &str, class: &str, fields: &[&str], version: u32) -> ExtensionPackage {
    let aspect_class = versioned_class("AdHocTx", version);

    // Entry: snapshot each target field into this.snap_<field>.
    let mut begin = MethodBuilder::new();
    for f in fields {
        begin.op(Op::Load(0)); // aspect instance
        begin.op(Op::Load(1)); // target object
        begin.op(Op::GetField {
            class: class.to_string(),
            field: (*f).to_string(),
        });
        begin.op(Op::PutField {
            class: aspect_class.clone(),
            field: format!("snap_{f}"),
        });
    }
    begin.op(Op::Ret);

    // Exit: if an exception escaped (slot 5 non-null), restore.
    let mut end = MethodBuilder::new();
    let commit = end.label();
    end.op(Op::Load(5)).op(Op::Const(Const::Null)).op(Op::Eq);
    end.jump_if(commit);
    for f in fields {
        end.op(Op::Load(1)); // target object
        end.op(Op::Load(0)); // aspect instance
        end.op(Op::GetField {
            class: aspect_class.clone(),
            field: format!("snap_{f}"),
        });
        end.op(Op::PutField {
            class: class.to_string(),
            field: (*f).to_string(),
        });
    }
    end.bind(commit);
    end.op(Op::Ret);

    let class_def = PortableClass {
        name: aspect_class,
        fields: fields
            .iter()
            .map(|f| (format!("snap_{f}"), "any".to_string()))
            .collect(),
        methods: vec![
            PortableMethod {
                name: "begin".into(),
                params: advice_params(),
                ret: "any".into(),
                body: begin.build(),
            },
            PortableMethod {
                name: "end".into(),
                params: advice_params(),
                ret: "any".into(),
                body: end.build(),
            },
        ],
    };
    let aspect = Aspect::script(
        "transactions",
        class_def,
        vec![
            (
                Crosscut::parse(&format!("before {tx_pattern}")).expect("valid"),
                "begin".into(),
                -90,
            ),
            (
                Crosscut::parse(&format!("after {tx_pattern}")).expect("valid"),
                "end".into(),
                -90,
            ),
        ],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: ID.into(),
            version,
            description: "all-or-nothing field updates for transactional methods".into(),
            requires: vec![],
            permissions: vec![],
            implicit: false,
        },
        aspect: PortableAspect::try_from(&aspect).expect("portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_vm::perm::Permissions;
    use pmp_vm::prelude::*;

    fn account_vm() -> (Vm, Prose) {
        let mut vm = Vm::new(VmConfig::default());
        // txTransfer(amount, fail): balance += amount; if fail: throw.
        vm.register_class(
            ClassDef::build("Account")
                .field("balance", TypeSig::Int)
                .field("ops", TypeSig::Int)
                .method(
                    "txTransfer",
                    [TypeSig::Int, TypeSig::Bool],
                    TypeSig::Void,
                    |b| {
                        let ok = b.label();
                        // balance += amount; ops += 1
                        b.op(Op::Load(0));
                        b.op(Op::Load(0)).op(Op::GetField {
                            class: "Account".into(),
                            field: "balance".into(),
                        });
                        b.op(Op::Load(1)).op(Op::Add);
                        b.op(Op::PutField {
                            class: "Account".into(),
                            field: "balance".into(),
                        });
                        b.op(Op::Load(0));
                        b.op(Op::Load(0)).op(Op::GetField {
                            class: "Account".into(),
                            field: "ops".into(),
                        });
                        b.konst(1i64).op(Op::Add);
                        b.op(Op::PutField {
                            class: "Account".into(),
                            field: "ops".into(),
                        });
                        b.op(Op::Load(2));
                        b.jump_if_not(ok);
                        b.konst("transfer failed mid-way");
                        b.op(Op::Throw("TransferError".into()));
                        b.bind(ok);
                        b.op(Op::Ret);
                    },
                )
                .done(),
        )
        .unwrap();
        let prose = Prose::attach(&mut vm);
        prose
            .weave(
                &mut vm,
                package("* Account.tx*(..)", "Account", &["balance", "ops"], 1)
                    .aspect
                    .into(),
                WeaveOptions::sandboxed(Permissions::none()),
            )
            .unwrap();
        (vm, prose)
    }

    fn balance(vm: &Vm, acc: &Value) -> i64 {
        let id = acc.as_ref_id().unwrap();
        vm.get_field(id, "Account", "balance")
            .unwrap()
            .as_int()
            .unwrap()
    }

    #[test]
    fn successful_tx_commits() {
        let (mut vm, _) = account_vm();
        let acc = vm.new_object("Account").unwrap();
        vm.call(
            "Account",
            "txTransfer",
            acc.clone(),
            vec![Value::Int(100), Value::Bool(false)],
        )
        .unwrap();
        assert_eq!(balance(&vm, &acc), 100);
    }

    #[test]
    fn failing_tx_rolls_back_all_fields() {
        let (mut vm, _) = account_vm();
        let acc = vm.new_object("Account").unwrap();
        vm.call(
            "Account",
            "txTransfer",
            acc.clone(),
            vec![Value::Int(100), Value::Bool(false)],
        )
        .unwrap();
        let err = vm
            .call(
                "Account",
                "txTransfer",
                acc.clone(),
                vec![Value::Int(50), Value::Bool(true)],
            )
            .unwrap_err();
        assert_eq!(err.as_exception().unwrap().class.as_ref(), "TransferError");
        // The partial update (balance += 50, ops += 1) was rolled back.
        assert_eq!(balance(&vm, &acc), 100);
        let id = acc.as_ref_id().unwrap();
        assert_eq!(
            vm.get_field(id, "Account", "ops").unwrap(),
            Value::Int(1),
            "ops counter rolled back too"
        );
    }
}
