//! The access-control extension (paper §3.3, Fig. 2c step 3): uses the
//! session information to decide whether a service call may proceed;
//! "if the access is denied, the execution is ended with an exception"
//! (§4.6).
//!
//! Requires the implicit session-management extension
//! ([`crate::session`]), which MIDAS auto-installs first.

use crate::session;
use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::Op;

/// Extension id.
pub const ID: &str = "ext/access-control";

/// Builds the access-control package: only the `allowed` callers may
/// invoke methods matching `service_pattern`. The allow-list is baked
/// into the shipped bytecode — the policy *is* the code, configured by
/// the base station (paper: extensions are "instantiated and configured
/// by a trusted entity").
pub fn package(service_pattern: &str, allowed: &[&str], version: u32) -> ExtensionPackage {
    let mut b = MethodBuilder::new();
    b.locals(1); // 6: caller
    let deny = b.label();
    let ok = b.label();
    // caller = session.get("caller")
    b.konst(session::CALLER_KEY);
    b.op(Op::Sys {
        name: "session.get".into(),
        argc: 1,
    });
    b.op(Op::Store(6));
    // unrolled allow-list comparison
    for name in allowed {
        b.op(Op::Load(6)).konst(*name).op(Op::Eq);
        b.jump_if(ok);
    }
    b.jump(deny);
    b.bind(deny);
    b.konst("caller not authorized: ").op(Op::Load(6)).op(Op::Concat);
    b.op(Op::Throw("AccessDeniedException".into()));
    b.bind(ok);
    b.op(Op::Ret);

    let class = PortableClass {
        name: versioned_class("AccessControl", version),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "check".into(),
            params: advice_params(),
            ret: "any".into(),
            body: b.build(),
        }],
    };
    let aspect = Aspect::script(
        "access-control",
        class,
        vec![(
            Crosscut::parse(&format!("before {service_pattern}")).expect("valid pattern"),
            "check".into(),
            -50, // after session capture (-100), before ordinary advice
        )],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: ID.into(),
            version,
            description: "denies service calls from unauthorized callers".into(),
            requires: vec![session::ID.into()],
            permissions: vec![],
            implicit: false,
        },
        aspect: PortableAspect::try_from(&aspect).expect("portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::register_session_blackboard;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_vm::perm::Permissions;
    use pmp_vm::prelude::*;
    use pmp_telemetry::sync::Mutex;
    use std::sync::Arc;

    fn service_vm() -> (Vm, Prose, Arc<Mutex<String>>) {
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("DrawingService")
                .method("draw", [], TypeSig::Str, |b| {
                    b.konst("drawn").op(Op::RetVal);
                })
                .done(),
        )
        .unwrap();
        register_session_blackboard(&mut vm);
        let caller: Arc<Mutex<String>> = Arc::new(Mutex::new("nobody".into()));
        let c = caller.clone();
        vm.register_sys(
            "session.caller",
            None,
            Arc::new(move |_vm, _args| Ok(Value::str(c.lock().clone()))),
        );
        let prose = Prose::attach(&mut vm);
        (vm, prose, caller)
    }

    fn weave_both(vm: &mut Vm, prose: &Prose) {
        let none = Permissions::none();
        prose
            .weave(
                vm,
                session::package("* DrawingService.*(..)", 1).aspect.into(),
                WeaveOptions::sandboxed(none),
            )
            .unwrap();
        prose
            .weave(
                vm,
                package("* DrawingService.*(..)", &["operator:1", "operator:2"], 1)
                    .aspect
                    .into(),
                WeaveOptions::sandboxed(none),
            )
            .unwrap();
    }

    #[test]
    fn authorized_caller_proceeds() {
        let (mut vm, prose, caller) = service_vm();
        weave_both(&mut vm, &prose);
        *caller.lock() = "operator:2".into();
        let svc = vm.new_object("DrawingService").unwrap();
        let out = vm.call("DrawingService", "draw", svc, vec![]).unwrap();
        assert_eq!(out, Value::str("drawn"));
    }

    #[test]
    fn unauthorized_caller_denied_with_exception() {
        let (mut vm, prose, caller) = service_vm();
        weave_both(&mut vm, &prose);
        *caller.lock() = "intruder".into();
        let svc = vm.new_object("DrawingService").unwrap();
        let err = vm
            .call("DrawingService", "draw", svc, vec![])
            .unwrap_err();
        let exc = err.as_exception().unwrap();
        assert_eq!(exc.class.as_ref(), "AccessDeniedException");
        assert!(exc.message.contains("intruder"));
    }

    #[test]
    fn declares_session_dependency() {
        let pkg = package("* X.*(..)", &["a"], 1);
        assert_eq!(pkg.meta.requires, vec![session::ID.to_string()]);
    }
}

#[cfg(test)]
mod sensor_security_tests {
    //! The paper's §4.6 student project: "a security extension that
    //! intercepts readings of all sensors ... decides, before the
    //! execution of the application logic, whether the remote caller
    //! has the right to execute the intercepted method" — it is the
    //! access-control extension pointed at the sensor proxies.

    use super::*;
    use crate::support::register_session_blackboard;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_robot::{new_handle, register_robot_classes, spawn_sensor, Port};
    use pmp_vm::perm::Permissions;
    use pmp_vm::prelude::*;
    use std::sync::Arc;

    #[test]
    fn sensor_readings_are_gated_by_caller_identity() {
        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        handle.lock().rcx.sensor_mut(Port::S2).set_value(55);
        register_session_blackboard(&mut vm);
        let caller = Arc::new(pmp_telemetry::sync::Mutex::new(String::from("inspector:1")));
        let c = caller.clone();
        vm.register_sys(
            "session.caller",
            None,
            Arc::new(move |_vm, _| Ok(Value::str(c.lock().clone()))),
        );
        let prose = Prose::attach(&mut vm);
        let none = Permissions::none();
        for pkg in [
            crate::session::package("* Sensor.*(..)", 1),
            package("* Sensor.*(..)", &["inspector:1"], 1),
        ] {
            prose
                .weave(&mut vm, pkg.aspect.into(), WeaveOptions::sandboxed(none))
                .unwrap();
        }

        let sensor = spawn_sensor(&mut vm, Port::S2).unwrap();
        // The authorized inspector reads the sensor.
        let v = vm.call("Sensor", "read", sensor.clone(), vec![]).unwrap();
        assert_eq!(v, Value::Int(55));
        // Anyone else is denied before the hardware is touched.
        *caller.lock() = "random:9".into();
        let err = vm.call("Sensor", "read", sensor, vec![]).unwrap_err();
        assert_eq!(
            err.as_exception().unwrap().class.as_ref(),
            "AccessDeniedException"
        );
    }
}
