//! Crash-safety for the movement database.
//!
//! The movement store is append-only, so its durable form is simple:
//! each WAL record is one wire-encoded [`MovementRecord`], and a
//! snapshot is the full table in insertion order. Replaying appends
//! through [`MovementStore::append`] rebuilds the per-robot index as a
//! side effect — no index state needs logging.

use crate::movement::{MovementRecord, MovementStore};
use pmp_durable::{Durable, DurableError};

/// The WAL namespace owned by the movement store.
pub const NAMESPACE: &str = "store.movements";

impl MovementStore {
    /// The wire payload to log for one appended record (pair with
    /// [`MovementStore::append`] at the call site).
    #[must_use]
    pub fn wal_payload(record: &MovementRecord) -> Vec<u8> {
        pmp_wire::to_bytes(record)
    }
}

impl Durable for MovementStore {
    fn namespace(&self) -> &'static str {
        NAMESPACE
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        let records: Vec<MovementRecord> =
            self.table().iter().map(|(_, _, r)| r.clone()).collect();
        pmp_wire::to_bytes(&records)
    }

    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let records: Vec<MovementRecord> = pmp_wire::from_bytes(bytes)?;
        *self = MovementStore::new();
        for r in records {
            self.append(r);
        }
        Ok(())
    }

    fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        let record: MovementRecord = pmp_wire::from_bytes(payload)?;
        self.append(record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(robot: &str, arg: i64, at: u64) -> MovementRecord {
        MovementRecord {
            robot: robot.into(),
            device: "motor:x".into(),
            command: "rotate".into(),
            args: vec![arg],
            issued_at: at,
            duration_ns: 100,
        }
    }

    #[test]
    fn snapshot_restore_rebuilds_table_and_index() {
        let mut live = MovementStore::new();
        live.append(rec("r1", 30, 10));
        live.append(rec("r2", -30, 20));
        live.append(rec("r1", 15, 30));

        let mut restored = MovementStore::new();
        restored.restore_snapshot(&live.snapshot_bytes()).unwrap();
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.by_robot("r1").len(), 2);
        assert_eq!(restored.robots(), ["r1", "r2"]);
        assert_eq!(restored.state_digest(), live.state_digest());
    }

    #[test]
    fn wal_replay_matches_direct_appends() {
        let mut live = MovementStore::new();
        let mut replayed = MovementStore::new();
        for (robot, arg, at) in [("r1", 1, 5), ("r2", 2, 6), ("r1", 3, 7)] {
            let r = rec(robot, arg, at);
            replayed
                .apply_record(&MovementStore::wal_payload(&r))
                .unwrap();
            live.append(r);
        }
        assert_eq!(replayed.state_digest(), live.state_digest());
    }

    #[test]
    fn garbage_payload_is_an_error_not_a_panic() {
        let mut s = MovementStore::new();
        assert!(s.apply_record(&[0xff, 0x01]).is_err());
        assert!(s.restore_snapshot(&[0xff]).is_err());
    }
}
