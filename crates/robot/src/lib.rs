//! # pmp-robot — the simulated robot hardware and its VM proxies
//!
//! The paper's evaluation vehicle is a LEGO RCX robot (a plotter
//! prototype, Fig. 4) whose software stack has three layers (Fig. 3a):
//! inter-operation (Jini + MIDAS, in `pmp-midas`), the robot
//! application (tasks and hardware macros), and the device layer
//! (LeJOS motors and sensors). This crate provides the lower two plus
//! the VM proxy classes:
//!
//! * [`motor`], [`sensor`], [`rcx`] — the device layer with a command
//!   log and freeze-on-sensor-event semantics;
//! * [`task`] — tasks, hardware macros, the overriding layer, and
//!   direct mode;
//! * [`plotter`], [`canvas`] — the 3-axis plotter and its recorded
//!   drawing;
//! * [`proxy`] — `Motor`/`Plotter` classes inside the VM. The plotter
//!   class is bytecode calling the motor proxies, so **every movement
//!   is an interceptable `Motor.*` join point** — exactly where the
//!   paper's monitoring extension attaches (Fig. 3b);
//! * [`app`] — the drawing program.

pub mod app;
pub mod canvas;
pub mod device;
pub mod motor;
pub mod plotter;
pub mod proxy;
pub mod rcx;
pub mod sensor;
pub mod task;

pub use canvas::{Canvas, Stroke};
pub use device::{HwCommand, Port};
pub use motor::Motor;
pub use plotter::Plotter;
pub use proxy::{new_handle, register_robot_classes, spawn_motor, spawn_plotter, spawn_sensor, RobotHandle};
pub use rcx::Rcx;
pub use sensor::{Sensor, SensorEvent, SensorKind};
pub use task::{HwMacro, SequenceTask, Task, TaskDecision, TaskRunner, TaskStatus};
