//! A stable 64-bit FNV-1a hasher for determinism digests.
//!
//! The cross-driver determinism proof (DESIGN.md §10) compares compact
//! fingerprints of the network trace and the event journal between the
//! serial and parallel engines. `std`'s `DefaultHasher` is explicitly
//! unstable across releases, so digests use FNV-1a with fixed framing:
//! every variable-length field is prefixed with its length, making the
//! encoding injective.

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes (no length prefix).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as fixed-width little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a string with a length prefix (injective framing).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn framing_is_injective() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
