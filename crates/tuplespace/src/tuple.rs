//! Tuples and patterns (Linda's generative data model).

use pmp_wire::{Reader, Wire, WireError, Writer};
use std::fmt;

/// One field of a tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Field {
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
    /// Raw bytes (extension payloads travel here).
    Bytes(Vec<u8>),
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Int(i) => write!(f, "{i}"),
            Field::Str(s) => write!(f, "{s:?}"),
            Field::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::Int(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}
impl From<Vec<u8>> for Field {
    fn from(v: Vec<u8>) -> Self {
        Field::Bytes(v)
    }
}

impl Wire for Field {
    fn encode(&self, w: &mut Writer) {
        match self {
            Field::Int(i) => {
                w.put_u8(0);
                w.put_vari64(*i);
            }
            Field::Str(s) => {
                w.put_u8(1);
                w.put_str(s);
            }
            Field::Bytes(b) => {
                w.put_u8(2);
                w.put_bytes(b);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Field::Int(r.get_vari64()?),
            1 => Field::Str(r.get_str()?),
            2 => Field::Bytes(r.get_bytes()?),
            tag => {
                return Err(r.bad_tag("Field", tag))
            }
        })
    }
}

/// An ordered tuple of fields.
///
/// # Examples
///
/// ```
/// use pmp_tuplespace::{Tuple, Field};
///
/// let t = Tuple::new(vec!["ext".into(), "monitoring".into(), 1i64.into()]);
/// assert_eq!(t.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    fields: Vec<Field>,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// The fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` for the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The `i`-th field.
    pub fn get(&self, i: usize) -> Option<&Field> {
        self.fields.get(i)
    }
}

impl Wire for Tuple {
    fn encode(&self, w: &mut Writer) {
        self.fields.encode(w);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Tuple {
            fields: Vec::<Field>::decode(r)?,
        })
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

/// One position of a pattern (Linda's formal/actual distinction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternField {
    /// Matches any field (a *formal*).
    Any,
    /// Matches a field equal to this one (an *actual*).
    Exact(Field),
    /// Matches any string field (typed formal).
    AnyStr,
    /// Matches any integer field (typed formal).
    AnyInt,
    /// Matches any bytes field (typed formal).
    AnyBytes,
}

impl PatternField {
    fn matches(&self, field: &Field) -> bool {
        match self {
            PatternField::Any => true,
            PatternField::Exact(f) => f == field,
            PatternField::AnyStr => matches!(field, Field::Str(_)),
            PatternField::AnyInt => matches!(field, Field::Int(_)),
            PatternField::AnyBytes => matches!(field, Field::Bytes(_)),
        }
    }
}

impl Wire for PatternField {
    fn encode(&self, w: &mut Writer) {
        match self {
            PatternField::Any => w.put_u8(0),
            PatternField::Exact(f) => {
                w.put_u8(1);
                f.encode(w);
            }
            PatternField::AnyStr => w.put_u8(2),
            PatternField::AnyInt => w.put_u8(3),
            PatternField::AnyBytes => w.put_u8(4),
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => PatternField::Any,
            1 => PatternField::Exact(Field::decode(r)?),
            2 => PatternField::AnyStr,
            3 => PatternField::AnyInt,
            4 => PatternField::AnyBytes,
            tag => {
                return Err(r.bad_tag("PatternField", tag))
            }
        })
    }
}

/// A tuple template: same arity, each position matching.
///
/// # Examples
///
/// ```
/// use pmp_tuplespace::{Pattern, PatternField, Tuple, Field};
///
/// let p = Pattern::new(vec![
///     PatternField::Exact("ext".into()),
///     PatternField::AnyStr,
///     PatternField::AnyBytes,
/// ]);
/// let t = Tuple::new(vec!["ext".into(), "monitoring".into(), vec![1u8].into()]);
/// assert!(p.matches(&t));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pattern {
    fields: Vec<PatternField>,
}

impl Pattern {
    /// Creates a pattern.
    pub fn new(fields: Vec<PatternField>) -> Self {
        Self { fields }
    }

    /// The positions.
    pub fn fields(&self) -> &[PatternField] {
        &self.fields
    }

    /// Does `tuple` match (same arity, every position satisfied)?
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.fields.len() == tuple.len()
            && self
                .fields
                .iter()
                .zip(tuple.fields())
                .all(|(p, f)| p.matches(f))
    }
}

impl Wire for Pattern {
    fn encode(&self, w: &mut Writer) {
        self.fields.encode(w);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Pattern {
            fields: Vec::<PatternField>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(fields: Vec<Field>) -> Tuple {
        Tuple::new(fields)
    }

    #[test]
    fn exact_and_formal_matching() {
        let p = Pattern::new(vec![
            PatternField::Exact("ext".into()),
            PatternField::AnyStr,
            PatternField::AnyInt,
        ]);
        assert!(p.matches(&t(vec!["ext".into(), "mon".into(), 3i64.into()])));
        assert!(!p.matches(&t(vec!["other".into(), "mon".into(), 3i64.into()])));
        assert!(!p.matches(&t(vec!["ext".into(), 5i64.into(), 3i64.into()])), "typed formal");
        assert!(!p.matches(&t(vec!["ext".into(), "mon".into()])), "arity");
    }

    #[test]
    fn any_matches_every_kind() {
        let p = Pattern::new(vec![PatternField::Any]);
        assert!(p.matches(&t(vec![1i64.into()])));
        assert!(p.matches(&t(vec!["s".into()])));
        assert!(p.matches(&t(vec![vec![1u8, 2].into()])));
    }

    #[test]
    fn wire_roundtrips() {
        let tuple = t(vec!["ext".into(), 9i64.into(), vec![1u8, 2, 3].into()]);
        let bytes = pmp_wire::to_bytes(&tuple);
        assert_eq!(pmp_wire::from_bytes::<Tuple>(&bytes).unwrap(), tuple);
        let p = Pattern::new(vec![
            PatternField::Any,
            PatternField::Exact(Field::Int(2)),
            PatternField::AnyBytes,
        ]);
        let bytes = pmp_wire::to_bytes(&p);
        assert_eq!(pmp_wire::from_bytes::<Pattern>(&bytes).unwrap(), p);
    }

    // Property tests need the external `proptest` crate; the offline
    // default build gates them behind the (empty) `proptest` feature.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_exact_pattern_matches_own_tuple(
                ints in proptest::collection::vec(any::<i64>(), 0..6)
            ) {
                let tuple = Tuple::new(ints.iter().map(|i| Field::Int(*i)).collect());
                let pattern = Pattern::new(
                    ints.iter().map(|i| PatternField::Exact(Field::Int(*i))).collect()
                );
                prop_assert!(pattern.matches(&tuple));
                // All-formals of the right arity matches too.
                let formals = Pattern::new(ints.iter().map(|_| PatternField::Any).collect());
                prop_assert!(formals.matches(&tuple));
            }
        }
    }
}
