//! Aspects as first-class values.
//!
//! An aspect is a named bundle of *(crosscut, advice)* bindings plus an
//! implementation: either native Rust closures (local use) or a portable
//! VM class whose methods are the advice bodies (the form MIDAS ships
//! over the network — see [`crate::portable`]).

use crate::advice::{AdviceBody, NativeAdviceFn};
use crate::crosscut::Crosscut;
use crate::parser::ParsePatternError;
use pmp_vm::class::ClassDef;
use pmp_vm::op::BytecodeBody;
use pmp_vm::types::TypeSig;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One *(crosscut → advice)* binding.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Which join points the advice applies to.
    pub crosscut: Crosscut,
    /// The advice body.
    pub advice: AdviceBody,
    /// Ordering among advice at the same join point: *before* advice
    /// runs in ascending priority, *after* advice in descending
    /// priority (standard AOP nesting).
    pub priority: i32,
}

/// A portable method definition (name + signature + bytecode body).
#[derive(Debug, Clone, PartialEq)]
pub struct PortableMethod {
    /// Method name.
    pub name: String,
    /// Parameter types, in [`TypeSig`] display form.
    pub params: Vec<String>,
    /// Return type, in display form.
    pub ret: String,
    /// The body.
    pub body: BytecodeBody,
}

/// A portable class definition: what a script aspect ships as its
/// implementation (fields hold aspect state, methods hold advice bodies
/// and helpers).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PortableClass {
    /// Class name (registered in the receiver's VM on weaving).
    pub name: String,
    /// Fields as `(name, type-display-form)` pairs.
    pub fields: Vec<(String, String)>,
    /// Methods.
    pub methods: Vec<PortableMethod>,
}

impl PortableClass {
    /// Converts to a registrable [`ClassDef`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed type string.
    pub fn to_class_def(&self) -> Result<ClassDef, String> {
        let mut b = ClassDef::build(self.name.clone());
        for (name, ty) in &self.fields {
            let ty = TypeSig::parse(ty).ok_or_else(|| format!("bad field type {ty:?}"))?;
            b = b.field(name.clone(), ty);
        }
        let mut def = b.done();
        for m in &self.methods {
            let params: Result<Vec<TypeSig>, String> = m
                .params
                .iter()
                .map(|p| TypeSig::parse(p).ok_or_else(|| format!("bad param type {p:?}")))
                .collect();
            let ret = TypeSig::parse(&m.ret).ok_or_else(|| format!("bad return type {:?}", m.ret))?;
            def.methods.push(pmp_vm::class::MethodDef {
                name: m.name.clone(),
                params: params?,
                ret,
                body: pmp_vm::class::MethodBody::Bytecode(m.body.clone()),
            });
        }
        Ok(def)
    }
}

/// The implementation side of an aspect.
#[derive(Debug, Clone)]
pub enum AspectImpl {
    /// Advice bodies are Rust closures; aspect state lives in the
    /// closures' captures. Not shippable.
    Native,
    /// Advice bodies are methods of this class; an instance is created
    /// in the target VM on weaving (paper Fig. 5: `class HwMonitoring
    /// extends Aspect { ... }`). Shippable.
    Script(PortableClass),
}

/// A first-class aspect.
///
/// # Examples
///
/// A native logging aspect:
///
/// ```
/// use pmp_prose::aspect::Aspect;
///
/// let aspect = Aspect::build("logger")
///     .before("* Motor.*(..)", |ctx| {
///         if let pmp_prose::advice::JoinPoint::MethodEntry { sig, .. } = &ctx.jp {
///             println!("calling {sig}");
///         }
///         Ok(())
///     })
///     .done()
///     .unwrap();
/// assert_eq!(aspect.name, "logger");
/// assert_eq!(aspect.bindings.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Aspect {
    /// Unique (per node) aspect name.
    pub name: String,
    /// The crosscut → advice bindings.
    pub bindings: Vec<Binding>,
    /// Native or shipped-class implementation.
    pub implementation: AspectImpl,
    /// Advice run when the aspect is withdrawn (paper §3.2: extensions
    /// are notified before leaving a proactive space so that they can
    /// execute a shut-down procedure"). For script aspects this is wired
    /// automatically to an `onShutdown` method when present.
    pub shutdown: Option<AdviceBody>,
}

impl Aspect {
    /// The method name a script aspect may declare to receive shutdown
    /// notifications.
    pub const SHUTDOWN_METHOD: &'static str = "onShutdown";

    /// Starts a builder for a native aspect.
    pub fn build(name: impl Into<String>) -> AspectBuilder {
        AspectBuilder {
            name: name.into(),
            bindings: Vec::new(),
            shutdown: None,
            error: None,
        }
    }

    /// Creates a script aspect from a shipped class and bindings. If the
    /// class declares an [`Aspect::SHUTDOWN_METHOD`] method, it becomes
    /// the shutdown advice.
    pub fn script(
        name: impl Into<String>,
        class: PortableClass,
        bindings: Vec<(Crosscut, String, i32)>,
    ) -> Aspect {
        let shutdown = class
            .methods
            .iter()
            .any(|m| m.name == Self::SHUTDOWN_METHOD)
            .then(|| AdviceBody::Script {
                method: Arc::from(Self::SHUTDOWN_METHOD),
            });
        Aspect {
            name: name.into(),
            bindings: bindings
                .into_iter()
                .map(|(crosscut, method, priority)| Binding {
                    crosscut,
                    advice: AdviceBody::Script {
                        method: Arc::from(method.as_str()),
                    },
                    priority,
                })
                .collect(),
            implementation: AspectImpl::Script(class),
            shutdown,
        }
    }

    /// Returns `true` if the aspect can be serialised and shipped.
    pub fn is_portable(&self) -> bool {
        matches!(self.implementation, AspectImpl::Script(_))
    }
}

impl fmt::Display for Aspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aspect {} ({} bindings)", self.name, self.bindings.len())
    }
}

/// Fluent builder for native aspects.
#[derive(Debug)]
pub struct AspectBuilder {
    name: String,
    bindings: Vec<Binding>,
    shutdown: Option<AdviceBody>,
    error: Option<ParsePatternError>,
}

impl AspectBuilder {
    fn bind(mut self, crosscut_src: &str, advice: NativeAdviceFn, priority: i32) -> Self {
        if self.error.is_some() {
            return self;
        }
        match Crosscut::parse(crosscut_src) {
            Ok(crosscut) => self.bindings.push(Binding {
                crosscut,
                advice: AdviceBody::Native(advice),
                priority,
            }),
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Adds before-method advice: `pattern` is a method signature
    /// pattern like `void *.send*(byte[], ..)`.
    pub fn before<F>(self, pattern: &str, f: F) -> Self
    where
        F: for<'a, 'b> Fn(&mut crate::advice::AdviceCtx<'a, 'b>) -> Result<(), pmp_vm::VmError>
            + Send
            + Sync
            + 'static,
    {
        let src = format!("before {pattern}");
        self.bind(&src, Arc::new(f), 0)
    }

    /// Adds after-method advice.
    pub fn after<F>(self, pattern: &str, f: F) -> Self
    where
        F: for<'a, 'b> Fn(&mut crate::advice::AdviceCtx<'a, 'b>) -> Result<(), pmp_vm::VmError>
            + Send
            + Sync
            + 'static,
    {
        let src = format!("after {pattern}");
        self.bind(&src, Arc::new(f), 0)
    }

    /// Adds advice for an arbitrary crosscut in textual form
    /// (`before …`, `after …`, `get …`, `set …`, `throw …`, `catch …`)
    /// with an explicit priority.
    pub fn on<F>(self, crosscut: &str, priority: i32, f: F) -> Self
    where
        F: for<'a, 'b> Fn(&mut crate::advice::AdviceCtx<'a, 'b>) -> Result<(), pmp_vm::VmError>
            + Send
            + Sync
            + 'static,
    {
        self.bind(crosscut, Arc::new(f), priority)
    }

    /// Registers shutdown advice, run when the aspect is withdrawn.
    pub fn on_shutdown<F>(mut self, f: F) -> Self
    where
        F: for<'a, 'b> Fn(&mut crate::advice::AdviceCtx<'a, 'b>) -> Result<(), pmp_vm::VmError>
            + Send
            + Sync
            + 'static,
    {
        self.shutdown = Some(AdviceBody::Native(Arc::new(f)));
        self
    }

    /// Finishes the aspect.
    ///
    /// # Errors
    ///
    /// The first pattern-parse error encountered, if any.
    pub fn done(self) -> Result<Aspect, ParsePatternError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(Aspect {
                name: self.name,
                bindings: self.bindings,
                implementation: AspectImpl::Native,
                shutdown: self.shutdown,
            }),
        }
    }
}

/// Helper: collect the advice methods a script aspect's bindings refer
/// to, to validate they exist on the shipped class.
pub(crate) fn script_advice_methods(aspect: &Aspect) -> HashMap<Arc<str>, usize> {
    let mut out = HashMap::new();
    for b in &aspect.bindings {
        if let AdviceBody::Script { method } = &b.advice {
            *out.entry(method.clone()).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_bindings() {
        let aspect = Aspect::build("a")
            .before("* X.*(..)", |_| Ok(()))
            .after("* X.*(..)", |_| Ok(()))
            .on("set X.state", 5, |_| Ok(()))
            .done()
            .unwrap();
        assert_eq!(aspect.bindings.len(), 3);
        assert_eq!(aspect.bindings[2].priority, 5);
        assert!(!aspect.is_portable());
    }

    #[test]
    fn builder_reports_first_error() {
        let res = Aspect::build("a")
            .before("not a pattern", |_| Ok(()))
            .done();
        assert!(res.is_err());
    }

    #[test]
    fn portable_class_converts() {
        let class = PortableClass {
            name: "Mon".into(),
            fields: vec![("count".into(), "int".into())],
            methods: vec![PortableMethod {
                name: "onEntry".into(),
                params: vec!["any".into(), "str".into(), "any".into(), "any".into(), "any".into()],
                ret: "any".into(),
                body: BytecodeBody {
                    extra_locals: 0,
                    ops: vec![pmp_vm::op::Op::Ret],
                    handlers: vec![],
                },
            }],
        };
        let def = class.to_class_def().unwrap();
        assert_eq!(def.name, "Mon");
        assert_eq!(def.fields.len(), 1);
        assert_eq!(def.methods.len(), 1);
    }

    #[test]
    fn portable_class_rejects_bad_types() {
        let class = PortableClass {
            name: "Mon".into(),
            fields: vec![("x".into(), "".into())],
            methods: vec![],
        };
        assert!(class.to_class_def().is_err());
    }

    #[test]
    fn script_aspect_is_portable() {
        let aspect = Aspect::script(
            "mon",
            PortableClass {
                name: "Mon".into(),
                fields: vec![],
                methods: vec![],
            },
            vec![(Crosscut::parse("before * M.*(..)").unwrap(), "onEntry".into(), 0)],
        );
        assert!(aspect.is_portable());
        let methods = script_advice_methods(&aspect);
        assert_eq!(methods.len(), 1);
    }
}
