//! The federated base fabric through the full platform: directory-tier
//! lookups over a registrar tree, re-delivery-free roaming between
//! replicated halls, and federation topology surviving a base restart.

use pmp::core::scenario::{ProductionHalls, IN_HALL_A, IN_HALL_B};
use pmp::core::{BaseId, Platform};
use pmp::discovery::{DiscoveryEvent, ServiceItem, ServiceQuery};
use pmp::net::Position;

const SEC: u64 = 1_000_000_000;

/// 16 bases in a 4-ary registrar tree: a lookup entered at the deepest
/// leftmost leaf finds a service registered at the deepest rightmost
/// leaf by routing over tree edges — several registrar hops, no flat
/// broadcast, no radio reachability between the two.
#[test]
fn fed_lookup_routes_through_the_directory_tier() {
    let bases = 16usize;
    let mut p = Platform::new(4242);
    p.add_area("fab", Position::new(0.0, 0.0), Position::new(500.0, 500.0));
    for i in 0..bases {
        let x = ((i % 4) * 100 + 50) as f64;
        let y = ((i / 4) * 100 + 50) as f64;
        // 4 m radios: no two bases can hear each other over the air.
        p.add_base("fab", Position::new(x, y), 4.0);
    }
    p.federate_tree(4);

    let target = BaseId(bases - 1);
    let provider = p.base(target).node;
    p.register_service(
        target,
        ServiceItem::new("print", "laser", provider.0),
        3_600 * SEC,
    );
    p.pump(3 * SEC); // registration + DirAdvertise propagation

    let origin = BaseId(5); // deepest leftmost leaf of a 16-node 4-ary tree
    let req = p.fed_lookup(origin, ServiceQuery::of_type("print"));
    p.pump(2 * SEC);

    let done = p
        .take_discoveries(origin)
        .into_iter()
        .find_map(|e| match e {
            DiscoveryEvent::FedLookupDone { req: r, items, hops } if r == req => {
                Some((items, hops))
            }
            _ => None,
        })
        .expect("federated lookup must complete");
    let (items, hops) = done;
    assert_eq!(items.len(), 1, "exactly the one registered service");
    assert_eq!(items[0].service_type, "print");
    assert_eq!(items[0].name, "laser");
    assert!(
        hops >= 2,
        "leaf-to-leaf routing must cross the tree (got {hops} hops)"
    );
}

/// Fully federated production halls: the robot works in hall A, roams
/// to hall B, and hall B takes over every lease by rebinding grants in
/// place — zero re-`Deliver` messages for the roamed set — while the
/// robot's movement history follows over the backhaul.
#[test]
fn federated_roam_migrates_grants_and_history_without_redelivery() {
    let mut w = ProductionHalls::build(77);
    w.platform.federate_bases(w.base_a, w.base_b);
    // Adapt, and let anti-entropy converge the two catalogs.
    w.platform.pump(10 * SEC);

    for (x0, y0, x1, y1) in [(0, 0, 12, 0), (12, 0, 12, 12)] {
        w.platform.rpc(
            w.base_a,
            w.robot,
            "operator:1",
            "DrawingService",
            "drawLine",
            vec![x0, y0, x1, y1],
        );
        w.platform.pump(SEC);
    }
    w.platform.pump(3 * SEC);

    let installed = w.platform.node(w.robot).receiver.installed_ids();
    assert!(
        installed.len() >= 4,
        "converged catalogs adapt the robot with both halls' extensions: {installed:?}"
    );
    let history_at_a = w.platform.base(w.base_a).store.by_robot("robot:1:1").len();
    assert!(history_at_a > 0, "strokes logged movement records at A");

    let tel = w.platform.telemetry().clone();
    let delivered0 = tel.counter_value("midas.base.delivered");
    let migrated0 = tel.counter_value("midas.base.migrated");

    w.platform.move_node(w.robot, IN_HALL_B);
    w.platform.pump(20 * SEC);

    let b_node = w.platform.base(w.base_b).node;
    let node = w.platform.node(w.robot);
    let ids = node.receiver.installed_ids();
    assert_eq!(ids, installed, "the roamed set is unchanged");
    for id in &ids {
        assert_eq!(
            node.receiver.lease_holder(id),
            Some(b_node),
            "{id} must be leased by hall B after the roam"
        );
    }
    assert_eq!(
        tel.counter_value("midas.base.delivered") - delivered0,
        0,
        "zero re-Deliver messages for the roamed set"
    );
    assert_eq!(
        tel.counter_value("midas.base.migrated") - migrated0,
        installed.len() as u64,
        "every grant was rebound in place"
    );
    assert_eq!(
        w.platform.base(w.base_b).store.by_robot("robot:1:1").len(),
        history_at_a,
        "the movement history migrated to the adopting hall"
    );
}

/// Federation topology is operator configuration: after hall B crashes
/// and restarts, its neighbour links, replica links, and directory
/// parent are re-applied, so a robot roaming into the rebooted hall is
/// still adopted without re-delivery and federated lookups entered
/// there still resolve.
#[test]
fn federation_topology_survives_base_restart() {
    let mut w = ProductionHalls::build(31);
    w.platform.federate_bases(w.base_a, w.base_b);
    w.platform.set_directory_parent(w.base_b, w.base_a);
    w.platform.pump(10 * SEC);

    let provider = w.platform.base(w.base_a).node;
    w.platform.register_service(
        w.base_a,
        ServiceItem::new("paint", "sprayer", provider.0),
        3_600 * SEC,
    );
    w.platform.pump(2 * SEC);

    w.platform.crash_base(w.base_b);
    w.platform.pump(SEC);
    let report = w.platform.restart_base(w.base_b);
    assert!(report.replayed > 0 || report.snapshot_seq.is_some());
    w.platform.pump(5 * SEC);

    // The rebooted hall still adopts a roamer without re-delivery...
    let installed = w.platform.node(w.robot).receiver.installed_ids();
    let tel = w.platform.telemetry().clone();
    let delivered0 = tel.counter_value("midas.base.delivered");
    w.platform.move_node(w.robot, IN_HALL_B);
    w.platform.pump(20 * SEC);
    let b_node = w.platform.base(w.base_b).node;
    let node = w.platform.node(w.robot);
    for id in &installed {
        assert_eq!(
            node.receiver.lease_holder(id),
            Some(b_node),
            "{id} must be leased by the rebooted hall B"
        );
    }
    assert_eq!(
        tel.counter_value("midas.base.delivered") - delivered0,
        0,
        "adoption after the restart is still re-delivery-free"
    );

    // ...and its directory parent came back: a federated lookup entered
    // at B routes up to A and finds the service.
    let req = w.platform.fed_lookup(w.base_b, ServiceQuery::of_type("paint"));
    w.platform.pump(2 * SEC);
    let found = w
        .platform
        .take_discoveries(w.base_b)
        .into_iter()
        .any(|e| matches!(e, DiscoveryEvent::FedLookupDone { req: r, items, .. }
            if r == req && items.len() == 1));
    assert!(found, "directory tier must survive the restart");

    // Move home again so the world ends quiescent (and the reverse
    // handoff also works against the restarted topology).
    w.platform.move_node(w.robot, IN_HALL_A);
    w.platform.pump(20 * SEC);
    let a_node = w.platform.base(w.base_a).node;
    let node = w.platform.node(w.robot);
    for id in &installed {
        assert_eq!(node.receiver.lease_holder(id), Some(a_node));
    }
}
