//! The pinned soak performance regression (DESIGN.md §17).
//!
//! `tests/repros/soak-slowlinks-p99.redrepro` is the ddmin-shrunk
//! remains of a 60-second soak with a 2× link-latency regression
//! injected halfway: two steps — `SlowLinks { mult: 2 }` followed by
//! one semantic call — that the `perf.soak-rpc-p99` oracle must flag
//! forever. Unlike the `.repro` corpus (bugs that were *fixed*, so
//! replays must be green), a `.redrepro` pins a failure that is
//! *supposed* to fail: it proves the perf oracle still has teeth. The
//! green-replay suite's glob skips the extension; this test owns it.

use pmp::chaos::{exec, repro, DriverKind, Op};

const RED: &str = "soak-slowlinks-p99.redrepro";

fn load_red() -> pmp::chaos::Scenario {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/repros")
        .join(RED);
    let bytes = std::fs::read(&path).expect("red repro must exist");
    repro::load(&bytes).expect("red repro must parse")
}

/// The shrinker got it down to the essentials: the regression knob
/// plus a single probe call. If a future change to the soak schedule
/// or the shrinker balloons this, the pin should be re-minimized, not
/// silently accepted.
#[test]
fn red_repro_is_minimal() {
    let sc = load_red();
    assert!(
        sc.steps.len() <= 10,
        "expected a ddmin-minimal repro, got {} steps",
        sc.steps.len()
    );
    assert!(
        sc.steps
            .iter()
            .any(|s| matches!(s.op, Op::SlowLinks { .. })),
        "the latency regression step is the point of the repro"
    );
}

/// Red under both drivers: the injected 2× regression pushes the RPC
/// round-trip to 4× the link baseline, over the oracle's 3× ceiling.
#[test]
fn red_repro_trips_the_p99_oracle_under_both_drivers() {
    let sc = load_red();
    for driver in [DriverKind::Serial, DriverKind::Parallel] {
        let report = exec::run(&sc, driver);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "perf.soak-rpc-p99"),
            "{driver:?}: expected perf.soak-rpc-p99, got {:?}",
            report.violations
        );
    }
}

/// Green after reverting the regression: strip the `SlowLinks` steps
/// and the identical scenario passes clean. This is the
/// red-before/green-after pair in one file — the oracle fires on the
/// regression, not on the workload around it.
#[test]
fn stripping_the_regression_turns_the_repro_green() {
    let mut sc = load_red();
    sc.steps.retain(|s| !matches!(s.op, Op::SlowLinks { .. }));
    let cross = exec::run_cross(&sc);
    assert!(
        cross.violations.is_empty(),
        "without SlowLinks the soak must be clean: {:?}",
        cross.violations
    );
}

/// The pinned bytes survive a decode → encode round trip, so the
/// artifact stays replayable across format-preserving refactors.
#[test]
fn red_repro_bytes_are_roundtrip_stable() {
    let sc = load_red();
    let reencoded = repro::load(&repro::save(&sc)).expect("re-encoded repro must parse");
    assert_eq!(sc, reencoded);
}
