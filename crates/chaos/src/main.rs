//! The chaos CLI.
//!
//! ```text
//! cargo run -p pmp-chaos -- --seed 42                  # one seed, both drivers
//! cargo run -p pmp-chaos -- --sweep 0 500              # a seed range
//! cargo run -p pmp-chaos -- --seed 42 --shrink \
//!     --write-repro tests/repros                       # minimize + save failures
//! cargo run -p pmp-chaos -- --replay tests/repros/seed-42.repro
//! ```
//!
//! Output is deterministic: same seeds, same bytes, whatever the
//! machine — digests and violation text only, never wall-clock. The
//! process exits 1 if any seed failed.

use pmp_chaos::{
    exec, gen, repro, script::Scenario, shrink, soak, DriverKind, GenConfig, SoakConfig,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

struct Args {
    seeds: Vec<u64>,
    replay: Vec<String>,
    driver: Option<DriverKind>,
    gen_steps: usize,
    do_shrink: bool,
    write_repro: Option<String>,
    quiet: bool,
    soak_secs: Option<u32>,
    soak_slow: Option<u8>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pmp-chaos [--seed N | --sweep FROM TO | --replay FILE]...\n\
         \x20      [--driver serial|parallel|both] [--gen-steps N]\n\
         \x20      [--soak SECS] [--soak-slow MULT]\n\
         \x20      [--shrink] [--write-repro DIR] [--quiet]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: Vec::new(),
        replay: Vec::new(),
        driver: None,
        gen_steps: GenConfig::default().steps,
        do_shrink: false,
        write_repro: None,
        quiet: false,
        soak_secs: None,
        soak_slow: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i - 1).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        let flag = next(&mut i);
        match flag.as_str() {
            "--seed" => args
                .seeds
                .push(next(&mut i).parse().unwrap_or_else(|_| usage())),
            "--sweep" => {
                let from: u64 = next(&mut i).parse().unwrap_or_else(|_| usage());
                let to: u64 = next(&mut i).parse().unwrap_or_else(|_| usage());
                args.seeds.extend(from..to);
            }
            "--replay" => args.replay.push(next(&mut i)),
            "--driver" => {
                args.driver = match next(&mut i).as_str() {
                    "serial" => Some(DriverKind::Serial),
                    "parallel" => Some(DriverKind::Parallel),
                    "both" => None,
                    _ => usage(),
                }
            }
            "--gen-steps" => args.gen_steps = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--soak" => args.soak_secs = Some(next(&mut i).parse().unwrap_or_else(|_| usage())),
            "--soak-slow" => args.soak_slow = Some(next(&mut i).parse().unwrap_or_else(|_| usage())),
            "--shrink" => args.do_shrink = true,
            "--write-repro" => args.write_repro = Some(next(&mut i)),
            "--quiet" => args.quiet = true,
            _ => usage(),
        }
    }
    if args.seeds.is_empty() && args.replay.is_empty() {
        args.seeds.push(1);
    }
    args
}

/// Runs a scenario, catching panics so a crashed run is a *failure
/// report*, not a dead process — panics must be shrinkable too.
fn run_checked(sc: &Scenario, driver: Option<DriverKind>) -> (Vec<String>, u64, u64) {
    match driver {
        Some(d) => match catch_unwind(AssertUnwindSafe(|| exec::run(sc, d))) {
            Ok(r) => (
                r.violations.iter().map(ToString::to_string).collect(),
                r.trace,
                r.journal,
            ),
            Err(_) => (vec!["[panicked] run died".into()], 0, 0),
        },
        None => match catch_unwind(AssertUnwindSafe(|| exec::run_cross(sc))) {
            Ok(c) => (
                c.violations.iter().map(ToString::to_string).collect(),
                c.serial.trace,
                c.serial.journal,
            ),
            Err(_) => (vec!["[panicked] run died".into()], 0, 0),
        },
    }
}

/// True if the scenario still reproduces `target`: the same invariant
/// id (the `[...]` prefix of the violation line), or any panic when the
/// original was a panic.
fn still_fails(sc: &Scenario, driver: Option<DriverKind>, target: &str) -> bool {
    let (violations, _, _) = run_checked(sc, driver);
    violations
        .iter()
        .any(|v| v.split(']').next() == target.split(']').next())
}

fn main() {
    let args = parse_args();
    let cfg = GenConfig {
        steps: args.gen_steps,
        ..GenConfig::default()
    };
    let mut failures = 0usize;

    for path in &args.replay {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                println!("replay {path}: unreadable: {e}");
                failures += 1;
                continue;
            }
        };
        match repro::load(&bytes) {
            Ok(sc) => {
                let (violations, trace, journal) = run_checked(&sc, args.driver);
                report(path, trace, journal, &violations, args.quiet, &mut failures);
            }
            Err(e) => {
                println!("replay {path}: {e}");
                failures += 1;
            }
        }
    }

    for &seed in &args.seeds {
        let sc = if let Some(secs) = args.soak_secs {
            let mut scfg = SoakConfig::ci();
            scfg.horizon_ms = secs.saturating_mul(1_000);
            // Inject the latency regression halfway through the load
            // phase, so the oracle sees a clean baseline first.
            scfg.slow_link = args.soak_slow.map(|m| (scfg.horizon_ms / 2, m));
            soak::soak(seed, &scfg)
        } else {
            gen::generate(seed, &cfg)
        };
        let (violations, trace, journal) = run_checked(&sc, args.driver);
        let label = format!("seed {seed}");
        let failed = !violations.is_empty();
        report(&label, trace, journal, &violations, args.quiet, &mut failures);
        if failed && args.do_shrink {
            let target = violations[0].clone();
            let mut pred = |s: &Scenario| still_fails(s, args.driver, &target);
            let (min, stats) = shrink::shrink(&sc, &mut pred, 2_000);
            println!(
                "  shrunk {} -> {} steps in {} evals",
                stats.from_steps, stats.to_steps, stats.evals
            );
            print!("{}", min.render());
            if let Some(dir) = &args.write_repro {
                // Re-run the minimized scenario once to capture the
                // flight-recorder dumps at the moment of failure, so
                // the artifact carries what each node saw (v2 format).
                let flight = catch_unwind(AssertUnwindSafe(|| {
                    exec::run(&min, args.driver.unwrap_or(DriverKind::Serial)).flight
                }))
                .unwrap_or_default();
                // Perf regressions are *supposed* to fail forever:
                // pin them as .redrepro so the green-replay suite
                // (which globs only .repro) skips them and a
                // dedicated red-assertion test owns them instead.
                let ext = if target.starts_with("[perf.") {
                    "redrepro"
                } else {
                    "repro"
                };
                let file = format!("{dir}/seed-{seed}.{ext}");
                match std::fs::write(&file, repro::save_with_flight(&min, &flight)) {
                    Ok(()) => println!("  wrote {file}"),
                    Err(e) => println!("  could not write {file}: {e}"),
                }
            }
        }
    }

    if failures > 0 {
        println!("{failures} failing run(s)");
        std::process::exit(1);
    }
    println!("all runs clean");
}

fn report(
    label: &str,
    trace: u64,
    journal: u64,
    violations: &[String],
    quiet: bool,
    failures: &mut usize,
) {
    if violations.is_empty() {
        if !quiet {
            println!("{label}: ok trace={trace:#018x} journal={journal:#018x}");
        }
        return;
    }
    *failures += 1;
    println!("{label}: FAILED ({} violation(s))", violations.len());
    for v in violations {
        println!("  {v}");
    }
}
