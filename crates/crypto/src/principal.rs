//! Principals, trust stores, and the signed-blob envelope.
//!
//! A *principal* is a named identity (a production hall's authority, a
//! device vendor, a base station). Each extension receiver keeps a
//! [`TrustStore`] of principals it accepts extensions from — the paper's
//! "each extension receiver node may define its preferences and trusted
//! entities" (§3.2).

use crate::keys::PublicKey;
use crate::sign::Signature;
use pmp_wire::wire_struct;
use std::collections::BTreeMap;
use std::fmt;

/// A named identity with a verification key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Principal {
    /// Human-readable unique name, e.g. `"authority:hall-a"`.
    pub name: String,
    /// The principal's public verification key.
    pub key: PublicKey,
}

wire_struct!(Principal {
    name: String,
    key: PublicKey,
});

impl Principal {
    /// Creates a principal.
    pub fn new(name: impl Into<String>, key: PublicKey) -> Self {
        Self {
            name: name.into(),
            key,
        }
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.key)
    }
}

/// The set of principals a node trusts, and how to verify against it.
///
/// # Examples
///
/// ```
/// use pmp_crypto::{KeyPair, Principal, TrustStore, SignedBlob};
///
/// let authority = KeyPair::from_seed(b"hall-a");
/// let mut store = TrustStore::new();
/// store.add(Principal::new("hall-a", authority.public_key()));
///
/// let blob = SignedBlob::seal("hall-a", &authority, b"payload".to_vec());
/// assert!(store.verify(&blob).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrustStore {
    trusted: BTreeMap<String, PublicKey>,
}

/// Why a signed blob was rejected by a [`TrustStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrustError {
    /// The signer's name is not present in the trust store.
    UnknownSigner {
        /// The claimed signer name.
        signer: String,
    },
    /// The signature does not verify under the trusted key of that name.
    BadSignature {
        /// The claimed signer name.
        signer: String,
    },
}

impl fmt::Display for TrustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustError::UnknownSigner { signer } => {
                write!(f, "signer {signer:?} is not trusted")
            }
            TrustError::BadSignature { signer } => {
                write!(f, "signature verification failed for signer {signer:?}")
            }
        }
    }
}

impl std::error::Error for TrustError {}

impl TrustStore {
    /// Creates an empty trust store (trusts no one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a trusted principal.
    pub fn add(&mut self, principal: Principal) {
        self.trusted.insert(principal.name, principal.key);
    }

    /// Removes a principal by name; returns whether it was present.
    pub fn remove(&mut self, name: &str) -> bool {
        self.trusted.remove(name).is_some()
    }

    /// Looks up the trusted key for `name`.
    pub fn key_of(&self, name: &str) -> Option<PublicKey> {
        self.trusted.get(name).copied()
    }

    /// Returns `true` if `name` is trusted.
    pub fn is_trusted(&self, name: &str) -> bool {
        self.trusted.contains_key(name)
    }

    /// Number of trusted principals.
    pub fn len(&self) -> usize {
        self.trusted.len()
    }

    /// Returns `true` if no principal is trusted.
    pub fn is_empty(&self) -> bool {
        self.trusted.is_empty()
    }

    /// Iterates over trusted principals in name order.
    pub fn iter(&self) -> impl Iterator<Item = Principal> + '_ {
        self.trusted
            .iter()
            .map(|(n, k)| Principal::new(n.clone(), *k))
    }

    /// Verifies a signed blob: the signer must be trusted *and* the
    /// signature must verify under that signer's stored key.
    ///
    /// # Errors
    ///
    /// [`TrustError::UnknownSigner`] or [`TrustError::BadSignature`].
    pub fn verify(&self, blob: &SignedBlob) -> Result<(), TrustError> {
        let key = self
            .trusted
            .get(&blob.signer)
            .ok_or_else(|| TrustError::UnknownSigner {
                signer: blob.signer.clone(),
            })?;
        if key.verify(&blob.payload, &blob.signature) {
            Ok(())
        } else {
            Err(TrustError::BadSignature {
                signer: blob.signer.clone(),
            })
        }
    }
}

/// A payload together with the name of its signer and a signature over
/// the payload bytes. This is the envelope MIDAS ships extensions in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedBlob {
    /// Claimed signer name (must match a trust-store entry to verify).
    pub signer: String,
    /// The signed payload bytes (canonical wire encoding of the value).
    pub payload: Vec<u8>,
    /// Schnorr signature over `payload`.
    pub signature: Signature,
}

wire_struct!(SignedBlob {
    signer: String,
    payload: Vec<u8>,
    signature: Signature,
});

impl SignedBlob {
    /// Signs `payload` as `signer` using `pair`.
    pub fn seal(signer: impl Into<String>, pair: &crate::keys::KeyPair, payload: Vec<u8>) -> Self {
        let signature = pair.sign(&payload);
        Self {
            signer: signer.into(),
            payload,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn setup() -> (KeyPair, TrustStore) {
        let pair = KeyPair::from_seed(b"authority");
        let mut store = TrustStore::new();
        store.add(Principal::new("authority", pair.public_key()));
        (pair, store)
    }

    #[test]
    fn trusted_blob_verifies() {
        let (pair, store) = setup();
        let blob = SignedBlob::seal("authority", &pair, b"data".to_vec());
        assert_eq!(store.verify(&blob), Ok(()));
    }

    #[test]
    fn unknown_signer_rejected() {
        let (pair, store) = setup();
        let blob = SignedBlob::seal("impostor", &pair, b"data".to_vec());
        assert_eq!(
            store.verify(&blob),
            Err(TrustError::UnknownSigner {
                signer: "impostor".into()
            })
        );
    }

    #[test]
    fn signer_with_wrong_key_rejected() {
        let (_, store) = setup();
        let mallory = KeyPair::from_seed(b"mallory");
        // Mallory claims to be "authority" but signs with her own key.
        let blob = SignedBlob::seal("authority", &mallory, b"data".to_vec());
        assert_eq!(
            store.verify(&blob),
            Err(TrustError::BadSignature {
                signer: "authority".into()
            })
        );
    }

    #[test]
    fn tampered_payload_rejected() {
        let (pair, store) = setup();
        let mut blob = SignedBlob::seal("authority", &pair, b"data".to_vec());
        blob.payload[0] ^= 1;
        assert!(matches!(
            store.verify(&blob),
            Err(TrustError::BadSignature { .. })
        ));
    }

    #[test]
    fn revoking_trust_takes_effect() {
        let (pair, mut store) = setup();
        let blob = SignedBlob::seal("authority", &pair, b"data".to_vec());
        assert!(store.verify(&blob).is_ok());
        assert!(store.remove("authority"));
        assert!(matches!(
            store.verify(&blob),
            Err(TrustError::UnknownSigner { .. })
        ));
    }

    #[test]
    fn blob_wire_roundtrip() {
        let (pair, _) = setup();
        let blob = SignedBlob::seal("authority", &pair, vec![1, 2, 3]);
        let bytes = pmp_wire::to_bytes(&blob);
        assert_eq!(pmp_wire::from_bytes::<SignedBlob>(&bytes).unwrap(), blob);
    }

    #[test]
    fn store_iteration_and_queries() {
        let (pair, mut store) = setup();
        store.add(Principal::new("vendor", KeyPair::from_seed(b"v").public_key()));
        assert_eq!(store.len(), 2);
        assert!(store.is_trusted("vendor"));
        assert!(!store.is_trusted("nobody"));
        assert_eq!(store.key_of("authority"), Some(pair.public_key()));
        let names: Vec<String> = store.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["authority".to_string(), "vendor".to_string()]);
    }
}
