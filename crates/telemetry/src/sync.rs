//! `std::sync` wrappers with a `parking_lot`-style API.
//!
//! `lock()`/`read()`/`write()` return the guard directly instead of a
//! `Result`; a poisoned lock is recovered rather than propagated (the
//! platform is effectively single-threaded per node, so a panic while
//! holding a lock never leaves shared state mid-update in a way tests
//! care about). This keeps the workspace zero-dependency — the build
//! must succeed with no network access at all.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Poison is recovered.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Poison is recovered.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> RwLock<T> {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A parking_lot-style lock keeps working after a panic.
        assert_eq!(*m.lock(), 7);
    }
}
