//! VM proxy classes for the robot hardware (paper Fig. 3a, bottom
//! layer): `Motor` natives drive the simulated plotter, and `Plotter`
//! is *bytecode* that calls the motor proxies — so every movement is a
//! VM-level `Motor.*` call that PROSE can intercept.

use crate::device::Port;
use crate::plotter::{Plotter, PEN_SWING};
use pmp_telemetry::sync::Mutex;
use pmp_vm::builder::MethodBuilder;
use pmp_vm::class::ClassDef;
use pmp_vm::op::Op;
use pmp_vm::prelude::{TypeSig, Value, Vm, VmError};
use std::sync::Arc;

/// Shared handle on the robot hardware, captured by the proxy natives.
pub type RobotHandle = Arc<Mutex<Plotter>>;

/// Creates a fresh hardware handle.
pub fn new_handle() -> RobotHandle {
    Arc::new(Mutex::new(Plotter::new()))
}

fn port_of(vm: &Vm, this: &Value) -> Result<Port, VmError> {
    let obj = this.as_ref_id().ok_or_else(|| {
        VmError::exception("NullPointerException", "motor proxy without instance")
    })?;
    let v = vm.get_field(obj, "Motor", "port")?;
    let s = v
        .as_str()
        .ok_or_else(|| VmError::link("Motor.port is not a string"))?
        .to_string();
    Port::parse(&s).ok_or_else(|| VmError::link(format!("bad motor port {s:?}")))
}

fn frozen_error() -> VmError {
    VmError::exception("HardwareFrozenException", "hardware frozen by sensor event")
}

/// Registers the `Motor` and `Plotter` classes in `vm`, wiring natives
/// to `handle`.
///
/// # Errors
///
/// [`VmError::Link`] if the classes already exist.
pub fn register_robot_classes(vm: &mut Vm, handle: &RobotHandle) -> Result<(), VmError> {
    register_motor_class(vm, handle)?;
    register_sensor_class(vm, handle)?;
    register_plotter_class(vm)?;
    Ok(())
}

fn sensor_port_of(vm: &Vm, this: &Value) -> Result<Port, VmError> {
    let obj = this.as_ref_id().ok_or_else(|| {
        VmError::exception("NullPointerException", "sensor proxy without instance")
    })?;
    let v = vm.get_field(obj, "Sensor", "port")?;
    let s = v
        .as_str()
        .ok_or_else(|| VmError::link("Sensor.port is not a string"))?
        .to_string();
    Port::parse(&s).ok_or_else(|| VmError::link(format!("bad sensor port {s:?}")))
}

fn register_sensor_class(vm: &mut Vm, handle: &RobotHandle) -> Result<(), VmError> {
    let h_read = handle.clone();
    let class = ClassDef::build("Sensor")
        .field("port", TypeSig::Str)
        // read() -> current reading (the paper's §4.6 security aspect
        // "intercepts readings of all sensors" — this is its join point)
        .native("read", [], TypeSig::Int, move |vm, call| {
            let port = sensor_port_of(vm, &call.this)?;
            Ok(Value::Int(h_read.lock().rcx.sensor(port).value()))
        })
        .native("id", [], TypeSig::Str, |vm, call| {
            let port = sensor_port_of(vm, &call.this)?;
            Ok(Value::str(format!("sensor:{port}")))
        })
        .done();
    vm.register_class(class)?;
    Ok(())
}

/// Instantiates a `Sensor` proxy bound to `port`.
///
/// # Errors
///
/// [`VmError::Link`] if the class is not registered.
pub fn spawn_sensor(vm: &mut Vm, port: Port) -> Result<Value, VmError> {
    let sensor = vm.new_object("Sensor")?;
    let obj = sensor.as_ref_id().expect("fresh object");
    vm.set_field(obj, "Sensor", "port", Value::str(port.to_string()))?;
    Ok(sensor)
}

fn register_motor_class(vm: &mut Vm, handle: &RobotHandle) -> Result<(), VmError> {
    let h_rotate = handle.clone();
    let h_stop = handle.clone();
    let h_pos = handle.clone();
    let h_power = handle.clone();
    let class = ClassDef::build("Motor")
        .field("port", TypeSig::Str)
        // rotate(degrees) -> duration in ns
        .native("rotate", [TypeSig::Int], TypeSig::Int, move |vm, call| {
            let port = port_of(vm, &call.this)?;
            let degrees = call.int_arg(0)?;
            let d = h_rotate
                .lock()
                .motor_rotate(port, degrees)
                .ok_or_else(frozen_error)?;
            Ok(Value::Int(d as i64))
        })
        .native("setPower", [TypeSig::Int], TypeSig::Void, move |vm, call| {
            let port = port_of(vm, &call.this)?;
            let power = call.int_arg(0)?;
            h_power
                .lock()
                .rcx
                .set_power(port, power)
                .ok_or_else(frozen_error)?;
            Ok(Value::Null)
        })
        .native("stop", [], TypeSig::Int, move |vm, call| {
            let port = port_of(vm, &call.this)?;
            let d = h_stop.lock().rcx.stop(port).ok_or_else(frozen_error)?;
            Ok(Value::Int(d as i64))
        })
        .native("position", [], TypeSig::Int, move |vm, call| {
            let port = port_of(vm, &call.this)?;
            let pos = h_pos.lock().rcx.motor(port).position();
            Ok(Value::Int(pos))
        })
        .native("id", [], TypeSig::Str, |vm, call| {
            let port = port_of(vm, &call.this)?;
            Ok(Value::str(format!("motor:{port}")))
        })
        .done();
    vm.register_class(class)?;
    Ok(())
}

/// Assembles `Plotter.moveTo(x, y)`: per-axis deltas dispatched through
/// the motor proxies (virtual calls → interceptable join points).
fn move_to_body() -> pmp_vm::op::BytecodeBody {
    let mut b = MethodBuilder::new();
    b.locals(2); // 3: current motor, 4: delta
    for (field, arg_slot) in [("mx", 1u16), ("my", 2u16)] {
        let skip = b.label();
        b.op(Op::Load(0)).op(Op::GetField {
            class: "Plotter".into(),
            field: field.into(),
        });
        b.op(Op::Store(3));
        b.op(Op::Load(arg_slot));
        b.op(Op::Load(3)).op(Op::CallV {
            method: "position".into(),
            argc: 0,
        });
        b.op(Op::Sub).op(Op::Store(4));
        b.op(Op::Load(4)).konst(0i64).op(Op::Eq);
        b.jump_if(skip);
        b.op(Op::Load(3)).op(Op::Load(4)).op(Op::CallV {
            method: "rotate".into(),
            argc: 1,
        });
        b.op(Op::Pop);
        b.bind(skip);
    }
    b.op(Op::Ret);
    b.build()
}

/// Assembles `penDown`/`penUp`: conditional pen-motor swing.
fn pen_body(down: bool) -> pmp_vm::op::BytecodeBody {
    let mut b = MethodBuilder::new();
    b.locals(1); // 1: pen motor
    let skip = b.label();
    b.op(Op::Load(0)).op(Op::GetField {
        class: "Plotter".into(),
        field: "mpen".into(),
    });
    b.op(Op::Store(1));
    b.op(Op::Load(1)).op(Op::CallV {
        method: "position".into(),
        argc: 0,
    });
    b.konst(0i64).op(Op::Gt);
    if down {
        // already down → skip
        b.jump_if(skip);
    } else {
        // already up → skip
        b.jump_if_not(skip);
    }
    b.op(Op::Load(1))
        .konst(if down { PEN_SWING } else { -PEN_SWING })
        .op(Op::CallV {
            method: "rotate".into(),
            argc: 1,
        })
        .op(Op::Pop);
    b.bind(skip);
    b.op(Op::Ret);
    b.build()
}

fn register_plotter_class(vm: &mut Vm) -> Result<(), VmError> {
    let class = ClassDef::build("Plotter")
        .field("mx", TypeSig::object("Motor"))
        .field("my", TypeSig::object("Motor"))
        .field("mpen", TypeSig::object("Motor"))
        .method_body(
            "moveTo",
            [TypeSig::Int, TypeSig::Int],
            TypeSig::Void,
            move_to_body(),
        )
        .method_body("penDown", [], TypeSig::Void, pen_body(true))
        .method_body("penUp", [], TypeSig::Void, pen_body(false))
        .method("x", [], TypeSig::Int, |b| {
            b.op(Op::Load(0))
                .op(Op::GetField {
                    class: "Plotter".into(),
                    field: "mx".into(),
                })
                .op(Op::CallV {
                    method: "position".into(),
                    argc: 0,
                })
                .op(Op::RetVal);
        })
        .method("y", [], TypeSig::Int, |b| {
            b.op(Op::Load(0))
                .op(Op::GetField {
                    class: "Plotter".into(),
                    field: "my".into(),
                })
                .op(Op::CallV {
                    method: "position".into(),
                    argc: 0,
                })
                .op(Op::RetVal);
        })
        .done();
    vm.register_class(class)?;
    Ok(())
}

/// Instantiates a `Motor` proxy bound to `port`.
///
/// # Errors
///
/// [`VmError::Link`] if the class is not registered.
pub fn spawn_motor(vm: &mut Vm, port: Port) -> Result<Value, VmError> {
    let motor = vm.new_object("Motor")?;
    let obj = motor.as_ref_id().expect("fresh object");
    vm.set_field(obj, "Motor", "port", Value::str(port.to_string()))?;
    Ok(motor)
}

/// Instantiates a `Plotter` proxy wired to three motor proxies
/// (A = X, B = Y, C = pen).
///
/// # Errors
///
/// [`VmError::Link`] if the classes are not registered.
pub fn spawn_plotter(vm: &mut Vm) -> Result<Value, VmError> {
    let plotter = vm.new_object("Plotter")?;
    let obj = plotter.as_ref_id().expect("fresh object");
    for (field, port) in [("mx", Port::A), ("my", Port::B), ("mpen", Port::C)] {
        let motor = spawn_motor(vm, port)?;
        vm.set_field(obj, "Plotter", field, motor)?;
    }
    Ok(plotter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::prelude::*;

    fn setup() -> (Vm, RobotHandle, Value) {
        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        let plotter = spawn_plotter(&mut vm).unwrap();
        (vm, handle, plotter)
    }

    #[test]
    fn sensor_proxy_reads_hardware() {
        let (mut vm, handle, _) = setup();
        let sensor = spawn_sensor(&mut vm, Port::S2).unwrap();
        handle.lock().rcx.sensor_mut(Port::S2).set_value(42);
        let v = vm.call("Sensor", "read", sensor.clone(), vec![]).unwrap();
        assert_eq!(v, Value::Int(42));
        let id = vm.call("Sensor", "id", sensor, vec![]).unwrap();
        assert_eq!(id, Value::str("sensor:S2"));
    }

    #[test]
    fn motor_proxy_drives_hardware() {
        let (mut vm, handle, _) = setup();
        let motor = spawn_motor(&mut vm, Port::A).unwrap();
        let d = vm
            .call("Motor", "rotate", motor.clone(), vec![Value::Int(90)])
            .unwrap();
        assert!(d.as_int().unwrap() > 0);
        assert_eq!(handle.lock().rcx.motor(Port::A).position(), 90);
        let pos = vm.call("Motor", "position", motor, vec![]).unwrap();
        assert_eq!(pos, Value::Int(90));
    }

    #[test]
    fn plotter_bytecode_moves_via_motor_proxies() {
        let (mut vm, handle, plotter) = setup();
        vm.call(
            "Plotter",
            "moveTo",
            plotter.clone(),
            vec![Value::Int(10), Value::Int(5)],
        )
        .unwrap();
        assert_eq!(handle.lock().position(), (10, 5));
        let x = vm.call("Plotter", "x", plotter.clone(), vec![]).unwrap();
        assert_eq!(x, Value::Int(10));
        // No pen: no strokes.
        assert!(handle.lock().canvas().is_empty());
    }

    #[test]
    fn plotter_pen_and_drawing() {
        let (mut vm, handle, plotter) = setup();
        vm.call("Plotter", "penDown", plotter.clone(), vec![]).unwrap();
        assert!(handle.lock().is_pen_down());
        vm.call(
            "Plotter",
            "moveTo",
            plotter.clone(),
            vec![Value::Int(5), Value::Int(0)],
        )
        .unwrap();
        vm.call("Plotter", "penUp", plotter.clone(), vec![]).unwrap();
        assert!(!handle.lock().is_pen_down());
        let c = handle.lock().canvas().clone();
        assert_eq!(c.len(), 1);
        assert_eq!(c.strokes()[0].to, (5, 0));
        // Idempotent pen ops through the VM too.
        vm.call("Plotter", "penUp", plotter, vec![]).unwrap();
        assert_eq!(handle.lock().rcx.motor(Port::C).position(), 0);
    }

    #[test]
    fn frozen_hardware_raises_catchable_exception() {
        let (mut vm, handle, plotter) = setup();
        {
            let mut hw = handle.lock();
            hw.rcx.sensor_mut(Port::S1).set_value(1);
            hw.rcx.poll_sensors();
        }
        let err = vm
            .call(
                "Plotter",
                "moveTo",
                plotter,
                vec![Value::Int(1), Value::Int(0)],
            )
            .unwrap_err();
        assert_eq!(
            err.as_exception().unwrap().class.as_ref(),
            "HardwareFrozenException"
        );
    }

    #[test]
    fn motor_calls_are_logged_for_monitoring() {
        let (mut vm, handle, plotter) = setup();
        vm.call("Plotter", "penDown", plotter.clone(), vec![]).unwrap();
        vm.call(
            "Plotter",
            "moveTo",
            plotter,
            vec![Value::Int(3), Value::Int(0)],
        )
        .unwrap();
        let log = handle.lock().rcx.take_log();
        let devices: Vec<String> = log.iter().map(|c| c.device.clone()).collect();
        assert_eq!(devices, ["motor:C", "motor:A"]);
    }
}
