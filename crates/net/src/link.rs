//! Wireless link model: latency, jitter, and loss.

use crate::clock::SimTime;
use crate::rng::SimRng;

/// Parameters of the (shared) wireless medium.
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// Fixed per-message latency (ns).
    pub base_latency_ns: u64,
    /// Additional latency per payload byte (ns).
    pub per_byte_ns: u64,
    /// Uniform jitter added on top, in `[0, jitter_ns)`.
    pub jitter_ns: u64,
    /// Probability a unicast/broadcast copy is lost, in `[0, 1]`.
    pub loss_prob: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        // Ballpark 802.11b numbers of the paper's era: ~1 ms base, ~1 µs
        // per byte (≈1 MB/s effective), small jitter, no loss.
        Self {
            base_latency_ns: 1_000_000,
            per_byte_ns: 1_000,
            jitter_ns: 200_000,
            loss_prob: 0.0,
        }
    }
}

impl LinkModel {
    /// An ideal instantaneous lossless link (useful in unit tests).
    pub fn ideal() -> Self {
        Self {
            base_latency_ns: 1,
            per_byte_ns: 0,
            jitter_ns: 0,
            loss_prob: 0.0,
        }
    }

    /// A lossy variant of the default model.
    pub fn lossy(loss_prob: f64) -> Self {
        Self {
            loss_prob,
            ..Self::default()
        }
    }

    /// Samples the delivery time for a message of `len` bytes sent at
    /// `now`, or `None` if the copy is lost.
    pub fn sample(&self, now: SimTime, len: usize, rng: &mut SimRng) -> Option<SimTime> {
        if rng.chance(self.loss_prob.clamp(0.0, 1.0)) {
            return None;
        }
        let jitter = if self.jitter_ns > 0 {
            rng.range_u64(self.jitter_ns)
        } else {
            0
        };
        let latency = self
            .base_latency_ns
            .saturating_add(self.per_byte_ns.saturating_mul(len as u64))
            .saturating_add(jitter);
        Some(now.plus(latency))
    }

    /// Delivery time over a *wired* backhaul segment: same base and
    /// per-byte latency as the radio, but no jitter and no loss — and
    /// crucially no RNG draw, so federation traffic never perturbs the
    /// radio's loss-sampling stream.
    pub fn sample_wired(&self, now: SimTime, len: usize) -> SimTime {
        let latency = self
            .base_latency_ns
            .saturating_add(self.per_byte_ns.saturating_mul(len as u64));
        now.plus(latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let mut rng = SimRng::new(1);
        let m = LinkModel::ideal();
        for len in [0usize, 10, 10_000] {
            let t = m.sample(SimTime::ZERO, len, &mut rng).unwrap();
            assert_eq!(t, SimTime(1));
        }
    }

    #[test]
    fn latency_scales_with_size() {
        let mut rng = SimRng::new(1);
        let m = LinkModel {
            jitter_ns: 0,
            ..LinkModel::default()
        };
        let small = m.sample(SimTime::ZERO, 10, &mut rng).unwrap();
        let large = m.sample(SimTime::ZERO, 10_000, &mut rng).unwrap();
        assert!(large > small);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut rng = SimRng::new(1);
        let m = LinkModel::lossy(1.0);
        for _ in 0..100 {
            assert!(m.sample(SimTime::ZERO, 8, &mut rng).is_none());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = LinkModel::default();
        let mut r1 = SimRng::new(7);
        let mut r2 = SimRng::new(7);
        for len in 0..50 {
            assert_eq!(
                m.sample(SimTime::ZERO, len, &mut r1),
                m.sample(SimTime::ZERO, len, &mut r2)
            );
        }
    }
}
