//! Every shipped extension must survive the `pmp-analyze` admission
//! gate on a representative node VM: clean bytecode, declared
//! permissions covering the inferred set, and loops (if any) bounded
//! by fuel. A regression here means `midas::receiver` would start
//! nacking the paper's own extensions.

use pmp_analyze::{analyze_aspect, AnalyzeOptions, Pass, Severity, SysPerm};
use pmp_extensions::support::{register_session_blackboard, register_sink};
use pmp_midas::ExtensionPackage;
use pmp_vm::perm::{Permission, Permissions};
use pmp_vm::prelude::{Vm, VmConfig};
use std::sync::Arc;

/// A VM wired like a platform node: the builtin sys ops (`print`,
/// `time.now`) plus the session blackboard and the guarded sinks the
/// extension library posts to.
fn node_vm() -> Vm {
    let mut vm = Vm::new(VmConfig::default());
    register_session_blackboard(&mut vm);
    register_sink(&mut vm, "monitor.post", Some(Permission::Net));
    register_sink(&mut vm, "replicate.post", Some(Permission::Net));
    register_sink(&mut vm, "billing.charge", Some(Permission::Net));
    register_sink(&mut vm, "persist.put", Some(Permission::Store));
    vm.register_sys(
        "session.caller",
        None,
        Arc::new(|_vm, _args| Ok(pmp_vm::value::Value::Null)),
    );
    vm
}

fn shipped() -> Vec<ExtensionPackage> {
    vec![
        pmp_extensions::monitoring::package(1),
        pmp_extensions::session::package("* DrawingService.*(..)", 1),
        pmp_extensions::access_control::package("* DrawingService.*(..)", &["op:1"], 1),
        pmp_extensions::encryption::package(0x42, 1),
        pmp_extensions::geofence::package(0, 0, 30, 30, 1),
        pmp_extensions::billing::package("* Motor.*(..)", 2, 1),
        pmp_extensions::persistence::package("Robot.state", 1),
        pmp_extensions::transactions::package("* Svc.tx*(..)", "Svc", &["a", "b"], 1),
        pmp_extensions::agegate::package("* Svc.*(..)", 1_000, 1),
        pmp_extensions::replication::package(1),
    ]
}

fn analyze(vm: &Vm, pkg: &ExtensionPackage) -> pmp_analyze::AnalysisReport {
    let declared = Permissions::from_names(pkg.meta.permissions.iter().map(String::as_str));
    let reg = vm.sys_registry();
    let resolver = |name: &str| match reg.lookup(name) {
        Some(idx) => match reg.perm_of(idx) {
            Some(p) => SysPerm::Guarded(p),
            None => SysPerm::Unguarded,
        },
        None => SysPerm::Unknown,
    };
    analyze_aspect(&pkg.aspect, declared, &resolver, &AnalyzeOptions::default())
}

#[test]
fn every_shipped_extension_passes_the_admission_gate() {
    let vm = node_vm();
    for pkg in shipped() {
        let report = analyze(&vm, &pkg);
        assert!(
            !report.rejects(Severity::Error),
            "{} would be rejected: {}",
            pkg.meta.id,
            report
                .first_at(Severity::Error)
                .expect("rejects implies a finding")
        );
        // Stronger than "no errors": on a fully wired node every sys
        // op resolves, so there should be no warnings either.
        assert!(
            !report.rejects(Severity::Warning),
            "{} has warnings: {:?}",
            pkg.meta.id,
            report.findings
        );
    }
}

#[test]
fn declared_permissions_are_exactly_what_the_code_needs() {
    // No shipped extension over-declares: the Info lint for unused
    // grants never fires, so the paper's least-privilege story holds.
    let vm = node_vm();
    for pkg in shipped() {
        let report = analyze(&vm, &pkg);
        let declared = Permissions::from_names(pkg.meta.permissions.iter().map(String::as_str));
        assert!(
            declared.covers(report.required),
            "{} under-declares: requires {}",
            pkg.meta.id,
            report.required
        );
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.pass == Pass::Permissions && f.message.contains("never used")),
            "{} over-declares: {:?}",
            pkg.meta.id,
            report.findings
        );
    }
}

#[test]
fn encryption_loop_is_flagged_as_fuel_bounded_info() {
    // The stand-in cipher loops over the buffer: the termination pass
    // must see the back-edge and judge it benign under fuel.
    let vm = node_vm();
    let report = analyze(&vm, &pmp_extensions::encryption::package(0x42, 1));
    let loops: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.pass == Pass::Termination)
        .collect();
    assert!(!loops.is_empty(), "expected a back-edge finding");
    assert!(loops.iter().all(|f| f.severity == Severity::Info));
}

#[test]
fn unwired_node_downgrades_cleanly_to_warnings() {
    // On a VM without the monitoring sink the sys op is unknown: the
    // gate warns (fail-closed at link time) but does not reject under
    // the default Error threshold.
    let vm = Vm::new(VmConfig::default());
    let report = analyze(&vm, &pmp_extensions::monitoring::package(1));
    assert!(!report.rejects(Severity::Error));
    assert!(report.rejects(Severity::Warning));
}
