//! Global invariants checked at epoch barriers.
//!
//! Each oracle states a property the platform must uphold *no matter
//! what* the chaos script does — they are about the protocols, not the
//! scenario. All of them are phrased with explicit slack windows so
//! they stay sound under message latency, sweep granularity, and the
//! executor's pump-slice quantum:
//!
//! | id               | property                                              |
//! |------------------|-------------------------------------------------------|
//! | `lease-liveness` | no advice stays active past lease lapse + sweep slack |
//! | `departure`      | a long-uncovered node ends up with nothing installed  |
//! | `cross-driver`   | serial and parallel runs are byte-identical           |
//! | `durable-digest` | crash→restart reproduces the barrier-committed state  |
//! | `conservation`   | installed − removed counters == Σ live installs       |
//! | `grant-catalog`  | every lease-table grant names a catalogued extension  |
//! | `recover-panic`  | `recover()` never panics, even on a corrupt image     |
//! | `perf.adapt-p99` | verify/weave p99 stays under a generous wall ceiling  |
//! | `trace.ring-growth` | flight rings and the collector never exceed caps   |
//! | `stream-resync`  | every live subscriber converges to the publisher      |
//! | `rpc-duplicate-execution` | at-most-once calls never execute twice       |
//! | `adversarial-containment` | hostile packages never install on a node     |
//! | `perf.soak-rpc-p99` | sim-time RPC p99 stays near the link baseline      |
//! | `perf.soak-throughput` | every semantic call resolves within its window  |
//! | `perf.soak-memory` | dedup tables and resolved FIFOs honour their caps   |
//!
//! The `perf.*` oracles are excluded from the cross-driver violation
//! diff: the original `perf.adapt-p99` reads wall-clock histograms
//! (genuinely nondeterministic), and the soak family keeps the prefix
//! so a scenario can be perf-red without also being flagged as a
//! determinism bug. Everything else is pure sim-state and must agree
//! byte for byte. (`perf.soak-*` actually *are* simulated-time
//! properties — the latency histogram and the retry schedule are
//! functions of sim time — so they fire identically under both
//! drivers; the prefix only controls reporting.)
//!
//! `durable-digest` compares against the digest captured after the
//! pre-crash `commit()` the executor forces, so it asserts equality of
//! *barrier-committed* state: what the WAL promised is exactly what
//! recovery rebuilds. Torn-tail / bit-flip injections switch that
//! restart to "must not panic, must report unclean" instead — the lost
//! suffix is the fault's point.

use crate::script::RADIO_RANGE;
use pmp_core::{BaseId, MobId, Platform, StreamEvent, StreamSub};
use pmp_durable::Durable;
use pmp_midas::ReceiverEvent;
use std::collections::{BTreeMap, BTreeSet};

/// One invariant breach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired (stable id, see module table).
    pub invariant: &'static str,
    /// Simulated ms at which the breach was observed.
    pub at_ms: u64,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t+{}ms: {}", self.invariant, self.at_ms, self.detail)
    }
}

/// Extra observation delay the oracles must forgive: one pump slice
/// plus scheduling/latency grace.
const OBS_SLACK_MS: u64 = 500;
/// How long past lease expiry an install may linger: one sweep period
/// (500 ms) plus observation slack.
const SWEEP_SLACK_MS: u64 = 500 + OBS_SLACK_MS;
/// Renewal-in-flight grace for the departure oracle.
const DEPART_SLACK_MS: u64 = 2_000;

/// Cross-run oracle state the executor threads through the barriers.
#[derive(Debug)]
pub struct OracleState {
    /// Lease duration bases grant, ms (from the topology).
    pub lease_ms: u64,
    /// Per-node: since when (ms) the node has been out of coverage,
    /// `None` while covered.
    pub uncovered_since: Vec<Option<u64>>,
    /// Per-base: digest captured at the crash barrier, if down.
    pub digest_at_crash: Vec<Option<u64>>,
    /// Per-base: a disk fault was injected while down, so the next
    /// restart skips the digest-equality check.
    pub fault_injected: Vec<bool>,
    /// Severed (node index, base index) radio pairs.
    pub partitions: BTreeSet<(u8, u8)>,
    /// Federated (replica-linked) base pairs, `(min, max)` indices.
    pub fed_pairs: BTreeSet<(u8, u8)>,
    /// Severed inter-base paths, `(min, max)` indices.
    pub base_partitions: BTreeSet<(u8, u8)>,
    /// Whether the radio is loss-free — the handoff-migration oracle
    /// is only sound when `GrantTransfer` cannot be dropped.
    pub loss_free: bool,
    /// Per-node: last observed `(lease holder, installs seen, version)`
    /// for every installed extension, keyed by ext id.
    pub grant_state: Vec<BTreeMap<String, (u32, u64, u32)>>,
    /// Stream subscribers attached by `Op::Subscribe`, in creation
    /// order (dropped ones stay, marked dead, so indices are stable).
    pub subscribers: Vec<StreamMirror>,
    /// True while no op has disturbed the radio or topology (no roam,
    /// corridor trip, radio toggle, partition, or base crash). The
    /// `perf.soak-rpc-p99` oracle is only sound on a quiet radio: a
    /// retry that succeeds after a heal is a legitimate seconds-scale
    /// latency, not a regression.
    pub radio_quiet: bool,
    /// Unscaled link base latency (ns) captured at build time — the
    /// yardstick `perf.soak-rpc-p99` measures against, immune to
    /// `Op::SlowLinks` rescaling the live link.
    pub baseline_latency_ns: u64,
    /// Report-once latch for `perf.soak-rpc-p99`: the histogram is
    /// cumulative, so once the p99 crosses the ceiling it stays
    /// crossed — re-reporting every barrier would bury an hour-scale
    /// soak report under thousands of copies of one regression.
    pub p99_reported: bool,
    /// Semantic (non-maybe) calls issued by `Op::RpcSem`:
    /// `(issue_ms, request id, base index)`. Pruned as they resolve.
    pub rpc_issued: Vec<(u64, u64, u8)>,
    /// Request ids whose outcome the executor has drained.
    pub rpc_resolved: BTreeSet<u64>,
    /// Per-base: last `Op::RestartBase` completion, ms. A restarted
    /// base re-arms its recovered call timers, so the throughput
    /// oracle restarts the resolution clock from here.
    pub base_restart_ms: Vec<u64>,
}

/// One chaos stream subscriber: a platform cursor plus the mirror
/// replica the `stream-resync` oracle rebuilds purely from drained
/// events. Mirrors are constructed with placeholder identity (node
/// ids, ring caps at their defaults) — sound because every
/// [`Durable::state_digest`] hashes only the canonical snapshot
/// encoding, which WAL replay fully determines.
pub struct StreamMirror {
    /// Base index the cursor is attached to.
    pub base: u8,
    /// Namespace followed (one of [`crate::script::STREAM_NAMESPACES`]).
    pub ns: &'static str,
    /// The platform-side cursor.
    pub sub: StreamSub,
    /// False once dropped by `Op::DropSubscriber`.
    pub live: bool,
    mirror: Box<dyn Durable>,
}

impl std::fmt::Debug for StreamMirror {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamMirror")
            .field("base", &self.base)
            .field("ns", &self.ns)
            .field("live", &self.live)
            .finish_non_exhaustive()
    }
}

impl StreamMirror {
    /// A fresh mirror for `ns` on `base`, tracking cursor `sub`.
    #[must_use]
    pub fn new(base: u8, ns: &'static str, sub: StreamSub) -> StreamMirror {
        let mirror: Box<dyn Durable> = match ns {
            "midas.base" => Box::new(pmp_midas::ExtensionBase::new(
                pmp_net::NodeId(0),
                pmp_net::NodeId(0),
            )),
            "trace.flight" => Box::new(pmp_trace::FlightRecorder::new(
                pmp_trace::DEFAULT_FLIGHT_CAP,
            )),
            _ => Box::new(pmp_store::MovementStore::new()),
        };
        StreamMirror {
            base,
            ns,
            sub,
            live: true,
            mirror,
        }
    }
}

impl OracleState {
    /// Fresh state for `bases` bases and `nodes` initial nodes.
    #[must_use]
    pub fn new(lease_ms: u64, bases: usize, nodes: usize) -> OracleState {
        OracleState {
            lease_ms,
            uncovered_since: vec![None; nodes],
            digest_at_crash: vec![None; bases],
            fault_injected: vec![false; bases],
            partitions: BTreeSet::new(),
            fed_pairs: BTreeSet::new(),
            base_partitions: BTreeSet::new(),
            loss_free: true,
            grant_state: vec![BTreeMap::new(); nodes],
            subscribers: Vec::new(),
            radio_quiet: true,
            baseline_latency_ns: 1,
            p99_reported: false,
            rpc_issued: Vec::new(),
            rpc_resolved: BTreeSet::new(),
            base_restart_ms: vec![0; bases],
        }
    }
}

/// `stream-resync`: drains every live subscriber at the barrier,
/// applies the events to its mirror, and requires the mirror's digest
/// to equal the publisher's for that namespace — i.e. after any
/// crash/restart/checkpoint/partition sequence the tiered
/// ring / log-bootstrap / snapshot protocol always re-converges, with
/// no lost, duplicated, or reordered delta. Skipped while the base is
/// down (drains are empty by contract; the forced post-restart
/// snapshot resync re-anchors the mirror at the next barrier).
///
/// Runs before [`check_barrier`] in the executor because it needs the
/// platform mutably (cursor drains advance hub state); it perturbs
/// nothing any other oracle or digest observes.
pub fn stream_resync(
    p: &mut Platform,
    bases: &[BaseId],
    st: &mut OracleState,
    now_ms: u64,
    out: &mut Vec<Violation>,
) {
    for (i, s) in st.subscribers.iter_mut().enumerate() {
        if !s.live {
            continue;
        }
        let Some(&b) = bases.get(usize::from(s.base)) else {
            continue;
        };
        if p.base(b).crashed {
            continue;
        }
        for ev in p.drain_updates(s.sub) {
            let applied = match &ev {
                StreamEvent::Delta { bytes, .. } => s.mirror.apply_record(bytes),
                StreamEvent::Snapshot { bytes, .. } => s.mirror.restore_snapshot(bytes),
            };
            if let Err(e) = applied {
                out.push(Violation {
                    invariant: "stream-resync",
                    at_ms: now_ms,
                    detail: format!(
                        "subscriber {i} (base {} ns {}): event at rev {} failed to apply: {e}",
                        s.base,
                        s.ns,
                        ev.rev()
                    ),
                });
            }
        }
        let station = p.base(b);
        let want = match s.ns {
            "midas.base" => station.base.state_digest(),
            "trace.flight" => station.flight.state_digest(),
            _ => station.store.state_digest(),
        };
        let got = s.mirror.state_digest();
        if got != want {
            out.push(Violation {
                invariant: "stream-resync",
                at_ms: now_ms,
                detail: format!(
                    "subscriber {i} (base {} ns {}): mirror digest {got:#018x} \
                     != publisher {want:#018x} after drain",
                    s.base, s.ns
                ),
            });
        }
    }
}

/// Runs every barrier oracle once, appending any breaches.
pub fn check_barrier(
    p: &Platform,
    bases: &[BaseId],
    nodes: &[MobId],
    st: &mut OracleState,
    now_ms: u64,
    out: &mut Vec<Violation>,
) {
    lease_liveness(p, nodes, now_ms, out);
    departure_revocation(p, bases, nodes, st, now_ms, out);
    conservation(p, nodes, now_ms, out);
    grant_catalog(p, bases, now_ms, out);
    grant_survives_handoff(p, bases, nodes, st, now_ms, out);
    adapt_latency_slo(p, now_ms, out);
    ring_growth(p, now_ms, out);
    rpc_duplicate_execution(p, nodes, now_ms, out);
    adversarial_containment(p, nodes, now_ms, out);
    soak_rpc_p99(p, st, now_ms, out);
    soak_throughput(p, bases, st, now_ms, out);
    soak_memory(p, bases, nodes, now_ms, out);
}

/// `rpc-duplicate-execution`: the tentpole at-most-once guarantee —
/// whatever mix of loss, retries, base crashes, and recoveries the
/// script produces, no at-most-once call's service method ever runs
/// twice. The server-side dedup table plus the durable caller table
/// make this unconditional, so the oracle carries no gating at all.
fn rpc_duplicate_execution(p: &Platform, nodes: &[MobId], now_ms: u64, out: &mut Vec<Violation>) {
    for &m in nodes {
        let node = p.node(m);
        let dups = node.rpc_server.duplicate_at_most_once_executions();
        if dups > 0 {
            out.push(Violation {
                invariant: "rpc-duplicate-execution",
                at_ms: now_ms,
                detail: format!(
                    "{}: {dups} at-most-once execution(s) past the first",
                    node.name
                ),
            });
        }
    }
}

/// Id prefix every hostile package uses (see `exec`'s adversarial
/// workload builder).
pub const HOSTILE_PREFIX: &str = "ext/hostile-";

/// `adversarial-containment`: no hostile package ever clears the MIDAS
/// admission gate onto a node — tampered signatures, rogue signers,
/// over-privileged manifests, and verifier-rejecting bytecode must all
/// die at the receiver, no matter how hard the script hammers the
/// publish path. The one exception is the interference probe
/// (`ext/hostile-meddle`): it is validly signed and capability-clean —
/// its hostility is crosscut pressure on the interference analyzer,
/// which journals the overlap but (by default policy) does not reject,
/// so installation is the *expected* contained outcome.
fn adversarial_containment(p: &Platform, nodes: &[MobId], now_ms: u64, out: &mut Vec<Violation>) {
    for &m in nodes {
        let node = p.node(m);
        for id in node.receiver.installed_ids() {
            if id.starts_with(HOSTILE_PREFIX) && !id.contains("meddle") {
                out.push(Violation {
                    invariant: "adversarial-containment",
                    at_ms: now_ms,
                    detail: format!("{}: hostile package {id} cleared the gate", node.name),
                });
            }
        }
    }
}

/// How far past its full backoff schedule a semantic call may stay
/// unresolved before `perf.soak-throughput` fires: the default
/// schedule (8 attempts, 2 s cap) finishes in ~10.4 s, so 15 s is a
/// whole-schedule's worth of slack.
const RPC_RESOLVE_SLACK_MS: u64 = 15_000;

/// `perf.soak-rpc-p99`: the simulated-time p99 of successful RPC
/// round-trips stays within 3× the link's *unscaled* base latency. A
/// clean round-trip is two hops (call + reply ≈ 2× base), so a 2×
/// link-latency regression (`Op::SlowLinks`) lands at 4× base and
/// fires, while the healthy 2× stays under. Only sound on a loss-free,
/// undisturbed radio: a retry after loss or a heal legitimately
/// resolves seconds late.
fn soak_rpc_p99(p: &Platform, st: &mut OracleState, now_ms: u64, out: &mut Vec<Violation>) {
    if !st.loss_free || !st.radio_quiet || st.p99_reported {
        return;
    }
    let sample = p.telemetry().with(|t| {
        t.registry
            .histogram_by_name("rpc.latency_ns")
            .map(|h| (h.count(), h.p99()))
    });
    let ceiling = st.baseline_latency_ns.saturating_mul(3);
    if let Some((count, p99)) = sample {
        if count > 0 && p99 > ceiling {
            st.p99_reported = true;
            out.push(Violation {
                invariant: "perf.soak-rpc-p99",
                at_ms: now_ms,
                detail: format!(
                    "rpc.latency_ns: p99 {p99}ns over {count} calls exceeds {ceiling}ns \
                     (3x link baseline {}ns)",
                    st.baseline_latency_ns
                ),
            });
        }
    }
}

/// `perf.soak-throughput`: the delivery floor — every semantic
/// (at-most-once / at-least-once) call resolves, with a reply or a
/// timeout outcome, within its full retry schedule plus slack. The
/// engine's timers make resolution independent of the radio; the only
/// thing that can stall a call is its issuing base being down, so the
/// clock restarts at the base's last restart (recovered calls re-arm
/// their timers there) and pauses while it is crashed.
fn soak_throughput(
    p: &Platform,
    bases: &[BaseId],
    st: &mut OracleState,
    now_ms: u64,
    out: &mut Vec<Violation>,
) {
    let resolved = &st.rpc_resolved;
    let restarts = &st.base_restart_ms;
    let mut stalled: Vec<(u64, u64, u8)> = Vec::new();
    st.rpc_issued.retain(|&(issue_ms, req, base)| {
        if resolved.contains(&req) {
            return false; // resolved: drop, keeping the ledger bounded
        }
        let Some(&b) = bases.get(usize::from(base)) else {
            return false;
        };
        if p.base(b).crashed {
            return true; // clock paused until restart
        }
        let clock_start = issue_ms.max(restarts[usize::from(base)]);
        if now_ms.saturating_sub(clock_start) > RPC_RESOLVE_SLACK_MS {
            stalled.push((issue_ms, req, base));
            return false; // report once, not at every later barrier
        }
        true
    });
    for (issue_ms, req, base) in stalled {
        out.push(Violation {
            invariant: "perf.soak-throughput",
            at_ms: now_ms,
            detail: format!(
                "req {req} (base {base}, issued t+{issue_ms}ms) unresolved after \
                 {}ms — retry schedule wedged",
                now_ms - issue_ms
            ),
        });
    }
}

/// `perf.soak-memory`: the RPC layer's long-horizon memory bounds —
/// every server dedup table stays within its FIFO cap and every
/// caller engine's resolved-id memory within [`RESOLVED_MEMORY`].
/// Pure state inspection, sound under any script.
///
/// [`RESOLVED_MEMORY`]: pmp_core::rpc::RESOLVED_MEMORY
fn soak_memory(
    p: &Platform,
    bases: &[BaseId],
    nodes: &[MobId],
    now_ms: u64,
    out: &mut Vec<Violation>,
) {
    for &m in nodes {
        let node = p.node(m);
        let (len, cap) = (node.rpc_server.dedup.len(), node.rpc_server.dedup.cap());
        if len > cap {
            out.push(Violation {
                invariant: "perf.soak-memory",
                at_ms: now_ms,
                detail: format!("{}: dedup table holds {len} entries, cap {cap}", node.name),
            });
        }
    }
    for &b in bases {
        let station = p.base(b);
        if station.crashed {
            continue;
        }
        let len = station.rpc.resolved_len();
        if len > pmp_core::rpc::RESOLVED_MEMORY {
            out.push(Violation {
                invariant: "perf.soak-memory",
                at_ms: now_ms,
                detail: format!(
                    "{}: resolved FIFO holds {len} ids, cap {}",
                    station.name,
                    pmp_core::rpc::RESOLVED_MEMORY
                ),
            });
        }
    }
}

/// Wall-clock ceiling for the `perf.adapt-p99` oracle: verify and
/// weave are microsecond-scale operations, so a p99 past a quarter
/// second means the platform is pathologically slow, not merely a
/// noisy host.
const ADAPT_P99_CEILING_NS: u64 = 250_000_000;

/// `perf.adapt-p99`: the 99th-percentile wall-clock latency of the
/// receiver's verify and weave stages stays under a deliberately
/// generous ceiling. Unlike every other oracle this reads real time,
/// so the executor excludes `perf.*` breaches from the cross-driver
/// violation comparison.
fn adapt_latency_slo(p: &Platform, now_ms: u64, out: &mut Vec<Violation>) {
    for name in ["midas.receiver.verify_ns", "midas.receiver.weave_ns"] {
        let sample = p.telemetry().with(|t| {
            t.registry
                .histogram_by_name(name)
                .map(|h| (h.count(), h.p99()))
        });
        if let Some((count, p99)) = sample {
            if count > 0 && p99 > ADAPT_P99_CEILING_NS {
                out.push(Violation {
                    invariant: "perf.adapt-p99",
                    at_ms: now_ms,
                    detail: format!(
                        "{name}: p99 {}µs over {} samples exceeds {}ms ceiling",
                        p99 / 1_000,
                        count,
                        ADAPT_P99_CEILING_NS / 1_000_000
                    ),
                });
            }
        }
    }
}

/// `trace.ring-growth`: tracing memory is strictly bounded — every
/// flight ring holds at most its capacity and the collector never
/// retains more spans than its cap. A breach means the eviction logic
/// regressed and tracing could grow without bound on a long run.
fn ring_growth(p: &Platform, now_ms: u64, out: &mut Vec<Violation>) {
    for (node, len, cap) in p.flight_stats() {
        if len > cap {
            out.push(Violation {
                invariant: "trace.ring-growth",
                at_ms: now_ms,
                detail: format!("node {node}: flight ring holds {len} entries, cap {cap}"),
            });
        }
    }
    let (retained, cap) = p.collector_stats();
    if retained > cap {
        out.push(Violation {
            invariant: "trace.ring-growth",
            at_ms: now_ms,
            detail: format!("collector retains {retained} spans, cap {cap}"),
        });
    }
}

/// `lease-liveness`: every installed extension's lease deadline is in
/// the recent past at worst — the sweep must have removed anything
/// older than deadline + sweep period + slack.
fn lease_liveness(p: &Platform, nodes: &[MobId], now_ms: u64, out: &mut Vec<Violation>) {
    let now_ns = p.now().0;
    for &m in nodes {
        let node = p.node(m);
        let sweep_ns = node.receiver.sweep_interval_ns();
        for (ext_id, deadline_ns) in node.receiver.lease_deadlines() {
            let limit = deadline_ns + sweep_ns + OBS_SLACK_MS * 1_000_000;
            if now_ns > limit {
                out.push(Violation {
                    invariant: "lease-liveness",
                    at_ms: now_ms,
                    detail: format!(
                        "{}: {ext_id} still installed {}ms past its lease deadline",
                        node.name,
                        (now_ns - deadline_ns) / 1_000_000
                    ),
                });
            }
        }
    }
}

/// Whether some live, unpartitioned base covers the node's position.
fn covered(p: &Platform, bases: &[BaseId], node_idx: usize, m: MobId, st: &OracleState) -> bool {
    let sim_node = p.sim.node(p.node(m).node);
    if !sim_node.online {
        return false;
    }
    let (nx, ny) = (sim_node.pos.x, sim_node.pos.y);
    bases.iter().enumerate().any(|(j, &b)| {
        let station = p.base(b);
        if station.crashed {
            return false;
        }
        if st.partitions.contains(&(node_idx as u8, j as u8)) {
            return false;
        }
        let bpos = p.sim.node(station.node).pos;
        let (dx, dy) = (bpos.x - nx, bpos.y - ny);
        (dx * dx + dy * dy).sqrt() <= RADIO_RANGE
    })
}

/// `departure`: once a node has been out of coverage longer than a full
/// lease plus renewal/sweep slack, nothing may remain installed — the
/// paper's "immediately withdrawn from the system" on departure.
fn departure_revocation(
    p: &Platform,
    bases: &[BaseId],
    nodes: &[MobId],
    st: &mut OracleState,
    now_ms: u64,
    out: &mut Vec<Violation>,
) {
    for (i, &m) in nodes.iter().enumerate() {
        if covered(p, bases, i, m, st) {
            st.uncovered_since[i] = None;
            continue;
        }
        let since = *st.uncovered_since[i].get_or_insert(now_ms);
        let uncovered_for = now_ms - since;
        let limit = st.lease_ms + SWEEP_SLACK_MS + DEPART_SLACK_MS;
        if uncovered_for > limit {
            let installed = p.node(m).receiver.installed_ids();
            if !installed.is_empty() {
                out.push(Violation {
                    invariant: "departure",
                    at_ms: now_ms,
                    detail: format!(
                        "{}: uncovered for {uncovered_for}ms but still holds {installed:?}",
                        p.node(m).name
                    ),
                });
            }
        }
    }
}

/// `conservation`: the telemetry counters and the live state agree —
/// `midas.receiver.installed − midas.receiver.removed` equals the sum
/// of currently-installed extensions over all nodes. Every install and
/// removal path counts exactly once (upgrades count one of each), so
/// any drift means a lost or double-counted transition.
fn conservation(p: &Platform, nodes: &[MobId], now_ms: u64, out: &mut Vec<Violation>) {
    let t = p.telemetry();
    let installed = t.counter_value("midas.receiver.installed");
    let removed = t.counter_value("midas.receiver.removed");
    let live: u64 = nodes
        .iter()
        .map(|&m| p.node(m).receiver.installed_ids().len() as u64)
        .sum();
    if installed != removed + live {
        out.push(Violation {
            invariant: "conservation",
            at_ms: now_ms,
            detail: format!(
                "installed={installed} removed={removed} but Σ live installs={live}"
            ),
        });
    }
}

/// `grant-catalog`: a base never tracks a grant for an extension it
/// cannot serve — its own catalog, or a foreign package adopted with a
/// roaming handoff. Revocation strips grants from every adapted entry
/// atomically, and WAL replay reproduces that.
fn grant_catalog(p: &Platform, bases: &[BaseId], now_ms: u64, out: &mut Vec<Violation>) {
    for &b in bases {
        let station = p.base(b);
        if station.crashed {
            continue;
        }
        let mut served: BTreeSet<String> = station.base.catalog.ids().into_iter().collect();
        served.extend(station.base.foreign_ids());
        for (name, (_, _, grants)) in station.base.lease_table() {
            for ext_id in grants.keys() {
                if !served.contains(ext_id) {
                    out.push(Violation {
                        invariant: "grant-catalog",
                        at_ms: now_ms,
                        detail: format!(
                            "{}: grant for {ext_id} held by {name} but not in catalog/foreign {served:?}",
                            station.name
                        ),
                    });
                }
            }
        }
    }
}

/// `grant-survives-handoff`: when a node's installed extension changes
/// lease holder between two *federated* bases, the move must be a
/// grant migration, not a remove-and-redeliver — the install count for
/// that extension must not grow across the handoff (same version, no
/// upgrade in flight). Only sound on a loss-free radio with no
/// partitions touching the node: a dropped `GrantTransfer` degrades to
/// legitimate redelivery.
fn grant_survives_handoff(
    p: &Platform,
    bases: &[BaseId],
    nodes: &[MobId],
    st: &mut OracleState,
    now_ms: u64,
    out: &mut Vec<Violation>,
) {
    if !st.loss_free || st.fed_pairs.is_empty() {
        return;
    }
    let base_idx_of = |node: u32| -> Option<u8> {
        bases
            .iter()
            .position(|&b| p.base(b).node.0 == node)
            .map(|i| i as u8)
    };
    for (i, &m) in nodes.iter().enumerate() {
        let node = p.node(m);
        let quarantined = st.partitions.iter().any(|&(n, _)| usize::from(n) == i);
        // Install count + latest version per extension, from the
        // receiver's accumulated event log (chaos never drains it).
        let mut installs: BTreeMap<String, (u64, u32)> = BTreeMap::new();
        for e in &node.events {
            if let ReceiverEvent::Installed {
                ext_id, version, ..
            } = e
            {
                let ent = installs.entry(ext_id.clone()).or_insert((0, 0));
                ent.0 += 1;
                ent.1 = *version;
            }
        }
        let mut next: BTreeMap<String, (u32, u64, u32)> = BTreeMap::new();
        for ext_id in node.receiver.installed_ids() {
            let Some(holder) = node.receiver.lease_holder(&ext_id) else {
                continue;
            };
            let (count, ver) = installs.get(&ext_id).copied().unwrap_or((0, 0));
            if let Some(&(old_holder, old_count, old_ver)) =
                st.grant_state[i].get(&ext_id)
            {
                let (Some(from), Some(to)) =
                    (base_idx_of(old_holder), base_idx_of(holder.0))
                else {
                    next.insert(ext_id, (holder.0, count, ver));
                    continue;
                };
                let pair = (from.min(to), from.max(to));
                let migratable = from != to
                    && st.fed_pairs.contains(&pair)
                    && !st.base_partitions.contains(&pair)
                    && !p.base(bases[usize::from(from)]).crashed
                    && !p.base(bases[usize::from(to)]).crashed
                    && !quarantined;
                if migratable && count > old_count && ver == old_ver {
                    out.push(Violation {
                        invariant: "grant-survives-handoff",
                        at_ms: now_ms,
                        detail: format!(
                            "{}: {ext_id} moved base {from} -> {to} (federated) by \
                             redelivery ({old_count} -> {count} installs) instead of \
                             grant migration",
                            node.name
                        ),
                    });
                }
            }
            next.insert(ext_id, (holder.0, count, ver));
        }
        st.grant_state[i] = next;
    }
}
