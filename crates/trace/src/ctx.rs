//! The trace context and the traced wire envelope.

use pmp_wire::{Reader, Wire, WireError, Writer};

/// A causal position inside one trace: the trace's root id plus the id
/// of the span that caused the current work. Both ids are deterministic
/// — `(origin node << 32) | per-node sequence` — and `0` is reserved as
/// the nil marker (per-node sequences start at 1, so no real span on
/// any node encodes to 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceCtx {
    /// Id of the trace (the root span's id).
    pub trace_id: u64,
    /// Id of the causing span.
    pub span_id: u64,
}

impl TraceCtx {
    /// The absent context: carried by untraced messages.
    pub const NIL: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this context is the nil marker.
    #[must_use]
    pub fn is_nil(&self) -> bool {
        *self == TraceCtx::NIL
    }

    /// Encodes `msg` with this context prepended — the borrow-friendly
    /// form of `pmp_wire::to_bytes(&Traced::new(*self, msg))`.
    #[must_use]
    pub fn wrap<T: Wire>(&self, msg: &T) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        msg.encode(&mut w);
        w.into_bytes()
    }
}

impl Wire for TraceCtx {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.trace_id);
        w.put_u64(self.span_id);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(TraceCtx {
            trace_id: r.get_u64()?,
            span_id: r.get_u64()?,
        })
    }
}

/// A protocol message with its trace context: the on-wire form of every
/// MIDAS, discovery, tuple-space, and RPC payload. The context rides in
/// front of the message and is always present (16 fixed bytes), so
/// payload sizes do not depend on whether tracing is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct Traced<T> {
    /// The causal context (`TraceCtx::NIL` when untraced).
    pub ctx: TraceCtx,
    /// The protocol message itself.
    pub msg: T,
}

impl<T> Traced<T> {
    /// Wraps `msg` with an explicit context.
    pub fn new(ctx: TraceCtx, msg: T) -> Traced<T> {
        Traced { ctx, msg }
    }

    /// Wraps `msg` with the nil context.
    pub fn nil(msg: T) -> Traced<T> {
        Traced {
            ctx: TraceCtx::NIL,
            msg,
        }
    }
}

impl<T: Wire> Wire for Traced<T> {
    fn encode(&self, w: &mut Writer) {
        self.ctx.encode(w);
        self.msg.encode(w);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Traced {
            ctx: TraceCtx::decode(r)?,
            msg: T::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_all_zeroes_and_sixteen_bytes() {
        let bytes = pmp_wire::to_bytes(&TraceCtx::NIL);
        assert_eq!(bytes, vec![0u8; 16]);
        assert!(TraceCtx::NIL.is_nil());
    }

    #[test]
    fn traced_roundtrips_and_length_ignores_ctx_value() {
        let live = Traced::new(
            TraceCtx {
                trace_id: (3u64 << 32) | 1,
                span_id: (3u64 << 32) | 7,
            },
            "payload".to_string(),
        );
        let nil = Traced::nil("payload".to_string());
        let lb = pmp_wire::to_bytes(&live);
        let nb = pmp_wire::to_bytes(&nil);
        assert_eq!(lb.len(), nb.len(), "ctx is fixed-width");
        assert_eq!(
            pmp_wire::from_bytes::<Traced<String>>(&lb).unwrap(),
            live
        );
        assert_eq!(pmp_wire::from_bytes::<Traced<String>>(&nb).unwrap(), nil);
        assert_eq!(live.ctx.wrap(&live.msg), lb, "wrap == to_bytes(Traced)");
    }
}
