//! Per-cell telemetry sinks for sharded execution.
//!
//! Counter, gauge, and histogram updates are commutative — concurrent
//! node cells may apply them straight to the platform's [`Shared`]
//! registry in any interleaving and still reach the same totals. The
//! journal is not: event order is observable (digests, exports, ring
//! eviction), so under a parallel driver each cell's point events are
//! buffered locally, stamped with the cell clock, and merged into the
//! shared journal at the epoch barrier in deterministic
//! `(time, cell rank, emission seq)` order.
//!
//! A [`Sink`] routes accordingly: metrics always go direct, events go
//! direct too ([`Sink::direct`], the legacy single-threaded path) or
//! into the cell buffer ([`Sink::buffered`], both engine drivers — the
//! serial driver uses the same buffering so the two engines are
//! journal-identical by construction).

use crate::journal::Subsystem;
use crate::{sync, Clock, Shared};
use std::sync::Arc;

/// A journal event captured in a cell buffer, waiting for the barrier
/// merge. `at` is the cell-clock reading at emission time.
#[derive(Debug, Clone)]
pub struct PendingEvent {
    /// Sim-time stamp from the cell clock.
    pub at: u64,
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Event name.
    pub name: String,
    /// Free-form detail.
    pub detail: String,
}

#[derive(Clone)]
struct Buffered {
    clock: Clock,
    pending: Arc<sync::Mutex<Vec<PendingEvent>>>,
}

/// A component-facing handle on the platform telemetry: metrics pass
/// through to the [`Shared`] registry, journal events either pass
/// through or buffer per cell (see module docs).
#[derive(Clone)]
pub struct Sink {
    shared: Shared,
    buffered: Option<Buffered>,
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink")
            .field("shared", &self.shared)
            .field("buffered", &self.buffered.is_some())
            .finish()
    }
}

impl Sink {
    /// A pass-through sink: every call lands on `shared` immediately.
    #[must_use]
    pub fn direct(shared: &Shared) -> Sink {
        Sink {
            shared: shared.clone(),
            buffered: None,
        }
    }

    /// A cell sink: metrics pass through, events buffer locally stamped
    /// by `clock` until [`Sink::take_pending`]. Clones share one buffer
    /// — hand clones to every component of the same cell.
    #[must_use]
    pub fn buffered(shared: &Shared, clock: Clock) -> Sink {
        Sink {
            shared: shared.clone(),
            buffered: Some(Buffered {
                clock,
                pending: Arc::new(sync::Mutex::new(Vec::new())),
            }),
        }
    }

    /// The underlying shared telemetry.
    #[must_use]
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Whether events buffer per cell.
    #[must_use]
    pub fn is_buffered(&self) -> bool {
        self.buffered.is_some()
    }

    /// Bumps a named counter by 1.
    pub fn inc(&self, name: &str) {
        self.shared.inc(name);
    }

    /// Bumps a named counter by `n`.
    pub fn add(&self, name: &str, n: u64) {
        self.shared.add(name, n);
    }

    /// Records into a named histogram.
    pub fn record(&self, name: &str, value: u64) {
        self.shared.record(name, value);
    }

    /// Runs `f` with the shared telemetry locked. Meant for metric
    /// access (gauges); journal writes through this bypass the cell
    /// buffer and must only happen on the direct path.
    pub fn with<R>(&self, f: impl FnOnce(&mut crate::Telemetry) -> R) -> R {
        self.shared.with(f)
    }

    /// Appends a point event: direct to the shared journal, or into the
    /// cell buffer stamped with the cell clock.
    pub fn event(&self, sub: Subsystem, name: &str, detail: impl Into<String>) {
        match &self.buffered {
            None => self.shared.event(sub, name, detail),
            Some(b) => b.pending.lock().push(PendingEvent {
                at: (b.clock)(),
                subsystem: sub,
                name: name.to_string(),
                detail: detail.into(),
            }),
        }
    }

    /// Takes the buffered events in emission order (empty for a direct
    /// sink). The driver merges them into the shared journal at the
    /// epoch barrier.
    #[must_use]
    pub fn take_pending(&self) -> Vec<PendingEvent> {
        match &self.buffered {
            None => Vec::new(),
            Some(b) => std::mem::take(&mut *b.pending.lock()),
        }
    }

    /// `true` when the cell buffer holds no events.
    #[must_use]
    pub fn pending_is_empty(&self) -> bool {
        match &self.buffered {
            None => true,
            Some(b) => b.pending.lock().is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn direct_sink_passes_through() {
        let shared = Shared::new();
        let s = Sink::direct(&shared);
        s.inc("a.b");
        s.event(Subsystem::Core, "e", "d");
        assert_eq!(shared.counter_value("a.b"), 1);
        assert_eq!(shared.with(|t| t.journal.len()), 1);
        assert!(s.take_pending().is_empty());
    }

    #[test]
    fn buffered_sink_holds_events_but_not_metrics() {
        let shared = Shared::new();
        let t = Arc::new(AtomicU64::new(7));
        let t2 = t.clone();
        let s = Sink::buffered(&shared, Arc::new(move || t2.load(Ordering::Relaxed)));
        s.inc("a.b");
        s.event(Subsystem::Midas, "e1", "");
        t.store(9, Ordering::Relaxed);
        s.event(Subsystem::Midas, "e2", "");
        assert_eq!(shared.counter_value("a.b"), 1, "metrics go direct");
        assert_eq!(shared.with(|t| t.journal.len()), 0, "events buffered");
        let pending = s.take_pending();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].at, 7);
        assert_eq!(pending[1].at, 9);
        assert!(s.pending_is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let shared = Shared::new();
        let s = Sink::buffered(&shared, Arc::new(|| 0));
        let s2 = s.clone();
        s.event(Subsystem::Vm, "a", "");
        s2.event(Subsystem::Vm, "b", "");
        assert_eq!(s.take_pending().len(), 2);
    }
}
