//! End-to-end discovery tests over the simulated wireless network.

use pmp_discovery::{
    DiscoveryClient, DiscoveryEvent, Registrar, RegistrarEvent, ServiceItem, ServiceQuery,
};
use pmp_net::prelude::*;

struct World {
    sim: Simulator,
    base: NodeId,
    registrar: Registrar,
    robot: NodeId,
    client: DiscoveryClient,
}

fn world() -> World {
    let mut sim = Simulator::new(42);
    sim.add_area("hall-a", Position::new(0.0, 0.0), Position::new(50.0, 50.0));
    let base = sim.add_node("base", Position::new(25.0, 25.0), 60.0);
    let robot = sim.add_node("robot", Position::new(30.0, 25.0), 60.0);
    let mut registrar = Registrar::new(base, "lookup:hall-a");
    let mut client = DiscoveryClient::new(robot);
    registrar.start(&mut sim);
    client.start(&mut sim);
    World {
        sim,
        base,
        registrar,
        robot,
        client,
    }
}

/// Pumps the simulation for `ns`, dispatching inboxes; returns all
/// client events.
fn pump(w: &mut World, ns: u64) -> Vec<DiscoveryEvent> {
    let mut events = Vec::new();
    let until = w.sim.now().plus(ns);
    loop {
        match w.sim.peek_next() {
            Some(t) if t <= until => {
                w.sim.step();
            }
            _ => break,
        }
        for inc in w.sim.drain_inbox(w.base) {
            w.registrar.handle(&mut w.sim, &inc);
        }
        for inc in w.sim.drain_inbox(w.robot) {
            events.extend(w.client.handle(&mut w.sim, &inc));
        }
    }
    events
}

#[test]
fn client_discovers_registrar_via_announce() {
    let mut w = world();
    let events = pump(&mut w, 2_000_000_000);
    assert!(events.iter().any(|e| matches!(
        e,
        DiscoveryEvent::RegistrarDiscovered { name, .. } if name == "lookup:hall-a"
    )));
    // Only one discovery event despite repeated announcements.
    let count = events
        .iter()
        .filter(|e| matches!(e, DiscoveryEvent::RegistrarDiscovered { .. }))
        .count();
    assert_eq!(count, 1);
}

#[test]
fn register_lookup_and_cancel() {
    let mut w = world();
    pump(&mut w, 1_000_000_000);
    let item = ServiceItem::new("midas.adaptation", "robot:1:1", w.robot.0).with_attr("vm", "pmp");
    let req = w
        .client
        .register(&mut w.sim, w.base, item, 5_000_000_000);
    let events = pump(&mut w, 500_000_000);
    let service = events
        .iter()
        .find_map(|e| match e {
            DiscoveryEvent::Registered {
                req: r, service, ..
            } if *r == req => Some(*service),
            _ => None,
        })
        .expect("registered");
    assert_eq!(w.registrar.service_count(), 1);
    assert!(w
        .registrar
        .take_events()
        .iter()
        .any(|e| matches!(e, RegistrarEvent::Registered(_))));

    // Lookup from the same client.
    let lreq = w.client.lookup(
        &mut w.sim,
        w.base,
        ServiceQuery::of_type("midas.adaptation"),
    );
    let events = pump(&mut w, 500_000_000);
    let items = events
        .iter()
        .find_map(|e| match e {
            DiscoveryEvent::LookupDone { req, items } if *req == lreq => Some(items.clone()),
            _ => None,
        })
        .expect("lookup result");
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].name, "robot:1:1");
    assert_eq!(items[0].attrs.get("vm").map(String::as_str), Some("pmp"));

    // Cancel removes it.
    w.client.cancel(&mut w.sim, service);
    pump(&mut w, 500_000_000);
    assert_eq!(w.registrar.service_count(), 0);
}

#[test]
fn lease_is_kept_alive_by_renewals() {
    let mut w = world();
    pump(&mut w, 500_000_000);
    let item = ServiceItem::new("midas.adaptation", "robot:1:1", w.robot.0);
    // 2 s lease, but we run for 10 s: without renewals it would lapse.
    w.client.register(&mut w.sim, w.base, item, 2_000_000_000);
    pump(&mut w, 10_000_000_000);
    assert_eq!(w.registrar.service_count(), 1, "renewals kept it alive");
}

#[test]
fn departure_expires_lease_and_drops_service() {
    let mut w = world();
    pump(&mut w, 500_000_000);
    let item = ServiceItem::new("midas.adaptation", "robot:1:1", w.robot.0);
    w.client.register(&mut w.sim, w.base, item, 2_000_000_000);
    pump(&mut w, 1_000_000_000);
    assert_eq!(w.registrar.service_count(), 1);

    // The robot leaves the hall — renewals stop arriving.
    w.sim.move_node(w.robot, Position::new(500.0, 500.0));
    let events = pump(&mut w, 10_000_000_000);

    assert_eq!(w.registrar.service_count(), 0, "lease lapsed");
    assert!(w
        .registrar
        .take_events()
        .iter()
        .any(|e| matches!(e, RegistrarEvent::Expired(_))));
    // The client also notices: its renewals go unanswered.
    assert!(events
        .iter()
        .any(|e| matches!(e, DiscoveryEvent::RegistrationLost { .. })));
    // And eventually the registrar itself is declared lost.
    assert!(events
        .iter()
        .any(|e| matches!(e, DiscoveryEvent::RegistrarLost { .. })));
}

#[test]
fn queries_filter_by_type_and_attrs() {
    let mut w = world();
    pump(&mut w, 500_000_000);
    w.client.register(
        &mut w.sim,
        w.base,
        ServiceItem::new("midas.adaptation", "robot", w.robot.0).with_attr("hall", "a"),
        5_000_000_000,
    );
    w.client.register(
        &mut w.sim,
        w.base,
        ServiceItem::new("drawing", "plotter", w.robot.0),
        5_000_000_000,
    );
    pump(&mut w, 500_000_000);
    assert_eq!(w.registrar.service_count(), 2);

    let lreq = w
        .client
        .lookup(&mut w.sim, w.base, ServiceQuery::of_type("drawing"));
    let events = pump(&mut w, 500_000_000);
    let items = events
        .iter()
        .find_map(|e| match e {
            DiscoveryEvent::LookupDone { req, items } if *req == lreq => Some(items.clone()),
            _ => None,
        })
        .unwrap();
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].service_type, "drawing");

    let lreq = w.client.lookup(
        &mut w.sim,
        w.base,
        ServiceQuery::default().with_attr("hall", "b"),
    );
    let events = pump(&mut w, 500_000_000);
    let items = events
        .iter()
        .find_map(|e| match e {
            DiscoveryEvent::LookupDone { req, items } if *req == lreq => Some(items.clone()),
            _ => None,
        })
        .unwrap();
    assert!(items.is_empty());
}

/// A three-registrar tree (root over two leaves, 1 km apart, wired
/// backhaul on the tree edges): a robot in leaf A's hall finds a
/// service held by leaf B without any flat broadcast — the query is
/// routed A → root → B and the answer retraces the path.
#[test]
fn fed_lookup_routes_through_the_registrar_tree() {
    let mut sim = Simulator::new(42);
    let root_n = sim.add_node("root", Position::new(500.0, 1000.0), 60.0);
    let leaf_a = sim.add_node("leaf-a", Position::new(0.0, 0.0), 60.0);
    let leaf_b = sim.add_node("leaf-b", Position::new(1000.0, 0.0), 60.0);
    let robot = sim.add_node("robot", Position::new(10.0, 0.0), 60.0);
    let printer = sim.add_node("printer", Position::new(990.0, 0.0), 60.0);
    sim.add_wired_link(root_n, leaf_a);
    sim.add_wired_link(root_n, leaf_b);

    let mut root = Registrar::new(root_n, "lookup:root");
    let mut reg_a = Registrar::new(leaf_a, "lookup:hall-a");
    let mut reg_b = Registrar::new(leaf_b, "lookup:hall-b");
    reg_a.set_parent(root_n);
    reg_b.set_parent(root_n);
    root.add_child(leaf_a);
    root.add_child(leaf_b);
    let mut robot_client = DiscoveryClient::new(robot);
    let mut printer_client = DiscoveryClient::new(printer);
    for r in [&mut root, &mut reg_a, &mut reg_b] {
        r.start(&mut sim);
    }
    robot_client.start(&mut sim);
    printer_client.start(&mut sim);
    printer_client.register(
        &mut sim,
        leaf_b,
        ServiceItem::new("print", "laser", printer.0),
        60_000_000_000,
    );

    let mut events = Vec::new();
    let mut asked = false;
    let until = sim.now().plus(6_000_000_000);
    loop {
        match sim.peek_next() {
            Some(t) if t <= until => {
                sim.step();
            }
            _ => break,
        }
        for inc in sim.drain_inbox(root_n) {
            root.handle(&mut sim, &inc);
        }
        for inc in sim.drain_inbox(leaf_a) {
            reg_a.handle(&mut sim, &inc);
        }
        for inc in sim.drain_inbox(leaf_b) {
            reg_b.handle(&mut sim, &inc);
        }
        for inc in sim.drain_inbox(printer) {
            printer_client.handle(&mut sim, &inc);
        }
        for inc in sim.drain_inbox(robot) {
            events.extend(robot_client.handle(&mut sim, &inc));
        }
        // Give registration + adverts ~2 s to settle, then ask once.
        if !asked && sim.now().0 > 2_000_000_000 {
            asked = true;
            robot_client.fed_lookup(&mut sim, leaf_a, ServiceQuery::of_type("print"));
        }
    }

    let (items, hops) = events
        .iter()
        .find_map(|e| match e {
            DiscoveryEvent::FedLookupDone { items, hops, .. } => Some((items.clone(), *hops)),
            _ => None,
        })
        .expect("federated lookup answered");
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].name, "laser");
    assert_eq!(hops, 2, "leaf-a -> root -> leaf-b");

    // A local federated hit is answered with zero hops.
    robot_client.register(
        &mut sim,
        leaf_a,
        ServiceItem::new("midas.adaptation", "robot", robot.0),
        60_000_000_000,
    );
    let mut events = Vec::new();
    let mut asked = false;
    let until = sim.now().plus(4_000_000_000);
    loop {
        match sim.peek_next() {
            Some(t) if t <= until => {
                sim.step();
            }
            _ => break,
        }
        for inc in sim.drain_inbox(leaf_a) {
            reg_a.handle(&mut sim, &inc);
        }
        for inc in sim.drain_inbox(robot) {
            events.extend(robot_client.handle(&mut sim, &inc));
        }
        if !asked && sim.now().0 > until.0 - 2_000_000_000 {
            asked = true;
            robot_client.fed_lookup(&mut sim, leaf_a, ServiceQuery::of_type("midas.adaptation"));
        }
    }
    assert!(events
        .iter()
        .any(|e| matches!(e, DiscoveryEvent::FedLookupDone { hops: 0, items, .. } if items.len() == 1)));
}

#[test]
fn reentering_range_rediscovers_registrar() {
    let mut w = world();
    pump(&mut w, 1_000_000_000);
    w.sim.move_node(w.robot, Position::new(500.0, 500.0));
    let events = pump(&mut w, 10_000_000_000);
    assert!(events
        .iter()
        .any(|e| matches!(e, DiscoveryEvent::RegistrarLost { .. })));

    w.sim.move_node(w.robot, Position::new(30.0, 25.0));
    let events = pump(&mut w, 3_000_000_000);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, DiscoveryEvent::RegistrarDiscovered { .. })),
        "re-announce after returning"
    );
}
