//! The weaver: the public PROSE API for attaching the AOP runtime to a
//! VM and weaving/unweaving aspects at run time.

use crate::advice::{AdviceBody, JoinPoint};
use crate::aspect::{Aspect, AspectImpl};
use crate::error::ProseError;
use crate::handle::{AspectId, AspectInfo};
use crate::runtime::{AdviceExec, AdviceRef, AspectRt, ErrorPolicy, ProseRuntime, Woven};
use pmp_telemetry::Subsystem;
use pmp_vm::perm::Permissions;
use pmp_vm::value::Value;
use pmp_vm::vm::Vm;
use std::sync::Arc;

/// Default fuel budget for script advice: generous for real extensions,
/// finite so hostile loops cannot wedge the node.
pub const DEFAULT_SCRIPT_FUEL: u64 = 1_000_000;

/// Options controlling how an aspect is woven.
#[derive(Debug, Clone, Copy)]
pub struct WeaveOptions {
    /// Permissions advice runs with (the sandbox).
    pub perms: Permissions,
    /// Fuel budget per advice execution (`None` = unlimited; script
    /// aspects received from the network should always be limited).
    pub fuel: Option<u64>,
    /// What happens when advice fails.
    pub policy: ErrorPolicy,
}

impl Default for WeaveOptions {
    fn default() -> Self {
        Self {
            perms: Permissions::all(),
            fuel: None,
            policy: ErrorPolicy::Propagate,
        }
    }
}

impl WeaveOptions {
    /// Options appropriate for a foreign (network-received) extension:
    /// explicit permissions, finite fuel, propagate errors.
    pub fn sandboxed(perms: Permissions) -> Self {
        Self {
            perms,
            fuel: Some(DEFAULT_SCRIPT_FUEL),
            policy: ErrorPolicy::Propagate,
        }
    }
}

/// The PROSE weaver attached to one VM.
///
/// # Examples
///
/// ```
/// use pmp_prose::prelude::*;
/// use pmp_vm::prelude::*;
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut vm = Vm::new(VmConfig::default());
/// vm.register_class(
///     ClassDef::build("Motor")
///         .method("rotate", [TypeSig::Int], TypeSig::Void, |b| { b.op(Op::Ret); })
///         .done(),
/// )?;
/// let prose = Prose::attach(&mut vm);
///
/// let hits = Arc::new(AtomicU32::new(0));
/// let h = hits.clone();
/// let aspect = Aspect::build("count")
///     .before("* Motor.*(..)", move |_ctx| {
///         h.fetch_add(1, Ordering::SeqCst);
///         Ok(())
///     })
///     .done()?;
/// let id = prose.weave(&mut vm, aspect, WeaveOptions::default())?;
///
/// let motor = vm.new_object("Motor")?;
/// vm.call("Motor", "rotate", motor, vec![Value::Int(30)])?;
/// assert_eq!(hits.load(Ordering::SeqCst), 1);
///
/// prose.unweave(&mut vm, id, "done")?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Prose {
    rt: Arc<ProseRuntime>,
}

impl Prose {
    /// Creates a runtime and installs it as `vm`'s dispatcher.
    pub fn attach(vm: &mut Vm) -> Prose {
        let rt = Arc::new(ProseRuntime::new());
        vm.set_dispatcher(rt.clone());
        Prose { rt }
    }

    /// Weaves `aspect` into `vm`, returning its id.
    ///
    /// For script aspects this registers the shipped class (rejecting
    /// collisions with application classes), validates the advice
    /// methods (4-parameter convention), instantiates the aspect
    /// object, and runs its `init` method if present — all under the
    /// aspect's sandbox.
    ///
    /// # Errors
    ///
    /// [`ProseError`] on malformed aspects or VM failures.
    pub fn weave(
        &self,
        vm: &mut Vm,
        aspect: Aspect,
        opts: WeaveOptions,
    ) -> Result<AspectId, ProseError> {
        let name = aspect.name.clone();
        let start = std::time::Instant::now();
        let result = self.weave_inner(vm, aspect, opts);
        self.record_op(vm, "prose.weave.latency_ns", start, "prose.weave", &name);
        result
    }

    fn weave_inner(
        &self,
        vm: &mut Vm,
        aspect: Aspect,
        opts: WeaveOptions,
    ) -> Result<AspectId, ProseError> {
        let (instance, class_name) = match &aspect.implementation {
            AspectImpl::Native => (Value::Null, None),
            AspectImpl::Script(class) => {
                let def = class
                    .to_class_def()
                    .map_err(ProseError::BadAspectClass)?;
                // Validate advice methods (including shutdown).
                let mut required: Vec<String> = crate::aspect::script_advice_methods(&aspect)
                    .keys()
                    .map(ToString::to_string)
                    .collect();
                if let Some(AdviceBody::Script { method }) = &aspect.shutdown {
                    required.push(method.to_string());
                }
                for name in required {
                    let ok = def
                        .methods
                        .iter()
                        .any(|m| m.name == name && m.params.len() == 5);
                    if !ok {
                        return Err(ProseError::MissingAdviceMethod {
                            class: class.name.clone(),
                            method: name,
                        });
                    }
                }
                // Register the class (reuse if we registered it before).
                let already_ours = self
                    .rt
                    .state
                    .lock()
                    .registered_classes
                    .contains(&class.name);
                if vm.class_id(&class.name).is_some() {
                    if !already_ours {
                        return Err(ProseError::ClassCollision(class.name.clone()));
                    }
                } else {
                    vm.register_class(def)?;
                    self.rt
                        .state
                        .lock()
                        .registered_classes
                        .insert(class.name.clone());
                }
                let instance = vm.new_object(&class.name)?;
                (instance, Some(Arc::<str>::from(class.name.as_str())))
            }
        };

        let id = {
            let mut s = self.rt.state.lock();
            let id = AspectId(s.next_id);
            s.next_id += 1;
            let rt = Arc::new(AspectRt {
                id,
                name: aspect.name.clone(),
                perms: opts.perms,
                fuel: opts.fuel,
                policy: opts.policy,
                instance: instance.clone(),
                class: class_name.clone(),
            });
            s.woven.insert(
                id.0,
                Woven {
                    rt,
                    aspect,
                    join_points: 0,
                },
            );
            id
        };

        // Run the optional init method under the sandbox.
        if let Some(class) = &class_name {
            if let Some(init_mid) = vm.method_id(class, "init") {
                if vm.method_sig(init_mid).params.is_empty() {
                    let scope = vm.begin_advice(opts.perms, opts.fuel);
                    let r = vm.invoke(init_mid, instance, vec![]);
                    vm.end_advice(scope);
                    if let Err(e) = r {
                        // Failed init: roll the weave back.
                        self.rt.state.lock().woven.remove(&id.0);
                        self.rt.rebuild(vm);
                        return Err(ProseError::Vm(e));
                    }
                }
            }
        }

        self.rt.rebuild(vm);
        Ok(id)
    }

    /// Unweaves an aspect: notifies its shutdown advice with `reason`,
    /// removes its advice from all tables, and deactivates hooks no
    /// longer needed.
    ///
    /// # Errors
    ///
    /// [`ProseError::UnknownAspect`] if the id is not woven.
    pub fn unweave(&self, vm: &mut Vm, id: AspectId, reason: &str) -> Result<(), ProseError> {
        let start = std::time::Instant::now();
        let result = self.unweave_inner(vm, id, reason);
        self.record_op(vm, "prose.unweave.latency_ns", start, "prose.unweave", reason);
        result
    }

    fn unweave_inner(&self, vm: &mut Vm, id: AspectId, reason: &str) -> Result<(), ProseError> {
        let woven = self
            .rt
            .state
            .lock()
            .woven
            .remove(&id.0)
            .ok_or(ProseError::UnknownAspect(id))?;
        // Shutdown notification (paper §3.2) — best-effort: a failing
        // shutdown handler cannot block revocation.
        if let Some(body) = &woven.aspect.shutdown {
            let exec = match body {
                AdviceBody::Native(f) => AdviceExec::Native(f.clone()),
                AdviceBody::Script { method } => AdviceExec::Script {
                    method: method.clone(),
                    resolved: crate::runtime::resolve_script(
                        vm,
                        woven.rt.class.as_deref(),
                        method,
                    ),
                },
            };
            let aref = AdviceRef {
                aspect: woven.rt.clone(),
                exec,
                priority: 0,
            };
            let jp = JoinPoint::Shutdown {
                reason: reason.to_string(),
            };
            if let Err(e) = self.rt.run_advice(vm, &aref, jp) {
                self.rt
                    .state
                    .lock()
                    .faults
                    .push(format!("aspect {} shutdown: {e}", woven.rt.name));
            }
        }
        self.rt.rebuild(vm);
        Ok(())
    }

    /// Unweaves every aspect (e.g. when a node leaves all proactive
    /// spaces).
    pub fn unweave_all(&self, vm: &mut Vm, reason: &str) {
        let ids: Vec<AspectId> = {
            let s = self.rt.state.lock();
            s.woven.keys().map(|k| AspectId(*k)).collect()
        };
        for id in ids {
            let _ = self.unweave(vm, id, reason);
        }
    }

    /// Re-matches every woven aspect against the VM's current classes.
    /// Call after registering new application classes so existing
    /// aspects extend them too (class-load-time weaving).
    pub fn refresh(&self, vm: &mut Vm) {
        self.rt.rebuild(vm);
    }

    /// Snapshot of the woven aspects.
    pub fn woven(&self) -> Vec<AspectInfo> {
        let s = self.rt.state.lock();
        s.woven
            .values()
            .map(|w| AspectInfo {
                id: w.rt.id,
                name: w.rt.name.clone(),
                join_points: w.join_points,
            })
            .collect()
    }

    /// Info for one woven aspect.
    pub fn info(&self, id: AspectId) -> Option<AspectInfo> {
        let s = self.rt.state.lock();
        s.woven.get(&id.0).map(|w| AspectInfo {
            id: w.rt.id,
            name: w.rt.name.clone(),
            join_points: w.join_points,
        })
    }

    /// Drains the fault log recorded under [`ErrorPolicy::Isolate`].
    pub fn take_faults(&self) -> Vec<String> {
        std::mem::take(&mut self.rt.state.lock().faults)
    }

    /// Analyzes the live dispatch tables for aspect interference: two
    /// active aspects writing the same field, or advising the same
    /// join point with equal priority. Run after a weave (or
    /// [`Prose::refresh`]) — the tables, not the patterns, are the
    /// ground truth of what fires where.
    pub fn interference_report(&self, vm: &Vm) -> Vec<crate::interference::Interference> {
        let s = self.rt.state.lock();
        crate::interference::report(&s, vm)
    }

    /// Records one weave/unweave operation into the VM's telemetry:
    /// wall-time latency histogram, the active-aspect gauge, and a
    /// journal event naming the aspect (or reason).
    fn record_op(
        &self,
        vm: &mut Vm,
        histogram: &str,
        start: std::time::Instant,
        event: &str,
        detail: &str,
    ) {
        let active = self.rt.state.lock().woven.len() as i64;
        let dur = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let t = vm.telemetry_mut();
        let h = t.registry.histogram(histogram);
        t.registry.record(h, dur);
        let g = t.registry.gauge("prose.aspects.active");
        t.registry.set_gauge(g, active);
        t.journal
            .event(Subsystem::Prose, event, detail.to_string());
    }
}
