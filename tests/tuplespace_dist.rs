//! The paper's future work, implemented and tested: distributing signed
//! extensions through a Linda-style tuple space instead of the
//! base-push protocol (§4.6: "we are looking at tuple spaces to get a
//! more flexible and expressive platform for distributing extensions").
//!
//! The base `out`s `("ext", id, version, signed-bytes)` tuples; a
//! newcomer subscribes to `("ext", *, *, *)` and weaves whatever the
//! space pushes — after the same trust verification and sandboxing as
//! the MIDAS path.

use pmp::crypto::{KeyPair, Principal};
use pmp::extensions;
use pmp::midas::{ReceiverPolicy, SignedExtension};
use pmp::net::prelude::*;
use pmp::prose::{Prose, WeaveOptions};
use pmp::tuplespace::{Field, Pattern, PatternField, SpaceClient, SpaceEvent, Tuple, TupleSpace};
use pmp::vm::prelude::*;

const SEC: u64 = 1_000_000_000;

fn ext_tuple(ext: &SignedExtension) -> Tuple {
    let pkg = ext.open().expect("sealed by us");
    Tuple::new(vec![
        "ext".into(),
        Field::Str(pkg.meta.id.clone()),
        Field::Int(i64::from(pkg.meta.version)),
        Field::Bytes(pmp_wire::to_bytes(ext)),
    ])
}

fn ext_pattern() -> Pattern {
    Pattern::new(vec![
        PatternField::Exact("ext".into()),
        PatternField::AnyStr,
        PatternField::AnyInt,
        PatternField::AnyBytes,
    ])
}

#[test]
fn extensions_flow_through_the_tuple_space() {
    let mut sim = Simulator::new(61);
    let space_node = sim.add_node("space", Position::new(0.0, 0.0), 60.0);
    let device_node = sim.add_node("pda:1", Position::new(10.0, 0.0), 60.0);
    let mut space = TupleSpace::new(space_node);
    let mut client = SpaceClient::new(device_node, space_node);

    // The hall authority publishes its extensions into the space.
    let authority = KeyPair::from_seed(b"authority:space-hall");
    let enc = extensions::encryption::package(0x3C, 1);
    let sealed = SignedExtension::seal("authority:space-hall", &authority, &enc);
    space.out_local(&mut sim, ext_tuple(&sealed));
    assert_eq!(space.len(), 1);

    // The device's application + receiver-side policy.
    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Radio")
            .method("sendPacket", [TypeSig::Bytes], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    let prose = Prose::attach(&mut vm);
    let mut policy = ReceiverPolicy::new();
    policy
        .trust
        .add(Principal::new("authority:space-hall", authority.public_key()));
    policy.set_signer_cap("authority:space-hall", Permissions::none());

    // Subscribe: present tuples are replayed, future ones pushed.
    client.subscribe(&mut sim, ext_pattern());

    let mut installed: Vec<String> = Vec::new();
    let until = sim.now().plus(5 * SEC);
    loop {
        match sim.peek_next() {
            Some(t) if t <= until => {
                sim.step();
            }
            _ => break,
        }
        for inc in sim.drain_inbox(space_node) {
            space.handle(&mut sim, &inc);
        }
        for inc in sim.drain_inbox(device_node) {
            for ev in client.handle(&inc) {
                let SpaceEvent::Notified { tuple, .. } = ev else {
                    continue;
                };
                // Same pipeline as MIDAS: decode → verify trust → cap
                // permissions → weave in the sandbox.
                let Some(Field::Bytes(raw)) = tuple.get(3) else {
                    continue;
                };
                let sealed: SignedExtension = pmp_wire::from_bytes(raw).unwrap();
                let pkg = sealed
                    .verify_and_open(&policy.trust)
                    .expect("trusted signer");
                let perms = policy.effective(sealed.signer(), &pkg.meta.permissions);
                prose
                    .weave(&mut vm, pkg.aspect.into(), WeaveOptions::sandboxed(perms))
                    .expect("weave");
                installed.push(pkg.meta.id);
            }
        }
    }

    assert_eq!(installed, vec!["ext/encryption".to_string()]);
    // The extension delivered through the space really intercepts.
    let radio = vm.new_object("Radio").unwrap();
    let buf = vm.new_buffer(vec![0, 0]);
    let id = buf.as_ref_id().unwrap();
    vm.call("Radio", "sendPacket", radio, vec![buf]).unwrap();
    assert_eq!(vm.heap().buffer_bytes(id).unwrap(), &[0x3C, 0x3C]);
}

#[test]
fn untrusted_tuples_are_rejected_by_the_same_policy() {
    let mut sim = Simulator::new(62);
    let space_node = sim.add_node("space", Position::new(0.0, 0.0), 60.0);
    let device_node = sim.add_node("pda:1", Position::new(10.0, 0.0), 60.0);
    let mut space = TupleSpace::new(space_node);
    let mut client = SpaceClient::new(device_node, space_node);

    // Mallory floods the space with a forged extension.
    let mallory = KeyPair::from_seed(b"mallory");
    let evil = extensions::encryption::package(0xFF, 9);
    let sealed = SignedExtension::seal("authority:space-hall", &mallory, &evil);
    space.out_local(&mut sim, ext_tuple(&sealed));

    let trusted = KeyPair::from_seed(b"authority:space-hall");
    let mut policy = ReceiverPolicy::new();
    policy
        .trust
        .add(Principal::new("authority:space-hall", trusted.public_key()));

    client.subscribe(&mut sim, ext_pattern());
    let mut rejections = 0;
    let until = sim.now().plus(3 * SEC);
    loop {
        match sim.peek_next() {
            Some(t) if t <= until => {
                sim.step();
            }
            _ => break,
        }
        for inc in sim.drain_inbox(space_node) {
            space.handle(&mut sim, &inc);
        }
        for inc in sim.drain_inbox(device_node) {
            for ev in client.handle(&inc) {
                if let SpaceEvent::Notified { tuple, .. } = ev {
                    let Some(Field::Bytes(raw)) = tuple.get(3) else {
                        continue;
                    };
                    let sealed: SignedExtension = pmp_wire::from_bytes(raw).unwrap();
                    if sealed.verify_and_open(&policy.trust).is_err() {
                        rejections += 1;
                    }
                }
            }
        }
    }
    assert_eq!(rejections, 1, "forged signature caught before weaving");
}
