//! # pmp-telemetry — unified metrics + event journal for the platform
//!
//! The paper's headline results (≈7 % baseline stub overhead, ≈900 ns
//! per interception) are *measurements*; this crate is the single
//! substrate every layer reports through so those numbers — and every
//! future performance claim — come from one pipeline:
//!
//! * [`Registry`] — named counters, gauges, and fixed-bucket latency
//!   histograms (p50/p90/p99 readout). Updates are plain `u64`/array
//!   bumps behind `&mut`: cheap enough for the single-threaded VM
//!   interpreter hot path, no atomics.
//! * [`Journal`] — a structured event log (`span_begin`/`span_end`/
//!   `event`) stamped with sim-time from an injected clock, with a
//!   ring-buffer cap and per-[`Subsystem`] enable flags.
//! * [`export`] — deterministic text-table and JSON-lines renderers
//!   (canonical formatting: same state, same bytes, like `pmp-wire`).
//! * [`sync`] — tiny `std::sync` wrappers with a `parking_lot`-style
//!   API (`lock()` returns the guard directly), keeping the workspace
//!   free of external dependencies so it builds fully offline.
//!
//! Metric names follow `<crate>.<subsystem>.<name>`, e.g.
//! `vm.hooks.checks` or `net.sim.delivered` (see DESIGN.md
//! "Observability").
//!
//! Single-owner components (the VM) embed a [`Telemetry`] directly and
//! bump pre-registered ids; multi-party components (the simulator, the
//! MIDAS base/receiver pair) share one via [`Shared`].

pub mod digest;
pub mod export;
pub mod journal;
pub mod registry;
pub mod sink;
pub mod sync;

pub use digest::Fnv64;
pub use journal::{Event, EventKind, Journal, SpanToken, Subsystem};
pub use registry::{CounterId, GaugeId, Histogram, HistogramId, Registry, MISSES_COUNTER};
pub use sink::{PendingEvent, Sink};

use std::sync::Arc;

/// An injected time source returning nanoseconds of sim-time (or any
/// monotonically non-decreasing `u64`). `pmp-net`'s `ClockHandle`
/// produces one with `Arc::new(move || clock.now().0)`.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Default journal ring-buffer capacity.
pub const DEFAULT_JOURNAL_CAP: usize = 1024;

/// A registry + journal pair: the full telemetry state of one component.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Counters, gauges, histograms.
    pub registry: Registry,
    /// The structured event journal.
    pub journal: Journal,
}

impl Telemetry {
    /// An empty telemetry with the default journal capacity.
    #[must_use]
    pub fn new() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_JOURNAL_CAP)
    }

    /// An empty telemetry whose journal keeps at most `cap` events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Telemetry {
        Telemetry {
            registry: Registry::new(),
            journal: Journal::new(cap),
        }
    }

    /// Installs the time source used to stamp journal events.
    pub fn set_clock(&mut self, clock: Clock) {
        self.journal.set_clock(clock);
    }

    /// Zeroes every metric and clears the journal; registrations and
    /// enable flags survive.
    pub fn reset(&mut self) {
        self.registry.reset();
        self.journal.clear();
    }

    /// The metrics rendered as an aligned text table.
    #[must_use]
    pub fn render_table(&self) -> String {
        export::render_table(&self.registry)
    }

    /// The full state (metrics + journal) as JSON lines.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        export::to_json_lines(self)
    }
}

/// A cloneable, lock-protected [`Telemetry`] for components that span
/// several owners (simulator + base stations + receivers all feeding
/// one per-platform registry).
#[derive(Clone, Debug, Default)]
pub struct Shared {
    inner: Arc<sync::Mutex<Telemetry>>,
}

impl Shared {
    /// A fresh shared telemetry with the default journal capacity.
    #[must_use]
    pub fn new() -> Shared {
        Shared::with_capacity(DEFAULT_JOURNAL_CAP)
    }

    /// A fresh shared telemetry whose journal keeps at most `cap` events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Shared {
        Shared {
            inner: Arc::new(sync::Mutex::new(Telemetry::with_capacity(cap))),
        }
    }

    /// Locks and returns the guarded telemetry.
    pub fn lock(&self) -> sync::MutexGuard<'_, Telemetry> {
        self.inner.lock()
    }

    /// Runs `f` with the telemetry locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut Telemetry) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Installs the journal time source.
    pub fn set_clock(&self, clock: Clock) {
        self.inner.lock().set_clock(clock);
    }

    /// Bumps the named counter by 1 (registering it on first use).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Bumps the named counter by `n` (registering it on first use).
    pub fn add(&self, name: &str, n: u64) {
        let mut t = self.inner.lock();
        let id = t.registry.counter(name);
        t.registry.add(id, n);
    }

    /// Records `value` into the named histogram (registering it on
    /// first use).
    pub fn record(&self, name: &str, value: u64) {
        let mut t = self.inner.lock();
        let id = t.registry.histogram(name);
        t.registry.record(id, value);
    }

    /// Current value of the named counter (0 when unregistered).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.lock().registry.counter_value(name)
    }

    /// Current value of the named gauge (0 when unregistered).
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.inner.lock().registry.gauge_value(name)
    }

    /// Appends a point event to the journal.
    pub fn event(&self, sub: Subsystem, name: &str, detail: impl Into<String>) {
        self.inner.lock().journal.event(sub, name, detail);
    }

    /// Appends a point event with an explicit timestamp (barrier merge
    /// of buffered cell events; see [`sink::Sink`]).
    pub fn event_at(&self, at: u64, sub: Subsystem, name: &str, detail: impl Into<String>) {
        self.inner.lock().journal.event_at(at, sub, name, detail);
    }

    /// Stable digest of the journal (see [`Journal::digest`]).
    #[must_use]
    pub fn journal_digest(&self) -> u64 {
        self.inner.lock().journal.digest()
    }

    /// The metrics rendered as an aligned text table.
    #[must_use]
    pub fn render_table(&self) -> String {
        self.inner.lock().render_table()
    }

    /// The full state as JSON lines.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        self.inner.lock().to_json_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn shared_counters_by_name() {
        let t = Shared::new();
        t.inc("net.sim.sent");
        t.add("net.sim.sent", 2);
        assert_eq!(t.counter_value("net.sim.sent"), 3);
        assert_eq!(t.counter_value("net.sim.unknown"), 0);
    }

    #[test]
    fn reset_preserves_registrations() {
        let mut t = Telemetry::new();
        let c = t.registry.counter("a.b.c");
        t.registry.add(c, 7);
        t.journal.event(Subsystem::Core, "x", "");
        t.reset();
        assert_eq!(t.registry.counter_value("a.b.c"), 0);
        assert_eq!(t.journal.len(), 0);
        // The id survives the reset.
        t.registry.add(c, 1);
        assert_eq!(t.registry.counter_value("a.b.c"), 1);
    }

    #[test]
    fn shared_clock_stamps_events() {
        let now = Arc::new(AtomicU64::new(42));
        let n2 = now.clone();
        let t = Shared::new();
        t.set_clock(Arc::new(move || n2.load(Ordering::Relaxed)));
        t.event(Subsystem::Net, "tick", "");
        now.store(99, Ordering::Relaxed);
        t.event(Subsystem::Net, "tock", "");
        let ats: Vec<u64> = t.lock().journal.events().map(|e| e.at).collect();
        assert_eq!(ats, vec![42, 99]);
    }
}
