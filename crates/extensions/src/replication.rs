//! The remote-replication extension (paper §4.5): "monitor all the
//! moves and feed them to an identical robot in a remote location" —
//! the monitoring aspect pointed at the `replicate.post` sink, plus the
//! host-side mirror that drives a second robot (optionally scaled).

use crate::monitoring;
use pmp_midas::ExtensionPackage;
use pmp_store::MovementRecord;
use pmp_vm::prelude::{Value, Vm, VmError};
use std::collections::HashMap;

/// Extension id.
pub const ID: &str = "ext/replication";

/// Builds the replication package: every motor action is posted to
/// `replicate.post`.
pub fn package(version: u32) -> ExtensionPackage {
    let mut pkg = monitoring::package_with_sink("replication", "replicate.post", version);
    pkg.meta.description =
        "mirrors every motor action to a replica robot via replicate.post".into();
    pkg
}

/// Host-side mirror: applies one recorded movement to a replica robot's
/// motor proxies, scaled by `num/den` (paper: replication "at a scale
/// different from what is being done by the original robot").
///
/// `motors` maps device names (`"motor:A"`) to `Motor` proxy objects in
/// the replica's VM.
///
/// # Errors
///
/// Any [`VmError`] from the replica's motor proxies.
///
/// # Panics
///
/// Panics if `den == 0`.
pub fn mirror_record(
    vm: &mut Vm,
    motors: &HashMap<String, Value>,
    record: &MovementRecord,
    num: i64,
    den: i64,
) -> Result<(), VmError> {
    assert!(den != 0, "scale denominator must be nonzero");
    let Some(motor) = motors.get(&record.device) else {
        return Ok(()); // device not present on the replica
    };
    match record.command.as_str() {
        "Motor.rotate" | "rotate" => {
            let deg = record.args.first().copied().unwrap_or(0) * num / den;
            vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(deg)])?;
        }
        "Motor.setPower" | "setPower" => {
            let p = record.args.first().copied().unwrap_or(7);
            vm.call("Motor", "setPower", motor.clone(), vec![Value::Int(p)])?;
        }
        "Motor.stop" | "stop" => {
            vm.call("Motor", "stop", motor.clone(), vec![])?;
        }
        _ => {}
    }
    Ok(())
}

/// Replays a whole movement log onto a replica (see
/// [`mirror_record`]); returns how many records were applied.
///
/// # Errors
///
/// Any [`VmError`] from the replica's motor proxies.
pub fn mirror_log(
    vm: &mut Vm,
    motors: &HashMap<String, Value>,
    records: &[MovementRecord],
    num: i64,
    den: i64,
) -> Result<usize, VmError> {
    let mut applied = 0;
    for r in records {
        if motors.contains_key(&r.device) {
            mirror_record(vm, motors, r, num, den)?;
            applied += 1;
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_robot::{new_handle, register_robot_classes, spawn_motor, Port};
    use pmp_vm::prelude::*;

    fn replica() -> (Vm, pmp_robot::RobotHandle, HashMap<String, Value>) {
        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        let mut motors = HashMap::new();
        for port in Port::MOTORS {
            let m = spawn_motor(&mut vm, port).unwrap();
            motors.insert(format!("motor:{port}"), m);
        }
        (vm, handle, motors)
    }

    fn rec(device: &str, command: &str, arg: i64) -> MovementRecord {
        MovementRecord {
            robot: "robot:1:1".into(),
            device: device.into(),
            command: command.into(),
            args: vec![arg],
            issued_at: 0,
            duration_ns: 0,
        }
    }

    #[test]
    fn mirroring_reproduces_motor_positions() {
        let (mut vm, handle, motors) = replica();
        let log = vec![
            rec("motor:C", "Motor.rotate", 90),
            rec("motor:A", "Motor.rotate", 10),
            rec("motor:B", "Motor.rotate", 5),
        ];
        let applied = mirror_log(&mut vm, &motors, &log, 1, 1).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(handle.lock().position(), (10, 5));
        assert!(handle.lock().is_pen_down());
    }

    #[test]
    fn scaled_mirroring_amplifies() {
        let (mut vm, handle, motors) = replica();
        mirror_record(&mut vm, &motors, &rec("motor:A", "Motor.rotate", 10), 3, 1).unwrap();
        assert_eq!(handle.lock().position(), (30, 0));
    }

    #[test]
    fn unknown_devices_are_skipped() {
        let (mut vm, handle, motors) = replica();
        let applied =
            mirror_log(&mut vm, &motors, &[rec("laser:Z", "fire", 1)], 1, 1).unwrap();
        assert_eq!(applied, 0);
        assert_eq!(handle.lock().position(), (0, 0));
    }
}
