//! The `.repro` format: a committed, replayable failure.
//!
//! A repro file is a magic line followed by the pmp-wire encoding of
//! the (usually minimized) [`Scenario`]. The format is deliberately
//! dumb: no compression, no metadata, no versioned envelope beyond the
//! magic — the scenario encoding *is* the contract, and the decode-fuzz
//! suite pins its error behaviour. `tests/chaos_repros.rs` replays
//! every committed file under both drivers on every CI run.
//!
//! Two versions exist. `v1` is scenario-only. `v2` appends the
//! per-node flight-recorder dumps captured at the moment the oracle
//! fired, so a repro carries not just *how to reproduce* the failure
//! but *what each node saw* leading up to it. [`load`] accepts both;
//! [`load_full`] additionally surfaces the flight dumps (empty for a
//! `v1` file).

use crate::script::Scenario;
use pmp_trace::FlightEntry;
use pmp_wire::{to_bytes, Reader, Wire, Writer};

/// Per-node flight dumps as captured by the executor: `(sim node id,
/// ring contents oldest-first)`, bases first, then mobiles.
pub type FlightDump = Vec<(u32, Vec<FlightEntry>)>;

/// First bytes of a scenario-only repro file (includes a trailing
/// newline so the file starts with a readable line).
pub const MAGIC: &[u8] = b"pmp-chaos-repro v1\n";

/// First bytes of a repro file that also carries flight dumps.
pub const MAGIC_V2: &[u8] = b"pmp-chaos-repro v2\n";

/// Serializes a scenario into `v1` repro bytes (no flight dumps).
#[must_use]
pub fn save(sc: &Scenario) -> Vec<u8> {
    let mut out = Vec::from(MAGIC);
    out.extend_from_slice(&to_bytes(sc));
    out
}

/// Serializes a scenario plus the flight-recorder dumps into `v2`
/// repro bytes.
#[must_use]
pub fn save_with_flight(sc: &Scenario, flight: &FlightDump) -> Vec<u8> {
    let mut w = Writer::new();
    sc.encode(&mut w);
    flight.encode(&mut w);
    let mut out = Vec::from(MAGIC_V2);
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Parses repro bytes back into a scenario, accepting both versions.
/// Rejects a missing magic, a decode failure, and trailing garbage —
/// a repro that does not parse exactly is a repro that cannot be
/// trusted.
pub fn load(bytes: &[u8]) -> Result<Scenario, String> {
    load_full(bytes).map(|(sc, _)| sc)
}

/// Parses repro bytes back into a scenario plus its flight dumps
/// (empty for a `v1` file). Same strictness as [`load`].
pub fn load_full(bytes: &[u8]) -> Result<(Scenario, FlightDump), String> {
    let (body, v2) = if let Some(body) = bytes.strip_prefix(MAGIC_V2) {
        (body, true)
    } else if let Some(body) = bytes.strip_prefix(MAGIC) {
        (body, false)
    } else {
        return Err("not a pmp-chaos repro (bad magic)".to_string());
    };
    let mut r = Reader::new(body);
    let sc = Scenario::decode(&mut r).map_err(|e| format!("repro body did not decode: {e}"))?;
    let flight = if v2 {
        FlightDump::decode(&mut r).map_err(|e| format!("repro flight did not decode: {e}"))?
    } else {
        FlightDump::new()
    };
    r.finish()
        .map_err(|e| format!("repro has trailing bytes: {e}"))?;
    // Re-encode equality is the stronger self-check that the file is
    // canonical.
    let canonical = if v2 {
        let mut w = Writer::new();
        sc.encode(&mut w);
        flight.encode(&mut w);
        w.into_bytes()
    } else {
        to_bytes(&sc)
    };
    if canonical != body {
        return Err("repro body is not in canonical encoding".to_string());
    }
    Ok((sc, flight))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn save_load_roundtrips() {
        let sc = generate(5, &GenConfig::default());
        let bytes = save(&sc);
        assert_eq!(load(&bytes).unwrap(), sc);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load(b"something else").unwrap_err();
        assert!(err.contains("bad magic"), "{err}");
    }

    #[test]
    fn truncated_body_is_rejected() {
        let sc = generate(5, &GenConfig::default());
        let bytes = save(&sc);
        let err = load(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.contains("did not decode"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let sc = generate(5, &GenConfig::default());
        let mut bytes = save(&sc);
        bytes.push(0);
        assert!(load(&bytes).is_err());
    }

    fn sample_flight() -> FlightDump {
        vec![
            (
                0,
                vec![
                    FlightEntry::Span(pmp_trace::SpanRecord {
                        trace_id: (7 << 32) | 1,
                        span_id: (7 << 32) | 2,
                        parent_id: (7 << 32) | 1,
                        node: 7,
                        start: 1_000,
                        end: 1_000,
                        name: "midas.ship".to_string(),
                        detail: "logger:1".to_string(),
                    }),
                    FlightEntry::Event {
                        at: 2_000,
                        name: "journal".to_string(),
                        detail: "install.ok logger:1".to_string(),
                    },
                ],
            ),
            (3, Vec::new()),
        ]
    }

    #[test]
    fn v2_roundtrips_scenario_and_flight() {
        let sc = generate(9, &GenConfig::default());
        let flight = sample_flight();
        let bytes = save_with_flight(&sc, &flight);
        assert!(bytes.starts_with(MAGIC_V2));
        let (sc2, flight2) = load_full(&bytes).unwrap();
        assert_eq!(sc2, sc);
        assert_eq!(flight2, flight);
        // Version-agnostic load still hands back the scenario alone.
        assert_eq!(load(&bytes).unwrap(), sc);
    }

    #[test]
    fn v1_still_loads_with_empty_flight() {
        let sc = generate(5, &GenConfig::default());
        let (sc2, flight) = load_full(&save(&sc)).unwrap();
        assert_eq!(sc2, sc);
        assert!(flight.is_empty());
    }

    #[test]
    fn v2_trailing_garbage_is_rejected() {
        let sc = generate(5, &GenConfig::default());
        let mut bytes = save_with_flight(&sc, &sample_flight());
        bytes.push(0);
        assert!(load_full(&bytes).is_err());
    }
}
