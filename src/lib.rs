//! # pmp — a Proactive Middleware Platform for Mobile Computing
//!
//! Umbrella crate re-exporting the whole platform: a Rust reproduction of
//! the PROSE dynamic-AOP engine and the MIDAS extension-management
//! middleware described in *A Proactive Middleware Platform for Mobile
//! Computing* (Popovici, Frei, Alonso — Middleware 2003), together with
//! every substrate the paper depends on (managed runtime, wireless network
//! simulator, Jini-like discovery, crypto, robot hardware, storage).
//!
//! Start with [`core`]'s `Platform`, or run the examples:
//!
//! ```bash
//! cargo run --example quickstart
//! cargo run --example production_hall
//! cargo run --example plotter_monitoring
//! cargo run --example adhoc_peers
//! ```

pub use pmp_analyze as analyze;
pub use pmp_chaos as chaos;
pub use pmp_core as core;
pub use pmp_crypto as crypto;
pub use pmp_discovery as discovery;
pub use pmp_durable as durable;
pub use pmp_extensions as extensions;
pub use pmp_midas as midas;
pub use pmp_net as net;
pub use pmp_prose as prose;
pub use pmp_robot as robot;
pub use pmp_spec as spec;
pub use pmp_store as store;
pub use pmp_stream as stream;
pub use pmp_telemetry as telemetry;
pub use pmp_trace as trace;
pub use pmp_tuplespace as tuplespace;
pub use pmp_vm as vm;
pub use pmp_wire as wire;
