//! The directory tier: hierarchical registrar federation.
//!
//! A flat registrar answers lookups from its own lease table only. At
//! city scale (ROADMAP: thousands of bases) that either floods every
//! registrar with every registration or forces clients to query each
//! base in turn. The directory tier instead arranges registrars in a
//! tree: every registrar keeps serving its hall locally, and
//! additionally *advertises* the set of service types reachable in its
//! subtree to its parent ([`crate::DiscoveryMsg::DirAdvertise`]).
//! A federated lookup ([`crate::DiscoveryMsg::FedLookup`]) then walks
//! the tree — down a matching route if one is advertised, up to the
//! parent otherwise — and the answering registrar replies *directly*
//! to the origin node, so the reply does not retrace the path. With
//! branching factor B the route takes O(log_B n) registrar hops, which
//! is the sublinear-lookup half of experiment E17.
//!
//! Advertisements are aggregates (type names, not items) and are sent
//! only on change, so a quiet federation exchanges no directory
//! traffic at all — the gossip cost is proportional to churn, not to
//! fleet size.

use pmp_net::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Forwarding ceiling for a federated lookup: queries older than this
/// many registrar-to-registrar hops answer empty rather than loop.
pub const MAX_HOPS: u16 = 16;

/// Per-registrar directory state: its place in the federation tree and
/// the routes learned from child advertisements.
#[derive(Debug, Default)]
pub struct Directory {
    parent: Option<NodeId>,
    children: BTreeSet<NodeId>,
    /// service type → children whose subtrees advertise it.
    routes: BTreeMap<String, BTreeSet<NodeId>>,
    /// The advert last pushed to the parent (dedupe on change only).
    last_advert: Option<Vec<String>>,
}

impl Directory {
    /// A directory with no parent, children, or routes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Points this registrar at its parent in the federation tree.
    pub fn set_parent(&mut self, parent: NodeId) {
        self.parent = Some(parent);
        // Force a (re-)advertisement even if the reachable set is
        // unchanged: the new parent has never heard it.
        self.last_advert = None;
    }

    /// The parent registrar, if federated.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Registers `child` as a subtree (idempotent).
    pub fn add_child(&mut self, child: NodeId) {
        self.children.insert(child);
    }

    /// Child registrars, sorted by node id.
    pub fn children(&self) -> Vec<NodeId> {
        self.children.iter().copied().collect()
    }

    /// True when this registrar is wired into a federation tree.
    pub fn is_federated(&self) -> bool {
        self.parent.is_some() || !self.children.is_empty()
    }

    /// Absorbs a child's advertisement: `types` replaces everything
    /// previously routed through `child`. Returns `true` when the set
    /// of reachable types changed (so the host should re-advertise).
    pub fn learn(&mut self, child: NodeId, types: &[String]) -> bool {
        self.children.insert(child);
        let before: BTreeSet<String> = self.routes.keys().cloned().collect();
        self.routes.retain(|_, members| {
            members.remove(&child);
            !members.is_empty()
        });
        for ty in types {
            self.routes
                .entry(ty.clone())
                .or_default()
                .insert(child);
        }
        let after: BTreeSet<String> = self.routes.keys().cloned().collect();
        before != after
    }

    /// The lowest-id child (other than `exclude`) whose subtree
    /// advertises `ty`.
    pub fn route_for(&self, ty: &str, exclude: NodeId) -> Option<NodeId> {
        self.routes
            .get(ty)?
            .iter()
            .find(|n| **n != exclude)
            .copied()
    }

    /// Computes the advert for the parent — the sorted union of
    /// `local` types and every routed type — and returns it only when
    /// it differs from the last one sent.
    pub fn advert_if_changed(&mut self, local: BTreeSet<String>) -> Option<Vec<String>> {
        let mut all = local;
        all.extend(self.routes.keys().cloned());
        let advert: Vec<String> = all.into_iter().collect();
        if self.last_advert.as_ref() == Some(&advert) {
            return None;
        }
        self.last_advert = Some(advert.clone());
        Some(advert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32) -> NodeId {
        NodeId(id)
    }

    #[test]
    fn learn_replaces_a_childs_routes() {
        let mut d = Directory::new();
        assert!(d.learn(n(5), &["print".into(), "scan".into()]));
        assert_eq!(d.route_for("print", n(99)), Some(n(5)));
        // Re-advertise without "scan": the stale route disappears.
        assert!(d.learn(n(5), &["print".into()]));
        assert_eq!(d.route_for("scan", n(99)), None);
        assert_eq!(d.route_for("print", n(99)), Some(n(5)));
    }

    #[test]
    fn route_for_skips_the_excluded_child() {
        let mut d = Directory::new();
        d.learn(n(3), &["print".into()]);
        d.learn(n(7), &["print".into()]);
        assert_eq!(d.route_for("print", n(99)), Some(n(3)));
        assert_eq!(d.route_for("print", n(3)), Some(n(7)));
    }

    #[test]
    fn advert_dedupes_until_something_changes() {
        let mut d = Directory::new();
        d.set_parent(n(1));
        let local: BTreeSet<String> = ["midas.adaptation".to_string()].into();
        assert_eq!(
            d.advert_if_changed(local.clone()),
            Some(vec!["midas.adaptation".to_string()])
        );
        assert_eq!(d.advert_if_changed(local.clone()), None);
        d.learn(n(4), &["print".into()]);
        assert_eq!(
            d.advert_if_changed(local.clone()),
            Some(vec!["midas.adaptation".to_string(), "print".to_string()])
        );
        // Re-parenting forces a fresh advert to the new parent.
        d.set_parent(n(2));
        assert!(d.advert_if_changed(local).is_some());
    }
}
