//! The space server: the bag of tuples plus subscriptions.

use crate::durable::SpaceWalOp;
use crate::proto::{SpaceMsg, CHANNEL};
use crate::tuple::{Pattern, Tuple};
use pmp_durable::NamespaceHandle;
use pmp_net::{Incoming, NodeId, Simulator};
use pmp_trace::{TraceCtx, Traced};

#[derive(Debug)]
struct Subscription {
    owner: NodeId,
    sub: u64,
    pattern: Pattern,
}

/// A tuple space hosted on one node. Drive it by passing every
/// [`Incoming`] of its host node to [`TupleSpace::handle`].
#[derive(Debug)]
pub struct TupleSpace {
    node: NodeId,
    pub(crate) tuples: Vec<Tuple>,
    subs: Vec<Subscription>,
    durable: Option<NamespaceHandle>,
}

impl TupleSpace {
    /// Creates an empty space on `node`.
    pub fn new(node: NodeId) -> Self {
        Self {
            node,
            tuples: Vec::new(),
            subs: Vec::new(),
            durable: None,
        }
    }

    /// Logs every deposit and withdrawal to `handle`'s WAL namespace,
    /// making the bag of tuples crash-recoverable (subscriptions are
    /// session state and are not logged — clients re-subscribe).
    pub fn attach_durable(&mut self, handle: NamespaceHandle) {
        self.durable = Some(handle);
    }

    fn log(&self, op: &SpaceWalOp) {
        if let Some(d) = &self.durable {
            d.append(pmp_wire::to_bytes(op));
        }
    }

    /// Number of tuples currently in the space.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` if the space holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Deposits a tuple locally (host-side `out`, no network hop) and
    /// pushes notifications to matching subscribers.
    pub fn out_local(&mut self, sim: &mut Simulator, tuple: Tuple) {
        self.out_with(sim, tuple, TraceCtx::NIL);
    }

    /// `out` with the depositing request's trace context: notifications
    /// triggered by the deposit inherit its causal position.
    fn out_with(&mut self, sim: &mut Simulator, tuple: Tuple, ctx: TraceCtx) {
        for s in &self.subs {
            if s.pattern.matches(&tuple) {
                let msg = SpaceMsg::Notify {
                    sub: s.sub,
                    tuple: tuple.clone(),
                };
                sim.send(self.node, s.owner, CHANNEL, ctx.wrap(&msg));
            }
        }
        self.log(&SpaceWalOp::Out {
            tuple: tuple.clone(),
        });
        self.tuples.push(tuple);
    }

    fn find(&self, pattern: &Pattern) -> Option<usize> {
        self.tuples.iter().position(|t| pattern.matches(t))
    }

    /// Processes one inbox entry of the host node.
    pub fn handle(&mut self, sim: &mut Simulator, incoming: &Incoming) {
        let Incoming::Message {
            from,
            channel,
            payload,
            ..
        } = incoming
        else {
            return;
        };
        if &**channel != CHANNEL {
            return;
        }
        let Ok(env) = pmp_wire::from_bytes::<Traced<SpaceMsg>>(payload) else {
            return;
        };
        let ctx = env.ctx;
        match env.msg {
            SpaceMsg::Out { tuple } => self.out_with(sim, tuple, ctx),
            SpaceMsg::Rd { pattern, req } => {
                let tuple = self.find(&pattern).map(|i| self.tuples[i].clone());
                let reply = SpaceMsg::Result { req, tuple };
                sim.send(self.node, *from, CHANNEL, ctx.wrap(&reply));
            }
            SpaceMsg::In { pattern, req } => {
                let tuple = self.find(&pattern).map(|i| {
                    self.log(&SpaceWalOp::Take { index: i as u64 });
                    self.tuples.remove(i)
                });
                let reply = SpaceMsg::Result { req, tuple };
                sim.send(self.node, *from, CHANNEL, ctx.wrap(&reply));
            }
            SpaceMsg::Subscribe { pattern, sub } => {
                // Replay matching existing tuples, then remember.
                for t in self.tuples.iter().filter(|t| pattern.matches(t)) {
                    let msg = SpaceMsg::Notify {
                        sub,
                        tuple: t.clone(),
                    };
                    sim.send(self.node, *from, CHANNEL, ctx.wrap(&msg));
                }
                self.subs.push(Subscription {
                    owner: *from,
                    sub,
                    pattern,
                });
            }
            SpaceMsg::Unsubscribe { sub } => {
                self.subs.retain(|s| !(s.owner == *from && s.sub == sub));
            }
            // Client-bound messages are ignored by the server.
            SpaceMsg::Result { .. } | SpaceMsg::Notify { .. } => {}
        }
    }
}
