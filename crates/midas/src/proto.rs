//! The MIDAS wire protocol, carried on the `"midas"` channel.

use crate::package::SignedExtension;
use pmp_wire::{Reader, Wire, WireError, Writer};

/// Channel name for all MIDAS traffic.
pub const CHANNEL: &str = "midas";

/// A MIDAS protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum MidasMsg {
    /// Base → receiver: install this extension under a lease.
    Deliver {
        /// The signed extension.
        ext: SignedExtension,
        /// Lease duration (ns); the base keeps it alive with
        /// [`MidasMsg::LeaseRenew`].
        lease_ns: u64,
        /// Grant id, unique per base; names this lease.
        grant: u64,
    },
    /// Receiver → base: installation result.
    Ack {
        /// The extension id.
        ext_id: String,
        /// The grant being answered.
        grant: u64,
        /// Whether installation succeeded.
        ok: bool,
        /// Failure reason when `ok` is false.
        reason: String,
    },
    /// Base → receiver: keep the grant alive (the paper: "it is the
    /// responsibility of each extension base to keep alive the
    /// functionality it has distributed").
    LeaseRenew {
        /// The grant to refresh.
        grant: u64,
    },
    /// Base → receiver: withdraw an extension now.
    Revoke {
        /// The extension id.
        ext_id: String,
        /// Why (surfaced to the extension's shutdown procedure).
        reason: String,
    },
    /// Base → receiver: atomically replace `old_id` with a new
    /// extension (local policy evolved).
    Replace {
        /// The id being replaced.
        old_id: String,
        /// The replacement.
        ext: SignedExtension,
        /// Lease duration for the replacement (ns).
        lease_ns: u64,
        /// Grant id for the replacement.
        grant: u64,
    },
    /// Receiver → base: a delivered extension requires `ext_id` but it
    /// is not installed; please deliver it.
    RequestDep {
        /// The missing dependency id.
        ext_id: String,
    },
    /// Base → base: a node this base had adapted left towards your
    /// area (the paper's "simple roaming algorithm").
    RoamingHandoff {
        /// The roaming node's advertised name.
        node_name: String,
        /// Extensions it held here.
        ext_ids: Vec<String>,
    },
}

impl Wire for MidasMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            MidasMsg::Deliver {
                ext,
                lease_ns,
                grant,
            } => {
                w.put_u8(0);
                ext.encode(w);
                w.put_u64(*lease_ns);
                w.put_u64(*grant);
            }
            MidasMsg::Ack {
                ext_id,
                grant,
                ok,
                reason,
            } => {
                w.put_u8(1);
                w.put_str(ext_id);
                w.put_u64(*grant);
                w.put_bool(*ok);
                w.put_str(reason);
            }
            MidasMsg::LeaseRenew { grant } => {
                w.put_u8(2);
                w.put_u64(*grant);
            }
            MidasMsg::Revoke { ext_id, reason } => {
                w.put_u8(3);
                w.put_str(ext_id);
                w.put_str(reason);
            }
            MidasMsg::Replace {
                old_id,
                ext,
                lease_ns,
                grant,
            } => {
                w.put_u8(4);
                w.put_str(old_id);
                ext.encode(w);
                w.put_u64(*lease_ns);
                w.put_u64(*grant);
            }
            MidasMsg::RequestDep { ext_id } => {
                w.put_u8(5);
                w.put_str(ext_id);
            }
            MidasMsg::RoamingHandoff { node_name, ext_ids } => {
                w.put_u8(6);
                w.put_str(node_name);
                ext_ids.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => MidasMsg::Deliver {
                ext: SignedExtension::decode(r)?,
                lease_ns: r.get_u64()?,
                grant: r.get_u64()?,
            },
            1 => MidasMsg::Ack {
                ext_id: r.get_str()?,
                grant: r.get_u64()?,
                ok: r.get_bool()?,
                reason: r.get_str()?,
            },
            2 => MidasMsg::LeaseRenew {
                grant: r.get_u64()?,
            },
            3 => MidasMsg::Revoke {
                ext_id: r.get_str()?,
                reason: r.get_str()?,
            },
            4 => MidasMsg::Replace {
                old_id: r.get_str()?,
                ext: SignedExtension::decode(r)?,
                lease_ns: r.get_u64()?,
                grant: r.get_u64()?,
            },
            5 => MidasMsg::RequestDep {
                ext_id: r.get_str()?,
            },
            6 => MidasMsg::RoamingHandoff {
                node_name: r.get_str()?,
                ext_ids: Vec::<String>::decode(r)?,
            },
            tag => {
                return Err(r.bad_tag("MidasMsg", tag))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{ExtensionMeta, ExtensionPackage};
    use pmp_crypto::KeyPair;
    use pmp_prose::{Aspect, PortableAspect, PortableClass};

    fn signed() -> SignedExtension {
        let aspect = Aspect::script(
            "m",
            PortableClass {
                name: "M".into(),
                fields: vec![],
                methods: vec![],
            },
            vec![],
        );
        let pkg = ExtensionPackage {
            meta: ExtensionMeta {
                id: "m".into(),
                version: 1,
                description: String::new(),
                requires: vec![],
                permissions: vec![],
                implicit: false,
            },
            aspect: PortableAspect::try_from(&aspect).unwrap(),
        };
        SignedExtension::seal("a", &KeyPair::from_seed(b"a"), &pkg)
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            MidasMsg::Deliver {
                ext: signed(),
                lease_ns: 9,
                grant: 2,
            },
            MidasMsg::Ack {
                ext_id: "m".into(),
                grant: 2,
                ok: false,
                reason: "untrusted".into(),
            },
            MidasMsg::LeaseRenew { grant: 2 },
            MidasMsg::Revoke {
                ext_id: "m".into(),
                reason: "policy change".into(),
            },
            MidasMsg::Replace {
                old_id: "m".into(),
                ext: signed(),
                lease_ns: 9,
                grant: 3,
            },
            MidasMsg::RequestDep {
                ext_id: "session".into(),
            },
            MidasMsg::RoamingHandoff {
                node_name: "robot:1:1".into(),
                ext_ids: vec!["m".into()],
            },
        ];
        for m in msgs {
            let bytes = pmp_wire::to_bytes(&m);
            assert_eq!(pmp_wire::from_bytes::<MidasMsg>(&bytes).unwrap(), m);
        }
    }
}
