//! Property-based interpreter validation: random expression trees are
//! compiled to bytecode and must evaluate exactly like the Rust
//! reference (wrapping integer semantics).
//!
//! Needs the external `proptest` crate; the offline default build gates
//! the whole file behind the (empty) `proptest` feature.
#![cfg(feature = "proptest")]

use pmp_vm::builder::MethodBuilder;
use pmp_vm::class::ClassDef;
use pmp_vm::op::Op;
use pmp_vm::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

impl Expr {
    fn eval(&self) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            Expr::Xor(a, b) => a.eval() ^ b.eval(),
            Expr::And(a, b) => a.eval() & b.eval(),
            Expr::Or(a, b) => a.eval() | b.eval(),
            Expr::Neg(a) => a.eval().wrapping_neg(),
        }
    }

    fn emit(&self, b: &mut MethodBuilder) {
        match self {
            Expr::Const(v) => {
                b.konst(*v);
            }
            Expr::Add(x, y) => {
                x.emit(b);
                y.emit(b);
                b.op(Op::Add);
            }
            Expr::Sub(x, y) => {
                x.emit(b);
                y.emit(b);
                b.op(Op::Sub);
            }
            Expr::Mul(x, y) => {
                x.emit(b);
                y.emit(b);
                b.op(Op::Mul);
            }
            Expr::Xor(x, y) => {
                x.emit(b);
                y.emit(b);
                b.op(Op::BitXor);
            }
            Expr::And(x, y) => {
                x.emit(b);
                y.emit(b);
                b.op(Op::BitAnd);
            }
            Expr::Or(x, y) => {
                x.emit(b);
                y.emit(b);
                b.op(Op::BitOr);
            }
            Expr::Neg(x) => {
                x.emit(b);
                b.op(Op::Neg);
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = any::<i64>().prop_map(Expr::Const);
    leaf.prop_recursive(4, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Neg(Box::new(a))),
        ]
    })
}

fn run_expr(expr: &Expr, hooks: bool) -> i64 {
    let mut vm = Vm::new(if hooks {
        VmConfig::default()
    } else {
        VmConfig::without_hooks()
    });
    let mut b = MethodBuilder::new();
    expr.emit(&mut b);
    b.op(Op::RetVal);
    let body = b.build();
    vm.register_class(
        ClassDef::build("E")
            .method_body("eval", [], TypeSig::Int, body)
            .done(),
    )
    .unwrap();
    vm.call("E", "eval", Value::Null, vec![])
        .unwrap()
        .as_int()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prop_bytecode_matches_rust_semantics(expr in expr_strategy()) {
        prop_assert_eq!(run_expr(&expr, true), expr.eval());
    }

    #[test]
    fn prop_stubs_do_not_change_results(expr in expr_strategy()) {
        prop_assert_eq!(run_expr(&expr, true), run_expr(&expr, false));
    }

    #[test]
    fn prop_comparisons_match(a: i64, b: i64) {
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("C")
                .method("lt", [TypeSig::Int, TypeSig::Int], TypeSig::Bool, |m| {
                    m.op(Op::Load(1)).op(Op::Load(2)).op(Op::Lt).op(Op::RetVal);
                })
                .method("ge", [TypeSig::Int, TypeSig::Int], TypeSig::Bool, |m| {
                    m.op(Op::Load(1)).op(Op::Load(2)).op(Op::Ge).op(Op::RetVal);
                })
                .method("div", [TypeSig::Int, TypeSig::Int], TypeSig::Int, |m| {
                    m.op(Op::Load(1)).op(Op::Load(2)).op(Op::Div).op(Op::RetVal);
                })
                .done(),
        )
        .unwrap();
        let lt = vm.call("C", "lt", Value::Null, vec![a.into(), b.into()]).unwrap();
        prop_assert_eq!(lt, Value::Bool(a < b));
        let ge = vm.call("C", "ge", Value::Null, vec![a.into(), b.into()]).unwrap();
        prop_assert_eq!(ge, Value::Bool(a >= b));
        let div = vm.call("C", "div", Value::Null, vec![a.into(), b.into()]);
        if b == 0 {
            prop_assert!(div.is_err());
        } else {
            prop_assert_eq!(div.unwrap(), Value::Int(a.wrapping_div(b)));
        }
    }

    #[test]
    fn prop_shifts_mask_like_jvm(a: i64, s in 0i64..200) {
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("S")
                .method("shl", [TypeSig::Int, TypeSig::Int], TypeSig::Int, |m| {
                    m.op(Op::Load(1)).op(Op::Load(2)).op(Op::Shl).op(Op::RetVal);
                })
                .done(),
        )
        .unwrap();
        let got = vm.call("S", "shl", Value::Null, vec![a.into(), s.into()]).unwrap();
        prop_assert_eq!(got, Value::Int(a.wrapping_shl(s as u32 & 63)));
    }
}
