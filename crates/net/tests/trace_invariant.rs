//! Property test for the delivery-accounting invariant: every unicast
//! submission is eventually counted exactly once as delivered,
//! dropped-at/en-route-out-of-range, or lost on the link — i.e. after
//! the event queue drains,
//!
//! `sent == delivered + dropped_range + dropped_loss`.
//!
//! (Broadcast copies are accounted under `broadcasts`/`dropped_*` with
//! no `sent` bump, so the randomized runs below use unicast only.)
//!
//! Randomization comes from the simulator's own deterministic
//! [`SimRng`], so each of these cases is exactly reproducible by seed.

use pmp_net::prelude::*;
use pmp_net::SimRng;

/// One randomized world: 2–6 nodes scattered near/far, a random link
/// loss rate, random mid-run moves, partitions, and radio toggles.
fn randomized_run(seed: u64) -> NetStats {
    let mut r = SimRng::new(seed);
    let loss = r.next_f64() * 0.6;
    let mut sim = Simulator::with_link(seed, LinkModel::lossy(loss));

    let n_nodes = 2 + r.range_u64(5) as usize;
    let nodes: Vec<NodeId> = (0..n_nodes)
        .map(|i| {
            // Mostly clustered in range, some stragglers far away.
            let x = r.range_u64(120) as f64;
            let y = r.range_u64(40) as f64;
            sim.add_node(format!("n{i}"), Position::new(x, y), 60.0)
        })
        .collect();

    let n_sends = 20 + r.range_u64(80);
    for _ in 0..n_sends {
        let from = nodes[r.range_u64(n_nodes as u64) as usize];
        let to = nodes[r.range_u64(n_nodes as u64) as usize];
        let len = r.range_u64(64) as usize;
        sim.send(from, to, "prop", vec![0u8; len]);

        // Occasionally shake the world while messages are in flight, so
        // the delivery-time range check exercises `dropped_range`.
        match r.range_u64(10) {
            0 => {
                let node = nodes[r.range_u64(n_nodes as u64) as usize];
                let x = r.range_u64(400) as f64;
                sim.move_node(node, Position::new(x, 0.0));
            }
            1 => {
                let a = nodes[r.range_u64(n_nodes as u64) as usize];
                let b = nodes[r.range_u64(n_nodes as u64) as usize];
                sim.partition(a, b);
            }
            2 => {
                let node = nodes[r.range_u64(n_nodes as u64) as usize];
                sim.set_online(node, r.chance(0.5));
            }
            3 => {
                sim.run_for(1 + r.range_u64(2_000_000));
            }
            _ => {}
        }
    }

    // Drain every in-flight event so each submission has been resolved
    // one way or the other.
    while sim.has_events() {
        sim.step();
    }
    sim.trace.stats
}

#[test]
fn sent_equals_delivered_plus_drops_across_randomized_runs() {
    for seed in 0..60 {
        let stats = randomized_run(seed);
        assert_eq!(
            stats.sent,
            stats.delivered + stats.dropped_range + stats.dropped_loss,
            "accounting leak at seed {seed}: {stats:?}"
        );
        assert_eq!(stats.broadcasts, 0, "unicast-only run");
    }
}

#[test]
fn mixed_workload_still_balances_after_drain() {
    // A hand-built nasty case: loss + an offline receiver + a receiver
    // that walks out of range mid-flight.
    let mut sim = Simulator::with_link(99, LinkModel::lossy(0.4));
    let a = sim.add_node("a", Position::new(0.0, 0.0), 50.0);
    let b = sim.add_node("b", Position::new(10.0, 0.0), 50.0);
    let c = sim.add_node("c", Position::new(20.0, 0.0), 50.0);
    for i in 0..50 {
        sim.send(a, b, "x", vec![0; 16]);
        sim.send(a, c, "y", vec![0; 32]);
        if i == 10 {
            sim.set_online(c, false);
        }
        if i == 20 {
            sim.move_node(b, Position::new(500.0, 0.0));
        }
    }
    while sim.has_events() {
        sim.step();
    }
    let s = sim.trace.stats;
    assert_eq!(s.sent, 100);
    assert_eq!(s.sent, s.delivered + s.dropped_range + s.dropped_loss, "{s:?}");
    assert!(s.dropped_range > 0, "range drops exercised: {s:?}");
    assert!(s.dropped_loss > 0, "loss drops exercised: {s:?}");
}
