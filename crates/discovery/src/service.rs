//! Service items and queries (Jini's `ServiceItem`/`ServiceTemplate`).

use pmp_wire::{wire_struct, Reader, Wire, WireError, Writer};
use std::collections::BTreeMap;
use std::fmt;

/// Globally unique service id: registrar node in the high bits, a
/// per-registrar counter in the low bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u64);

impl ServiceId {
    /// Composes an id from the issuing registrar's node id and counter.
    pub fn compose(registrar_node: u32, counter: u32) -> Self {
        ServiceId((u64::from(registrar_node) << 32) | u64::from(counter))
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc#{:x}", self.0)
    }
}

impl Wire for ServiceId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(ServiceId(r.get_u64()?))
    }
}

/// A registered service: its type, provider, and free-form attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceItem {
    /// Registrar-assigned id (0 until registered).
    pub id: ServiceId,
    /// Service type, e.g. `"midas.adaptation"` or `"drawing"`.
    pub service_type: String,
    /// Human-readable instance name, e.g. `"robot:1:1"`.
    pub name: String,
    /// Provider node id (as raw u32).
    pub provider: u32,
    /// Attribute map (matched exactly by queries).
    pub attrs: BTreeMap<String, String>,
}

wire_struct!(ServiceItem {
    id: ServiceId,
    service_type: String,
    name: String,
    provider: u32,
    attrs: BTreeMap<String, String>,
});

impl ServiceItem {
    /// Creates an unregistered item.
    pub fn new(service_type: impl Into<String>, name: impl Into<String>, provider: u32) -> Self {
        Self {
            id: ServiceId(0),
            service_type: service_type.into(),
            name: name.into(),
            provider,
            attrs: BTreeMap::new(),
        }
    }

    /// Adds an attribute (builder-style).
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }
}

/// A lookup query: optional type plus attributes that must all match.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceQuery {
    /// Required service type (`None` matches any).
    pub service_type: Option<String>,
    /// Attributes the item must carry with equal values.
    pub attrs: BTreeMap<String, String>,
}

wire_struct!(ServiceQuery {
    service_type: Option<String>,
    attrs: BTreeMap<String, String>,
});

impl ServiceQuery {
    /// Query by service type only.
    pub fn of_type(service_type: impl Into<String>) -> Self {
        Self {
            service_type: Some(service_type.into()),
            attrs: BTreeMap::new(),
        }
    }

    /// Adds a required attribute (builder-style).
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Does `item` satisfy this query?
    pub fn matches(&self, item: &ServiceItem) -> bool {
        if let Some(t) = &self.service_type {
            if t != &item.service_type {
                return false;
            }
        }
        self.attrs
            .iter()
            .all(|(k, v)| item.attrs.get(k) == Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_composition() {
        let id = ServiceId::compose(3, 7);
        assert_eq!(id.0, (3u64 << 32) | 7);
    }

    #[test]
    fn query_matching() {
        let item = ServiceItem::new("midas.adaptation", "robot:1:1", 4)
            .with_attr("vm", "pmp")
            .with_attr("hall", "a");
        assert!(ServiceQuery::default().matches(&item));
        assert!(ServiceQuery::of_type("midas.adaptation").matches(&item));
        assert!(!ServiceQuery::of_type("drawing").matches(&item));
        assert!(ServiceQuery::of_type("midas.adaptation")
            .with_attr("hall", "a")
            .matches(&item));
        assert!(!ServiceQuery::of_type("midas.adaptation")
            .with_attr("hall", "b")
            .matches(&item));
        assert!(!ServiceQuery::default().with_attr("missing", "x").matches(&item));
    }

    #[test]
    fn wire_roundtrips() {
        let item = ServiceItem::new("drawing", "plotter", 2).with_attr("axes", "3");
        let bytes = pmp_wire::to_bytes(&item);
        assert_eq!(pmp_wire::from_bytes::<ServiceItem>(&bytes).unwrap(), item);
        let q = ServiceQuery::of_type("drawing").with_attr("axes", "3");
        let bytes = pmp_wire::to_bytes(&q);
        assert_eq!(pmp_wire::from_bytes::<ServiceQuery>(&bytes).unwrap(), q);
    }
}
