//! The bounded per-node flight recorder.

use crate::span::FlightEntry;
use pmp_durable::{Durable, DurableError};
use pmp_telemetry::Fnv64;
use pmp_wire::Wire;
use std::collections::VecDeque;

/// The WAL namespace base stations persist their flight ring under.
pub const FLIGHT_NAMESPACE: &str = "trace.flight";

/// Default ring capacity.
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// A bounded ring of the most recent [`FlightEntry`]s on one node —
/// the "black box" dumped into chaos `.repro` artifacts when an oracle
/// fires. Base stations additionally persist theirs through
/// `pmp-durable` (namespace [`FLIGHT_NAMESPACE`]), so the causal
/// history survives a crash/restart.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<FlightEntry>,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAP)
    }
}

impl FlightRecorder {
    /// An empty ring keeping at most `cap` entries.
    #[must_use]
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest once full.
    pub fn record(&mut self, entry: FlightEntry) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(entry);
    }

    /// The ring capacity.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of retained entries (always ≤ [`FlightRecorder::cap`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entries evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained entries, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        self.buf.iter().cloned().collect()
    }

    /// Stable FNV-1a digest of the retained entries + drop counter.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.dropped);
        for e in &self.buf {
            let bytes = pmp_wire::to_bytes(e);
            h.write_u64(bytes.len() as u64);
            h.write(&bytes);
        }
        h.finish()
    }
}

/// Canonical snapshot form: `(cap, dropped, entries)`.
impl Durable for FlightRecorder {
    fn namespace(&self) -> &'static str {
        FLIGHT_NAMESPACE
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = pmp_wire::Writer::new();
        w.put_varu64(self.cap as u64);
        w.put_u64(self.dropped);
        w.put_varu64(self.buf.len() as u64);
        for e in &self.buf {
            e.encode(&mut w);
        }
        w.into_bytes()
    }

    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let mut r = pmp_wire::Reader::new(bytes);
        let parse = (|| -> Result<(usize, u64, VecDeque<FlightEntry>), pmp_wire::WireError> {
            let cap = r.get_varu64()? as usize;
            let dropped = r.get_u64()?;
            let n = r.get_varu64()? as usize;
            let mut buf = VecDeque::with_capacity(n.min(4096));
            for _ in 0..n {
                buf.push_back(FlightEntry::decode(&mut r)?);
            }
            r.finish()?;
            Ok((cap, dropped, buf))
        })();
        let (cap, dropped, buf) = parse?;
        self.cap = cap.max(1);
        self.dropped = dropped;
        self.buf = buf;
        Ok(())
    }

    fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        // WAL records carry a *batch* of entries — one record per node
        // per epoch barrier, mirroring the engine's group-commit
        // discipline (see `BaseStation::note_flight_batch`).
        for entry in pmp_wire::from_bytes::<Vec<FlightEntry>>(payload)? {
            self.record(entry);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> FlightEntry {
        FlightEntry::Event {
            at: i,
            name: format!("e{i}"),
            detail: String::new(),
        }
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut f = FlightRecorder::new(3);
        for i in 0..10 {
            f.record(ev(i));
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.dropped(), 7);
        let names: Vec<String> = f
            .snapshot()
            .into_iter()
            .map(|e| match e {
                FlightEntry::Event { name, .. } => name,
                FlightEntry::Span(s) => s.name,
            })
            .collect();
        assert_eq!(names, vec!["e7", "e8", "e9"]);
    }

    #[test]
    fn snapshot_restore_roundtrips_digest() {
        let mut f = FlightRecorder::new(4);
        for i in 0..6 {
            f.record(ev(i));
        }
        let bytes = f.snapshot_bytes();
        let mut g = FlightRecorder::new(1);
        g.restore_snapshot(&bytes).unwrap();
        assert_eq!(g, f);
        assert_eq!(g.state_digest(), f.state_digest());
        assert_eq!(g.digest(), f.digest());
    }

    #[test]
    fn wal_replay_reaches_the_same_ring() {
        let mut live = FlightRecorder::new(3);
        let mut replayed = FlightRecorder::new(3);
        let batch: Vec<FlightEntry> = (0..5).map(ev).collect();
        for e in &batch {
            live.record(e.clone());
        }
        replayed.apply_record(&pmp_wire::to_bytes(&batch)).unwrap();
        assert_eq!(live, replayed);
        assert!(replayed.apply_record(&[0xff, 0xff]).is_err());
    }
}
