//! The robot application layer (paper Fig. 3a): tasks broken into
//! hardware macros, sensor-interrupt decisions, an overriding layer,
//! and direct mode.

use crate::device::Port;
use crate::rcx::Rcx;
use crate::sensor::SensorEvent;
use std::collections::VecDeque;

/// A hardware macro: one activity request sent to the device layer
/// (the paper's example: "turn left 30 degrees").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwMacro {
    /// Rotate one motor.
    Rotate {
        /// Motor port.
        port: Port,
        /// Degrees (signed).
        degrees: i64,
    },
    /// Set a motor's power.
    SetPower {
        /// Motor port.
        port: Port,
        /// Power 1..=7.
        power: i64,
    },
    /// Stop a motor.
    Stop {
        /// Motor port.
        port: Port,
    },
    /// Turn the robot left by rotating A forward and B backward.
    TurnLeft {
        /// Degrees of turn.
        degrees: i64,
    },
    /// Drive forward by rotating A and B together.
    Forward {
        /// Degrees of wheel rotation.
        degrees: i64,
    },
}

impl HwMacro {
    /// Executes the macro on the controller; returns total simulated
    /// duration, or `None` if the hardware is frozen.
    pub fn execute(&self, rcx: &mut Rcx) -> Option<u64> {
        match self {
            HwMacro::Rotate { port, degrees } => rcx.rotate(*port, *degrees),
            HwMacro::SetPower { port, power } => rcx.set_power(*port, *power),
            HwMacro::Stop { port } => rcx.stop(*port),
            HwMacro::TurnLeft { degrees } => {
                let a = rcx.rotate(Port::A, *degrees)?;
                let b = rcx.rotate(Port::B, -*degrees)?;
                Some(a.max(b))
            }
            HwMacro::Forward { degrees } => {
                let a = rcx.rotate(Port::A, *degrees)?;
                let b = rcx.rotate(Port::B, *degrees)?;
                Some(a.max(b))
            }
        }
    }
}

/// What a task wants next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Execute this macro and call again.
    Do(HwMacro),
    /// Nothing right now (waiting).
    Idle,
    /// The task's objective is met.
    Finished,
}

/// A task's reaction to a sensor event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskDecision {
    /// Resume the interrupted activity.
    Continue,
    /// Abort the current task.
    Abort,
}

/// A basic program deciding what the robot does (paper §4.1).
pub trait Task {
    /// The task's name.
    fn name(&self) -> &str;
    /// Produces the next activity request.
    fn step(&mut self, rcx: &Rcx) -> TaskStatus;
    /// Reacts to a sensor event that froze the hardware.
    fn on_event(&mut self, event: &SensorEvent) -> TaskDecision;
}

/// The layered runner: direct mode overrides the overriding layer,
/// which overrides the current task (paper Fig. 3a, middle layer).
#[derive(Default)]
pub struct TaskRunner {
    task: Option<Box<dyn Task + Send>>,
    override_task: Option<Box<dyn Task + Send>>,
    direct_queue: VecDeque<HwMacro>,
    /// Names of tasks that finished or were aborted, in order.
    pub completed: Vec<String>,
}

impl std::fmt::Debug for TaskRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRunner")
            .field("has_task", &self.task.is_some())
            .field("has_override", &self.override_task.is_some())
            .field("direct_queue", &self.direct_queue.len())
            .finish()
    }
}

impl TaskRunner {
    /// Creates an idle runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the base task.
    pub fn set_task(&mut self, task: Box<dyn Task + Send>) {
        self.task = Some(task);
    }

    /// Installs an overriding task (takes precedence until finished).
    pub fn set_override(&mut self, task: Box<dyn Task + Send>) {
        self.override_task = Some(task);
    }

    /// Queues a direct-mode macro (highest precedence; the human
    /// operator's channel).
    pub fn direct(&mut self, m: HwMacro) {
        self.direct_queue.push_back(m);
    }

    /// Is any work pending?
    pub fn is_active(&self) -> bool {
        self.task.is_some() || self.override_task.is_some() || !self.direct_queue.is_empty()
    }

    /// Runs one scheduling step: poll sensors (events freeze hardware
    /// and are routed to the active task), then execute the next macro
    /// from the highest-precedence source. Returns the simulated
    /// duration consumed.
    pub fn run_step(&mut self, rcx: &mut Rcx) -> u64 {
        // Sensor events interrupt whatever is running.
        if let Some(ev) = rcx.poll_sensors() {
            let decision = if let Some(t) = self.override_task.as_mut() {
                t.on_event(&ev)
            } else if let Some(t) = self.task.as_mut() {
                t.on_event(&ev)
            } else {
                TaskDecision::Continue
            };
            rcx.unfreeze();
            if decision == TaskDecision::Abort {
                if let Some(t) = self.override_task.take() {
                    self.completed.push(format!("{} (aborted)", t.name()));
                } else if let Some(t) = self.task.take() {
                    self.completed.push(format!("{} (aborted)", t.name()));
                }
            }
            return 0;
        }
        // Direct mode first.
        if let Some(m) = self.direct_queue.pop_front() {
            return m.execute(rcx).unwrap_or(0);
        }
        // Then the overriding layer, then the base task.
        let use_override = self.override_task.is_some();
        let slot = if use_override {
            &mut self.override_task
        } else {
            &mut self.task
        };
        let Some(t) = slot.as_mut() else { return 0 };
        match t.step(rcx) {
            TaskStatus::Do(m) => m.execute(rcx).unwrap_or(0),
            TaskStatus::Idle => 0,
            TaskStatus::Finished => {
                let t = slot.take().expect("checked above");
                self.completed.push(t.name().to_string());
                0
            }
        }
    }
}

/// A ready-made task: execute a fixed sequence of macros, aborting on
/// touch events.
#[derive(Debug)]
pub struct SequenceTask {
    name: String,
    macros: VecDeque<HwMacro>,
}

impl SequenceTask {
    /// Creates a sequence task.
    pub fn new(name: impl Into<String>, macros: impl IntoIterator<Item = HwMacro>) -> Self {
        Self {
            name: name.into(),
            macros: macros.into_iter().collect(),
        }
    }
}

impl Task for SequenceTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, _rcx: &Rcx) -> TaskStatus {
        match self.macros.pop_front() {
            Some(m) => TaskStatus::Do(m),
            None => TaskStatus::Finished,
        }
    }

    fn on_event(&mut self, event: &SensorEvent) -> TaskDecision {
        // A touch means an obstacle: abort (the paper's example).
        if event.kind == crate::sensor::SensorKind::Touch {
            TaskDecision::Abort
        } else {
            TaskDecision::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_task_runs_to_completion() {
        let mut rcx = Rcx::new();
        let mut runner = TaskRunner::new();
        runner.set_task(Box::new(SequenceTask::new(
            "square",
            vec![
                HwMacro::Forward { degrees: 90 },
                HwMacro::TurnLeft { degrees: 90 },
                HwMacro::Forward { degrees: 90 },
            ],
        )));
        let mut total = 0u64;
        while runner.is_active() {
            total += runner.run_step(&mut rcx);
        }
        assert!(total > 0);
        assert_eq!(runner.completed, vec!["square".to_string()]);
        // Forward+TurnLeft+Forward = 6 motor rotations logged.
        assert_eq!(rcx.log().len(), 6);
    }

    #[test]
    fn touch_event_aborts_task() {
        let mut rcx = Rcx::new();
        let mut runner = TaskRunner::new();
        runner.set_task(Box::new(SequenceTask::new(
            "walk",
            vec![HwMacro::Forward { degrees: 360 }; 10],
        )));
        runner.run_step(&mut rcx); // first step executes
        rcx.sensor_mut(Port::S1).set_value(1); // obstacle!
        runner.run_step(&mut rcx); // event → abort
        assert!(!runner.is_active());
        assert_eq!(runner.completed, vec!["walk (aborted)".to_string()]);
    }

    #[test]
    fn override_layer_takes_precedence() {
        let mut rcx = Rcx::new();
        let mut runner = TaskRunner::new();
        runner.set_task(Box::new(SequenceTask::new(
            "base",
            vec![HwMacro::Forward { degrees: 10 }; 3],
        )));
        runner.set_override(Box::new(SequenceTask::new(
            "rescue",
            vec![HwMacro::TurnLeft { degrees: 180 }],
        )));
        // First steps run the override.
        runner.run_step(&mut rcx);
        runner.run_step(&mut rcx); // finishes override
        assert_eq!(runner.completed, vec!["rescue".to_string()]);
        // Then the base task resumes.
        while runner.is_active() {
            runner.run_step(&mut rcx);
        }
        assert!(runner.completed.contains(&"base".to_string()));
    }

    #[test]
    fn direct_mode_preempts_everything() {
        let mut rcx = Rcx::new();
        let mut runner = TaskRunner::new();
        runner.set_task(Box::new(SequenceTask::new(
            "base",
            vec![HwMacro::Forward { degrees: 10 }],
        )));
        runner.direct(HwMacro::Stop { port: Port::A });
        runner.run_step(&mut rcx);
        assert_eq!(rcx.log()[0].command, "stop", "direct command ran first");
    }
}
