//! The canonical production-hall world (paper §1's motivating example
//! and §4's prototype): two halls with different policies, a plotter
//! robot roaming between them.

use crate::platform::{BaseId, MobId, Platform};
use pmp_net::{AreaId, Position};
use pmp_vm::perm::{Permission, Permissions};

/// The canned world used by examples, integration tests, and benches.
#[derive(Debug)]
pub struct ProductionHalls {
    /// The platform.
    pub platform: Platform,
    /// Hall A (monitoring + access control + session).
    pub hall_a: AreaId,
    /// Hall B (geofence + billing).
    pub hall_b: AreaId,
    /// Hall A's base station.
    pub base_a: BaseId,
    /// Hall B's base station.
    pub base_b: BaseId,
    /// The plotter robot.
    pub robot: MobId,
}

/// Position inside hall A.
pub const IN_HALL_A: Position = Position { x: 30.0, y: 30.0 };
/// Position inside hall B.
pub const IN_HALL_B: Position = Position { x: 180.0, y: 30.0 };
/// The corridor between halls — out of both bases' radio range.
pub const CORRIDOR: Position = Position { x: 500.0, y: 500.0 };

impl ProductionHalls {
    /// Builds the world: hall A `[0,60]²` with its base at the centre,
    /// hall B `[150,210]×[0,60]` likewise, and the robot starting in
    /// hall A. Catalogs:
    ///
    /// * hall A: session management (implicit), access control allowing
    ///   `operator:1`/`operator:2`, hardware monitoring;
    /// * hall B: geofence `[0,30]²`, billing at 2 units per motor call.
    pub fn build(seed: u64) -> ProductionHalls {
        let mut p = Platform::new(seed);
        let hall_a = p.add_area("hall-a", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
        let hall_b = p.add_area(
            "hall-b",
            Position::new(150.0, 0.0),
            Position::new(210.0, 60.0),
        );
        let base_a = p.add_base("hall-a", Position::new(30.0, 30.0), 80.0);
        let base_b = p.add_base("hall-b", Position::new(180.0, 30.0), 80.0);
        // The halls are 150 m apart but the bases have 80 m radios:
        // linking them as roaming neighbours also lays a wired backhaul
        // segment between them, so handoff records cross the distance
        // the radios cannot. (Radio traffic to out-of-range nodes is
        // still simply lost.)
        p.link_bases(base_a, base_b);

        // Hall A catalog.
        let seal_a = |p: &Platform, pkg| p.base(base_a).seal(&pkg);
        let session = pmp_extensions::session::package("* DrawingService.*(..)", 1);
        let access = pmp_extensions::access_control::package(
            "* DrawingService.*(..)",
            &["operator:1", "operator:2"],
            1,
        );
        let monitoring = pmp_extensions::monitoring::package(1);
        for pkg in [session, access, monitoring] {
            let sealed = seal_a(&p, pkg);
            p.base_mut(base_a).base.catalog.put(sealed);
        }

        // Hall B catalog.
        let geofence = pmp_extensions::geofence::package(0, 0, 30, 30, 1);
        let billing = pmp_extensions::billing::package("* Motor.*(..)", 2, 1);
        for pkg in [geofence, billing] {
            let sealed = p.base(base_b).seal(&pkg);
            p.base_mut(base_b).base.catalog.put(sealed);
        }

        // The robot trusts both halls, capped sensibly.
        let cap = Permissions::none()
            .with(Permission::Print)
            .with(Permission::Net)
            .with(Permission::Time)
            .with(Permission::Store);
        let policy = p.trusting_policy(&[base_a, base_b], cap);
        let robot = p
            .add_robot("robot:1:1", IN_HALL_A, 80.0, policy)
            .expect("robot construction");

        ProductionHalls {
            platform: p,
            hall_a,
            hall_b,
            base_a,
            base_b,
            robot,
        }
    }

    /// The scenario's telemetry summary: platform-wide counters plus
    /// every node's VM registry, rendered as a text report.
    pub fn telemetry_summary(&self) -> String {
        self.platform.render_telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_with_catalogs() {
        let w = ProductionHalls::build(1);
        assert_eq!(w.platform.base(w.base_a).base.catalog.len(), 3);
        assert_eq!(w.platform.base(w.base_b).base.catalog.len(), 2);
        assert_eq!(w.platform.node(w.robot).name, "robot:1:1");
        assert_eq!(
            w.platform.sim.node_area(w.platform.node(w.robot).node),
            Some(w.hall_a)
        );
    }
}
