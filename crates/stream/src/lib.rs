//! # pmp-stream — rev-streamed state fan-out with snapshot resync
//!
//! Every [`pmp_durable::Durable`] namespace already writes its state
//! transitions through the WAL as canonical wire-encoded records. This
//! crate turns that same record stream into a fan-out primitive: each
//! namespace gets a monotonically increasing **rev** (one per committed
//! record of that namespace), and subscribers consume `(rev, delta)`
//! pairs where the delta bytes are exactly the WAL payload the owning
//! store applied.
//!
//! ## Memory model: shared ring, per-subscriber cursor
//!
//! Fan-out to N subscribers must not cost N buffers. Each namespace
//! publisher keeps **one** bounded ring of recent deltas, encoded once
//! into shared [`Bytes`]; a subscriber is just a cursor — namespace
//! index, next expected rev, and a resync flag — about two dozen bytes.
//! A million subscribers is a few tens of megabytes of cursors plus one
//! ring, not a million queues.
//!
//! ## Gap protocol
//!
//! A subscriber whose cursor has fallen off the ring's tail (or who
//! subscribed from scratch after the ring rolled) is *gapped*. Recovery
//! is tiered:
//!
//! 1. **Log bootstrap** — if the committed WAL still covers every
//!    record from sequence 1 (no checkpoint has compacted it), the gap
//!    is served as ordinary deltas read back from the log. Revs align
//!    because a namespace's rev is its record's ordinal among that
//!    namespace's committed records.
//! 2. **Snapshot resync** — otherwise the subscriber receives the
//!    namespace's canonical snapshot bytes (the same bytes
//!    [`pmp_durable::Durable::snapshot_bytes`] produces for
//!    checkpoints) stamped with the publisher's head rev, adopts it
//!    unconditionally, and resumes deltas from there.
//!
//! Backpressure is therefore *drop-to-resync*: the publisher never
//! buffers unboundedly for a slow consumer; falling behind costs the
//! consumer one snapshot, not the publisher any memory.
//!
//! ## Determinism contract
//!
//! Publish and drain are meant to run at epoch barriers, after
//! `DurableHub::commit`. Subscribers only ever observe committed
//! records, so the drained event sequence is a pure function of the
//! committed record sequence — byte-identical across schedulers.

use pmp_durable::WalRecord;
use pmp_wire::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Tuning knobs for a [`StreamHub`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Deltas retained per namespace ring. A subscriber more than this
    /// many revs behind is gapped and goes through the resync tiers.
    pub ring_cap: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self { ring_cap: 512 }
    }
}

/// One update delivered to a subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A single committed record's payload; apply via
    /// [`pmp_durable::Durable::apply_record`]. `rev` is contiguous per
    /// namespace.
    Delta {
        /// Namespace-local revision of this delta.
        rev: u64,
        /// The WAL payload bytes, shared across all subscribers.
        bytes: Bytes,
    },
    /// Full canonical state; adopt unconditionally via
    /// [`pmp_durable::Durable::restore_snapshot`], then expect deltas
    /// from `rev + 1`.
    Snapshot {
        /// Publisher head rev the snapshot corresponds to.
        rev: u64,
        /// Canonical snapshot bytes.
        bytes: Bytes,
    },
}

impl StreamEvent {
    /// The payload bytes, whichever variant.
    #[must_use]
    pub fn bytes(&self) -> &Bytes {
        match self {
            StreamEvent::Delta { bytes, .. } | StreamEvent::Snapshot { bytes, .. } => bytes,
        }
    }

    /// The rev stamped on the event.
    #[must_use]
    pub fn rev(&self) -> u64 {
        match self {
            StreamEvent::Delta { rev, .. } | StreamEvent::Snapshot { rev, .. } => *rev,
        }
    }
}

/// Where a draining hub gets out-of-ring data: the committed log (for
/// tier-1 bootstrap) and canonical snapshots (for tier-2 resync).
///
/// Implementations must answer *as of the last commit barrier* — the
/// snapshot for a namespace must correspond exactly to the state whose
/// last record the hub published.
pub trait StreamSource {
    /// Every committed record from sequence 1, in order, or `None` if
    /// the log has been compacted (checkpoint) or cannot prove
    /// contiguity. Maps to `DurableHub::wal_tail(1)`.
    fn full_log(&self) -> Option<Vec<WalRecord>>;

    /// Canonical snapshot bytes for `ns` at the current barrier.
    fn snapshot(&self, ns: &str) -> Option<Vec<u8>>;
}

/// A [`StreamSource`] with nothing to give: every gap becomes a
/// snapshot miss and the subscriber stays parked in resync. Useful for
/// tests and for drains that must not touch the log.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSource;

impl StreamSource for NullSource {
    fn full_log(&self) -> Option<Vec<WalRecord>> {
        None
    }
    fn snapshot(&self, _ns: &str) -> Option<Vec<u8>> {
        None
    }
}

/// Opaque handle naming one subscriber cursor within a hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriberId(u32);

impl SubscriberId {
    /// Stable dense index (handles are never reused within a hub).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Fan-out counters. `encoded` counts one per *published* delta — it
/// must stay independent of subscriber count; that is the
/// serialize-once guarantee the load generator asserts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Deltas encoded into shared bytes at publish time (once each).
    pub encoded: u64,
    /// Total bytes encoded at publish time.
    pub encoded_bytes: u64,
    /// Delta events handed to subscribers (counts every delivery).
    pub delivered: u64,
    /// Gaps detected (cursor off the ring tail).
    pub gaps: u64,
    /// Gap records served from the committed log (tier-1 resync).
    pub bootstrapped: u64,
    /// Full-snapshot resyncs served (tier-2).
    pub snapshots: u64,
}

#[derive(Debug)]
struct Publisher {
    ns: String,
    /// Rev of the newest committed record of this namespace — equal to
    /// the record's ordinal among the namespace's committed records.
    head_rev: u64,
    /// `(rev, wal_seq, delta)` — newest at the back, bounded by
    /// `ring_cap`.
    ring: VecDeque<(u64, u64, Bytes)>,
}

#[derive(Debug, Clone, Copy)]
struct Subscriber {
    ns_idx: u32,
    /// Next rev this cursor expects.
    next_rev: u64,
    /// Set when the publisher's history may have diverged from what
    /// this cursor saw (base restart after corruption rollback); the
    /// next drain serves a snapshot regardless of rev arithmetic.
    force_resync: bool,
    live: bool,
}

/// Per-base fan-out hub: one publisher per durable namespace, any
/// number of cursor subscribers.
#[derive(Debug, Default)]
pub struct StreamHub {
    cfg: StreamConfig,
    publishers: Vec<Publisher>,
    ns_index: BTreeMap<String, u32>,
    subs: Vec<Subscriber>,
    stats: StreamStats,
    /// Set when a [`StreamHub::rebase`] could not prove log contiguity
    /// (recovery checkpointed or truncated past sequence 1): rev 1 of
    /// the current lineage is then *not* the namespace's first record
    /// ever, so a from-scratch subscribe cannot be served as "deltas
    /// from rev 1" — it must bootstrap via snapshot. Cleared when a
    /// later rebase re-proves contiguity.
    lineage_broken: bool,
}

impl StreamHub {
    /// Creates a hub with the given configuration.
    #[must_use]
    pub fn new(cfg: StreamConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    fn publisher_idx(&mut self, ns: &str) -> u32 {
        if let Some(&i) = self.ns_index.get(ns) {
            return i;
        }
        let i = self.publishers.len() as u32;
        self.publishers.push(Publisher {
            ns: ns.to_string(),
            head_rev: 0,
            ring: VecDeque::new(),
        });
        self.ns_index.insert(ns.to_string(), i);
        i
    }

    /// Publishes one committed record's payload, assigning the next rev
    /// for its namespace and encoding the delta **once** into shared
    /// bytes. Returns the assigned rev.
    pub fn publish(&mut self, ns: &str, wal_seq: u64, payload: &[u8]) -> u64 {
        let idx = self.publisher_idx(ns) as usize;
        let p = &mut self.publishers[idx];
        p.head_rev += 1;
        let rev = p.head_rev;
        p.ring.push_back((rev, wal_seq, Bytes::copy_from(payload)));
        while p.ring.len() > self.cfg.ring_cap {
            p.ring.pop_front();
        }
        self.stats.encoded += 1;
        self.stats.encoded_bytes += payload.len() as u64;
        rev
    }

    /// Publishes every record of a committed batch in order — the shape
    /// a `DurableHub` commit tap hands over.
    pub fn publish_batch(&mut self, batch: &[WalRecord]) {
        for rec in batch {
            self.publish(&rec.ns, rec.seq, &rec.payload);
        }
    }

    /// Subscribes from scratch: the cursor starts at rev 1, so the
    /// first drain replays the namespace's full history (from the ring
    /// or the log) or resyncs via snapshot.
    pub fn subscribe(&mut self, ns: &str) -> SubscriberId {
        let ns_idx = self.publisher_idx(ns);
        // In a broken lineage, "everything from rev 1" is not the full
        // history — hand the cursor a snapshot first instead.
        let force_resync = self.lineage_broken;
        self.push_sub(Subscriber {
            ns_idx,
            next_rev: 1,
            force_resync,
            live: true,
        })
    }

    /// Subscribes at the head: only deltas committed after this call
    /// are delivered.
    pub fn subscribe_live(&mut self, ns: &str) -> SubscriberId {
        let ns_idx = self.publisher_idx(ns);
        let next_rev = self.publishers[ns_idx as usize].head_rev + 1;
        self.push_sub(Subscriber {
            ns_idx,
            next_rev,
            force_resync: false,
            live: true,
        })
    }

    fn push_sub(&mut self, sub: Subscriber) -> SubscriberId {
        let id = SubscriberId(self.subs.len() as u32);
        self.subs.push(sub);
        id
    }

    /// Retires a cursor; further drains return nothing. Handles are
    /// never reused.
    pub fn drop_subscriber(&mut self, id: SubscriberId) {
        if let Some(s) = self.subs.get_mut(id.index()) {
            s.live = false;
        }
    }

    /// Whether the cursor is still live.
    #[must_use]
    pub fn is_live(&self, id: SubscriberId) -> bool {
        self.subs.get(id.index()).is_some_and(|s| s.live)
    }

    /// Namespace a cursor is attached to.
    #[must_use]
    pub fn namespace_of(&self, id: SubscriberId) -> Option<&str> {
        self.subs
            .get(id.index())
            .map(|s| self.publishers[s.ns_idx as usize].ns.as_str())
    }

    /// Live cursor count.
    #[must_use]
    pub fn live_subscribers(&self) -> usize {
        self.subs.iter().filter(|s| s.live).count()
    }

    /// Current head rev for a namespace (0 if nothing published).
    #[must_use]
    pub fn head_rev(&self, ns: &str) -> u64 {
        self.ns_index
            .get(ns)
            .map_or(0, |&i| self.publishers[i as usize].head_rev)
    }

    /// Fan-out counters so far.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Marks every live cursor for unconditional snapshot resync. Call
    /// after any event that may have rolled the publisher's state back
    /// relative to what subscribers already saw (crash recovery that
    /// truncated a corrupt tail).
    pub fn force_resync_all(&mut self) {
        for s in &mut self.subs {
            if s.live {
                s.force_resync = true;
            }
        }
    }

    /// Re-aligns publisher revs with a freshly recovered engine and
    /// resyncs every cursor.
    ///
    /// After recovery the rev lineage is rebuilt from the committed
    /// log: a namespace's head rev is its record count from sequence 1
    /// (the ordinal invariant). If the log cannot prove contiguity
    /// (`full_log()` is `None` — e.g. recovery checkpointed), head revs
    /// restart at 0; the forced snapshot resync makes the discontinuity
    /// invisible to subscribers.
    pub fn rebase(&mut self, src: &dyn StreamSource) {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        match src.full_log() {
            Some(recs) => {
                for rec in &recs {
                    *counts.entry(rec.ns.clone()).or_insert(0) += 1;
                }
                self.lineage_broken = false;
            }
            None => self.lineage_broken = true,
        }
        for (ns, _) in counts.clone() {
            self.publisher_idx(&ns);
        }
        for p in &mut self.publishers {
            p.head_rev = counts.get(&p.ns).copied().unwrap_or(0);
            p.ring.clear();
        }
        self.force_resync_all();
    }

    /// Drains everything the cursor has not yet seen, advancing it.
    ///
    /// Caught-up cursors return an empty vec. Gapped cursors go through
    /// the tiered resync protocol (log bootstrap, then snapshot); if
    /// the source can serve neither, the cursor stays parked and a
    /// later drain retries.
    pub fn drain(&mut self, id: SubscriberId, src: &dyn StreamSource) -> Vec<StreamEvent> {
        let Some(sub) = self.subs.get(id.index()).copied() else {
            return Vec::new();
        };
        if !sub.live {
            return Vec::new();
        }
        let p = &self.publishers[sub.ns_idx as usize];
        let head = p.head_rev;

        if sub.force_resync {
            return self.resync_via_snapshot(id, src);
        }
        if sub.next_rev == head + 1 {
            return Vec::new(); // caught up
        }
        if sub.next_rev > head + 1 {
            // Cursor ahead of the publisher: history rolled back under
            // us without a rebase. Defensive snapshot.
            return self.resync_via_snapshot(id, src);
        }

        // There are unseen revs in [next_rev, head].
        let covered_by_ring = p
            .ring
            .front()
            .is_some_and(|&(front_rev, _, _)| sub.next_rev >= front_rev);
        if covered_by_ring {
            let front_rev = p.ring.front().unwrap().0;
            let skip = (sub.next_rev - front_rev) as usize;
            let out: Vec<StreamEvent> = self.publishers[sub.ns_idx as usize]
                .ring
                .iter()
                .skip(skip)
                .map(|(rev, _, bytes)| StreamEvent::Delta {
                    rev: *rev,
                    bytes: bytes.clone(),
                })
                .collect();
            self.stats.delivered += out.len() as u64;
            self.subs[id.index()].next_rev = head + 1;
            return out;
        }

        // Gapped: the ring has rolled past this cursor.
        self.stats.gaps += 1;
        if let Some(recs) = src.full_log() {
            let ns = self.publishers[sub.ns_idx as usize].ns.clone();
            let mine: Vec<&WalRecord> = recs.iter().filter(|r| r.ns == ns).collect();
            // Ordinal alignment check: the log serves this gap only if
            // it demonstrably contains the namespace's entire history.
            if mine.len() as u64 == head {
                let out: Vec<StreamEvent> = mine[(sub.next_rev - 1) as usize..]
                    .iter()
                    .enumerate()
                    .map(|(i, rec)| StreamEvent::Delta {
                        rev: sub.next_rev + i as u64,
                        bytes: Bytes::copy_from(&rec.payload),
                    })
                    .collect();
                self.stats.bootstrapped += out.len() as u64;
                self.stats.delivered += out.len() as u64;
                self.subs[id.index()].next_rev = head + 1;
                return out;
            }
        }
        self.resync_via_snapshot(id, src)
    }

    fn resync_via_snapshot(&mut self, id: SubscriberId, src: &dyn StreamSource) -> Vec<StreamEvent> {
        let sub = self.subs[id.index()];
        let p = &self.publishers[sub.ns_idx as usize];
        let head = p.head_rev;
        // No head-0 shortcut here: a cursor only reaches this path when
        // it is forced or ahead of the publisher, and either way it may
        // hold state from a history that no longer exists (recovery
        // rolled the namespace back to nothing). Only the snapshot —
        // even a snapshot of the empty state — re-converges it; a
        // silent realign would leave stale state in place forever (the
        // chaos `stream-resync` oracle found exactly that on seed 14).
        let Some(bytes) = src.snapshot(&p.ns) else {
            // Source cannot serve a snapshot right now; stay parked so
            // a later drain (with a capable source) retries.
            self.subs[id.index()].force_resync = true;
            return Vec::new();
        };
        self.stats.snapshots += 1;
        self.subs[id.index()].next_rev = head + 1;
        self.subs[id.index()].force_resync = false;
        vec![StreamEvent::Snapshot {
            rev: head,
            bytes: Bytes::from_vec(bytes),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test double: a source backed by explicit record and snapshot
    /// tables.
    #[derive(Default)]
    struct TableSource {
        log: Option<Vec<WalRecord>>,
        snaps: BTreeMap<String, Vec<u8>>,
    }

    impl StreamSource for TableSource {
        fn full_log(&self) -> Option<Vec<WalRecord>> {
            self.log.clone()
        }
        fn snapshot(&self, ns: &str) -> Option<Vec<u8>> {
            self.snaps.get(ns).cloned()
        }
    }

    fn rec(seq: u64, ns: &str, payload: &[u8]) -> WalRecord {
        WalRecord {
            seq,
            ns: ns.into(),
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn deltas_flow_in_rev_order_and_encode_once() {
        let mut hub = StreamHub::new(StreamConfig::default());
        let a = hub.subscribe_live("store.movements");
        let b = hub.subscribe("store.movements");
        for (seq, payload) in [(1, b"one"), (2, b"two")] {
            hub.publish("store.movements", seq, payload.as_slice());
        }
        let src = NullSource;
        let got_a = hub.drain(a, &src);
        let got_b = hub.drain(b, &src);
        let revs: Vec<u64> = got_a.iter().map(StreamEvent::rev).collect();
        assert_eq!(revs, vec![1, 2]);
        assert_eq!(got_a, got_b, "both cursors see the same sequence");
        assert!(matches!(&got_a[0], StreamEvent::Delta { bytes, .. } if &**bytes == b"one"));
        // Two deltas encoded, four delivered: encoding is per-publish,
        // not per-subscriber.
        let st = hub.stats();
        assert_eq!(st.encoded, 2);
        assert_eq!(st.delivered, 4);
        // Caught-up cursors drain empty.
        assert!(hub.drain(a, &src).is_empty());
    }

    #[test]
    fn short_gap_bootstraps_from_the_log() {
        let mut hub = StreamHub::new(StreamConfig { ring_cap: 2 });
        for seq in 1..=5u64 {
            hub.publish("midas.base", seq, &[seq as u8]);
        }
        // Ring only holds revs 4..=5; a from-scratch subscriber is
        // gapped but the full log can serve it.
        let sub = hub.subscribe("midas.base");
        let src = TableSource {
            log: Some((1..=5).map(|s| rec(s, "midas.base", &[s as u8])).collect()),
            snaps: BTreeMap::new(),
        };
        let got = hub.drain(sub, &src);
        let revs: Vec<u64> = got.iter().map(StreamEvent::rev).collect();
        assert_eq!(revs, vec![1, 2, 3, 4, 5]);
        assert!(got.iter().all(|e| matches!(e, StreamEvent::Delta { .. })));
        assert_eq!(hub.stats().bootstrapped, 5);
        assert_eq!(hub.stats().snapshots, 0);
        // Subsequent publishes flow as ordinary ring deltas.
        hub.publish("midas.base", 6, &[6]);
        let next = hub.drain(sub, &src);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].rev(), 6);
    }

    #[test]
    fn gap_beyond_a_compacted_log_snapshots() {
        let mut hub = StreamHub::new(StreamConfig { ring_cap: 2 });
        for seq in 1..=5u64 {
            hub.publish("store.movements", seq, &[seq as u8]);
        }
        let sub = hub.subscribe("store.movements");
        let src = TableSource {
            log: None, // checkpointed away
            snaps: [("store.movements".to_string(), b"SNAP".to_vec())].into(),
        };
        let got = hub.drain(sub, &src);
        assert_eq!(got.len(), 1);
        assert!(
            matches!(&got[0], StreamEvent::Snapshot { rev: 5, bytes } if &**bytes == b"SNAP")
        );
        assert_eq!(hub.stats().snapshots, 1);
        // The snapshot advanced the cursor to the head.
        assert!(hub.drain(sub, &src).is_empty());
        hub.publish("store.movements", 6, &[6]);
        assert_eq!(hub.drain(sub, &src).len(), 1);
    }

    #[test]
    fn a_partial_log_fails_ordinal_alignment_and_snapshots() {
        let mut hub = StreamHub::new(StreamConfig { ring_cap: 1 });
        for seq in 1..=4u64 {
            hub.publish("store.movements", seq, &[seq as u8]);
        }
        let sub = hub.subscribe("store.movements");
        // A log that only covers a suffix must NOT be used to serve
        // rev-1-onward deltas: the ordinal check rejects it.
        let src = TableSource {
            log: Some(vec![rec(4, "store.movements", &[4])]),
            snaps: [("store.movements".to_string(), b"S".to_vec())].into(),
        };
        let got = hub.drain(sub, &src);
        assert!(matches!(&got[0], StreamEvent::Snapshot { rev: 4, .. }));
    }

    #[test]
    fn rebase_realigns_revs_and_forces_resync() {
        let mut hub = StreamHub::new(StreamConfig::default());
        let sub = hub.subscribe("store.movements");
        for seq in 1..=3u64 {
            hub.publish("store.movements", seq, &[seq as u8]);
        }
        let src = TableSource {
            log: Some((1..=3).map(|s| rec(s, "store.movements", &[s as u8])).collect()),
            snaps: [("store.movements".to_string(), b"POST".to_vec())].into(),
        };
        assert_eq!(hub.drain(sub, &src).len(), 3);
        // Crash + recovery rolled the engine back to 2 records (torn
        // tail truncated): the rebased head must follow the log, and
        // the already-ahead cursor must resync rather than wait at a
        // rev that will never come again.
        let rolled = TableSource {
            log: Some((1..=2).map(|s| rec(s, "store.movements", &[s as u8])).collect()),
            snaps: [("store.movements".to_string(), b"POST".to_vec())].into(),
        };
        hub.rebase(&rolled);
        assert_eq!(hub.head_rev("store.movements"), 2);
        let got = hub.drain(sub, &rolled);
        assert!(matches!(&got[0], StreamEvent::Snapshot { rev: 2, bytes } if &**bytes == b"POST"));
    }

    #[test]
    fn rebase_without_a_log_restarts_revs_behind_a_snapshot() {
        let mut hub = StreamHub::new(StreamConfig::default());
        let sub = hub.subscribe("midas.base");
        for seq in 1..=3u64 {
            hub.publish("midas.base", seq, &[seq as u8]);
        }
        let src = TableSource {
            log: None,
            snaps: [("midas.base".to_string(), b"CKPT".to_vec())].into(),
        };
        assert_eq!(hub.drain(sub, &NullSource).len(), 3);
        hub.rebase(&src);
        assert_eq!(hub.head_rev("midas.base"), 0);
        // Head 0 with a forced resync: the cursor already applied three
        // deltas from the rolled-back history, so it must be handed the
        // recovered state — even at head 0 — not silently realigned.
        let got = hub.drain(sub, &src);
        assert!(matches!(&got[0], StreamEvent::Snapshot { rev: 0, bytes } if &**bytes == b"CKPT"));
        hub.publish("midas.base", 7, b"new-epoch");
        let got = hub.drain(sub, &src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rev(), 1, "revs restart in the new epoch");
    }

    #[test]
    fn dropped_subscribers_stay_silent_and_handles_are_stable() {
        let mut hub = StreamHub::new(StreamConfig::default());
        let a = hub.subscribe_live("store.movements");
        let b = hub.subscribe_live("store.movements");
        hub.drop_subscriber(a);
        hub.publish("store.movements", 1, b"x");
        assert!(hub.drain(a, &NullSource).is_empty());
        assert!(!hub.is_live(a));
        assert_eq!(hub.drain(b, &NullSource).len(), 1);
        assert_eq!(hub.live_subscribers(), 1);
    }

    #[test]
    fn a_million_cursors_share_one_ring() {
        let mut hub = StreamHub::new(StreamConfig { ring_cap: 8 });
        let subs: Vec<SubscriberId> = (0..10_000)
            .map(|_| hub.subscribe_live("store.movements"))
            .collect();
        hub.publish("store.movements", 1, &[0u8; 128]);
        let src = NullSource;
        let mut total = 0usize;
        for &s in &subs {
            let got = hub.drain(s, &src);
            total += got.len();
            // Every cursor sees the SAME allocation.
            if let StreamEvent::Delta { bytes, .. } = &got[0] {
                assert_eq!(bytes.len(), 128);
            }
        }
        assert_eq!(total, 10_000);
        let st = hub.stats();
        assert_eq!(st.encoded, 1, "one encode regardless of fan-out");
        assert_eq!(st.delivered, 10_000);
        assert_eq!(st.encoded_bytes, 128);
    }
}
