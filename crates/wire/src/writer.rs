/// Append-only encoder producing canonical wire bytes.
///
/// All multi-byte integers are little-endian; lengths and counts use
/// LEB128 varints. See the crate docs for the format overview.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varu64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a signed integer with zig-zag + LEB128 encoding.
    pub fn put_vari64(&mut self, v: i64) {
        self.put_varu64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian.
    ///
    /// NaN payloads are canonicalised so equal-by-meaning values encode
    /// identically (required for signing).
    pub fn put_f64(&mut self, v: f64) {
        let bits = if v.is_nan() {
            f64::NAN.to_bits()
        } else {
            v.to_bits()
        };
        self.put_u64(bits);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varu64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varu64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes raw bytes with no length prefix (caller manages framing).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Current write position, for [`Writer::bytes_from`] /
    /// [`Writer::patch_u32`] bookkeeping.
    #[must_use]
    pub fn mark(&self) -> usize {
        self.buf.len()
    }

    /// Reserves a 4-byte little-endian `u32` slot (written as zeros)
    /// and returns its offset for a later [`Writer::patch_u32`].
    ///
    /// This is the allocation-free framing path: instead of encoding a
    /// body into an intermediate `Vec` to learn its length, callers
    /// reserve the prefix, encode the body in place, and patch the slot
    /// with `mark() - slot - 4`.
    pub fn reserve_u32(&mut self) -> usize {
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0; 4]);
        at
    }

    /// Overwrites a previously reserved 4-byte slot with `v`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `at` was not obtained from [`Writer::reserve_u32`] (or
    /// an equivalent in-bounds offset with 4 bytes of room).
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Borrows everything written since `mark` (exclusive of nothing —
    /// `bytes_from(0)` is the whole buffer).
    #[must_use]
    pub fn bytes_from(&self, mark: usize) -> &[u8] {
        &self.buf[mark..]
    }

    /// Drops everything written since `mark`.
    pub fn truncate_to(&mut self, mark: usize) {
        self.buf.truncate(mark);
    }

    /// Consumes the writer into a shared, cheap-to-clone [`Bytes`]
    /// view — the borrowed-write path: encode once, fan out by
    /// refcount.
    #[must_use]
    pub fn freeze(self) -> crate::Bytes {
        crate::Bytes::from_vec(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_single_byte_values() {
        for v in 0u64..128 {
            let mut w = Writer::new();
            w.put_varu64(v);
            assert_eq!(w.as_bytes(), &[v as u8]);
        }
    }

    #[test]
    fn varint_multi_byte() {
        let mut w = Writer::new();
        w.put_varu64(300);
        assert_eq!(w.as_bytes(), &[0xac, 0x02]);
    }

    #[test]
    fn zigzag_small_negatives_are_small() {
        let mut w = Writer::new();
        w.put_vari64(-1);
        assert_eq!(w.as_bytes(), &[1]);
        let mut w = Writer::new();
        w.put_vari64(1);
        assert_eq!(w.as_bytes(), &[2]);
    }

    #[test]
    fn nan_is_canonical() {
        let mut w1 = Writer::new();
        w1.put_f64(f64::NAN);
        let mut w2 = Writer::new();
        w2.put_f64(-f64::NAN);
        assert_eq!(w1.as_bytes(), w2.as_bytes());
    }

    #[test]
    fn reserve_patch_matches_two_pass_encoding() {
        // Length-prefix a body without the intermediate Vec...
        let mut w = Writer::new();
        let slot = w.reserve_u32();
        let body_start = w.mark();
        w.put_str("hall-a");
        w.put_u64(42);
        let body_len = (w.mark() - body_start) as u32;
        w.patch_u32(slot, body_len);
        // ...and compare against the naive encode-then-prefix path.
        let mut body = Writer::new();
        body.put_str("hall-a");
        body.put_u64(42);
        let mut naive = Writer::new();
        naive.put_u32(body.len() as u32);
        naive.put_raw(body.as_bytes());
        assert_eq!(w.as_bytes(), naive.as_bytes());
        assert_eq!(w.bytes_from(body_start), body.as_bytes());
    }

    #[test]
    fn truncate_to_discards_a_partial_frame() {
        let mut w = Writer::new();
        w.put_u32(7);
        let mark = w.mark();
        w.put_str("doomed");
        w.truncate_to(mark);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn freeze_shares_without_copying() {
        let mut w = Writer::new();
        w.put_str("once");
        let encoded = w.as_bytes().to_vec();
        let b = w.freeze();
        let views: Vec<crate::Bytes> = (0..8).map(|_| b.clone()).collect();
        assert_eq!(b.ref_count(), 9);
        for v in &views {
            assert_eq!(&**v, &encoded[..]);
        }
    }

    /// The encode path must stay allocation-lean enough that framing
    /// throughput is disk-shaped, not allocator-shaped. The floor is
    /// deliberately loose (debug builds, shared CI hosts) — it exists
    /// to catch an accidental per-record `Vec` creeping back in, which
    /// costs an order of magnitude, not percents.
    #[test]
    fn encode_throughput_floor() {
        const RECORDS: usize = 20_000;
        const PAYLOAD: usize = 64;
        let payload = [0xabu8; PAYLOAD];
        let mut w = Writer::with_capacity(RECORDS * (PAYLOAD + 16));
        let start = std::time::Instant::now();
        for i in 0..RECORDS {
            let slot = w.reserve_u32();
            let body = w.mark();
            w.put_u64(i as u64);
            w.put_raw(&payload);
            let len = (w.mark() - body) as u32;
            w.patch_u32(slot, len);
        }
        let secs = start.elapsed().as_secs_f64();
        let mb = w.len() as f64 / (1024.0 * 1024.0);
        assert!(
            mb / secs > 8.0,
            "framed encode ran at {:.1} MB/s — a per-record allocation regression?",
            mb / secs
        );
    }
}
