//! The permission-checked system interface.
//!
//! Everything side-effecting that VM code (and therefore *advice* code)
//! can do goes through a named system operation gated by a
//! [`Permission`]. This is the enforcement point of the PROSE sandbox:
//! the hosting application runs with all permissions, while advice runs
//! with whatever its extension package was granted.

use crate::error::{exception_class, VmError};
use crate::perm::Permission;
use crate::value::Value;
use crate::vm::Vm;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Implementation of a system operation.
pub type SysFn = Arc<dyn Fn(&mut Vm, Vec<Value>) -> Result<Value, VmError> + Send + Sync>;

pub(crate) struct SysEntry {
    pub(crate) name: Arc<str>,
    pub(crate) perm: Option<Permission>,
    pub(crate) f: SysFn,
}

impl fmt::Debug for SysEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SysEntry({}, perm={:?})", self.name, self.perm)
    }
}

/// Registry of named system operations.
#[derive(Debug, Default)]
pub struct SysRegistry {
    by_name: HashMap<Arc<str>, u32>,
    entries: Vec<SysEntry>,
}

impl SysRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a system operation guarded by `perm`
    /// (`None` means unguarded). Returns its dense index.
    pub fn register(
        &mut self,
        name: impl AsRef<str>,
        perm: Option<Permission>,
        f: SysFn,
    ) -> u32 {
        let name: Arc<str> = Arc::from(name.as_ref());
        if let Some(&idx) = self.by_name.get(&name) {
            self.entries[idx as usize] = SysEntry {
                name: name.clone(),
                perm,
                f,
            };
            return idx;
        }
        let idx = self.entries.len() as u32;
        self.entries.push(SysEntry {
            name: name.clone(),
            perm,
            f,
        });
        self.by_name.insert(name, idx);
        idx
    }

    /// Resolves a name to its index.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The permission guarding an operation.
    pub fn perm_of(&self, idx: u32) -> Option<Permission> {
        self.entries.get(idx as usize).and_then(|e| e.perm)
    }

    /// The name of an operation.
    pub fn name_of(&self, idx: u32) -> Option<Arc<str>> {
        self.entries.get(idx as usize).map(|e| e.name.clone())
    }

    pub(crate) fn entry(&self, idx: u32) -> Option<(&SysEntry, SysFn)> {
        self.entries
            .get(idx as usize)
            .map(|e| (e, e.f.clone()))
    }

    /// Number of registered operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no operation is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Builds the `SecurityException` raised when an operation is attempted
/// without its permission.
pub fn security_violation(op: &str, perm: Permission) -> VmError {
    VmError::exception(
        exception_class::SECURITY,
        format!("operation {op:?} requires permission {perm}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = SysRegistry::new();
        let idx = reg.register("print", Some(Permission::Print), Arc::new(|_, _| Ok(Value::Null)));
        assert_eq!(reg.lookup("print"), Some(idx));
        assert_eq!(reg.perm_of(idx), Some(Permission::Print));
        assert_eq!(reg.name_of(idx).unwrap().as_ref(), "print");
        assert_eq!(reg.lookup("missing"), None);
    }

    #[test]
    fn replace_keeps_index() {
        let mut reg = SysRegistry::new();
        let a = reg.register("op", None, Arc::new(|_, _| Ok(Value::Int(1))));
        let b = reg.register("op", Some(Permission::Net), Arc::new(|_, _| Ok(Value::Int(2))));
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.perm_of(a), Some(Permission::Net));
    }

    #[test]
    fn violation_is_security_exception() {
        let err = security_violation("net.send", Permission::Net);
        assert_eq!(
            err.as_exception().unwrap().class.as_ref(),
            exception_class::SECURITY
        );
    }
}
