use std::fmt;

/// Error produced when decoding wire-format bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Byte offset at which the failed read started.
        offset: usize,
        /// Number of bytes the read required.
        needed: usize,
        /// Number of bytes actually remaining.
        have: usize,
    },
    /// A length prefix exceeded [`crate::MAX_LEN`].
    LengthTooLarge {
        /// The declared length.
        declared: u64,
    },
    /// A varint used more than 10 bytes or overflowed 64 bits.
    VarintOverflow,
    /// A string field did not contain valid UTF-8.
    InvalidUtf8,
    /// An enum tag byte was not one of the expected values.
    InvalidTag {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The offending tag.
        tag: u8,
        /// Byte offset of the offending tag byte.
        offset: usize,
    },
    /// Bytes remained in the input after the value was decoded.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
    /// A decoded value violated an invariant of its type.
    Invalid {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// Human-readable description of the violation.
        reason: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof {
                offset,
                needed,
                have,
            } => {
                write!(
                    f,
                    "unexpected end of input at byte {offset}: needed {needed} bytes, have {have}"
                )
            }
            WireError::LengthTooLarge { declared } => {
                write!(f, "declared length {declared} exceeds limit")
            }
            WireError::VarintOverflow => write!(f, "varint overflowed 64 bits"),
            WireError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::InvalidTag {
                type_name,
                tag,
                offset,
            } => {
                write!(
                    f,
                    "invalid tag {tag} at byte {offset} while decoding {type_name}"
                )
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            WireError::Invalid { type_name, reason } => {
                write!(f, "invalid {type_name}: {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}
