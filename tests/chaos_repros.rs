//! Replays every committed chaos repro under both epoch drivers
//! (DESIGN.md §12).
//!
//! Each `tests/repros/*.repro` file is a minimized scenario that once
//! exposed a real bug; the file stays committed after the fix so the
//! bug can never quietly return. A repro that fails here means a
//! regression of the exact invariant it was minimized against — run
//! `cargo run -p pmp-chaos -- --replay tests/repros/<file>` to see the
//! violation text.

use pmp::chaos::{exec, repro};

fn repro_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/repros must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "repro"))
        .collect();
    files.sort();
    files
}

#[test]
fn the_repro_corpus_is_not_empty() {
    assert!(
        !repro_files().is_empty(),
        "tests/repros holds the chaos corpus; it should never be empty"
    );
}

#[test]
fn every_committed_repro_replays_green() {
    for path in repro_files() {
        let bytes = std::fs::read(&path).unwrap();
        let sc = repro::load(&bytes)
            .unwrap_or_else(|e| panic!("{}: undecodable: {e}", path.display()));
        let cross = exec::run_cross(&sc);
        assert!(
            cross.violations.is_empty(),
            "{}: regressed:\n{}",
            path.display(),
            cross
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(!cross.serial.aborted && !cross.parallel.aborted);
    }
}

#[test]
fn repro_files_are_canonical_bytes() {
    // `save(load(f)) == f`: the corpus stays byte-stable, so a repro
    // diff in review always means a semantic change to the scenario.
    // A file with flight dumps canonicalizes as `v2`; one without, as
    // `v1` — an empty-flight `v2` file is not canonical.
    for path in repro_files() {
        let bytes = std::fs::read(&path).unwrap();
        let (sc, flight) = repro::load_full(&bytes).unwrap();
        let canonical = if flight.is_empty() {
            repro::save(&sc)
        } else {
            repro::save_with_flight(&sc, &flight)
        };
        assert_eq!(
            canonical, bytes,
            "{}: not in canonical serialized form",
            path.display()
        );
    }
}
