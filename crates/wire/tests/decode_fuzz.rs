//! Deterministic decode-fuzz smoke test (ISSUE 5 satellite).
//!
//! The feature-gated proptests throw random bytes at the decoders, but
//! the offline default build never runs them. This suite pins the error
//! *positions* instead: a fixed probe message is truncated at every
//! interesting boundary and patched with bad tag bytes, and each case
//! asserts the exact `UnexpectedEof { offset, needed, have }` /
//! `InvalidTag { offset, .. }` the decoder must report. Offsets are what
//! pmp-durable's torn-tail reporting and the chaos `.repro` loader lean
//! on, so they are part of the wire contract, not a debugging nicety.

use pmp_wire::{from_bytes, to_bytes, wire_struct, Reader, Wire, WireError, Writer};

#[derive(Debug, PartialEq, Clone)]
struct Probe {
    name: String,
    armed: bool,
    count: u64,
    kind: Kind,
}

wire_struct!(Probe {
    name: String,
    armed: bool,
    count: u64,
    kind: Kind
});

#[derive(Debug, PartialEq, Clone)]
enum Kind {
    Idle,
    Busy(u32),
}

impl Wire for Kind {
    fn encode(&self, w: &mut Writer) {
        match self {
            Kind::Idle => w.put_u8(0),
            Kind::Busy(n) => {
                w.put_u8(1);
                w.put_u32(*n);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Kind::Idle),
            1 => Ok(Kind::Busy(r.get_u32()?)),
            tag => Err(r.bad_tag("Kind", tag)),
        }
    }
}

fn probe() -> Probe {
    Probe {
        name: "hall-a".into(),
        armed: true,
        count: 7,
        kind: Kind::Busy(0xABCD),
    }
}

/// Byte layout the tables below index into:
///
/// ```text
/// offset  0       1..7      7      8..16    16    17..21
/// field   len=6   "hall-a"  bool   u64 LE   tag   u32 LE
/// ```
fn probe_bytes() -> Vec<u8> {
    let bytes = to_bytes(&probe());
    assert_eq!(bytes.len(), 21, "layout drifted; fix the tables");
    bytes
}

#[test]
fn truncations_report_exact_offset_needed_have() {
    let bytes = probe_bytes();
    // (cut input to this length, expected offset / needed / have)
    let cases: &[(usize, usize, usize, usize)] = &[
        (0, 0, 1, 0),   // string length varint byte missing
        (1, 1, 6, 0),   // string body entirely missing
        (3, 1, 6, 2),   // string body cut mid-way
        (7, 7, 1, 0),   // bool byte missing
        (8, 8, 8, 0),   // u64 entirely missing
        (12, 8, 8, 4),  // u64 cut mid-way
        (16, 16, 1, 0), // enum tag byte missing
        (17, 17, 4, 0), // enum payload entirely missing
        (19, 17, 4, 2), // enum payload cut mid-way
    ];
    for &(cut, offset, needed, have) in cases {
        assert_eq!(
            from_bytes::<Probe>(&bytes[..cut]),
            Err(WireError::UnexpectedEof {
                offset,
                needed,
                have,
            }),
            "cut at {cut}"
        );
    }
}

#[test]
fn every_strict_prefix_fails_cleanly_and_the_full_message_decodes() {
    let bytes = probe_bytes();
    for cut in 0..bytes.len() {
        assert!(
            from_bytes::<Probe>(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    assert_eq!(from_bytes::<Probe>(&bytes).unwrap(), probe());
}

#[test]
fn bad_tags_report_exact_offsets() {
    // (byte index to patch, patch value, type that rejects it)
    let cases: &[(usize, u8, &str)] = &[(7, 3, "bool"), (16, 9, "Kind")];
    for &(index, patch, type_name) in cases {
        let mut bytes = probe_bytes();
        bytes[index] = patch;
        assert_eq!(
            from_bytes::<Probe>(&bytes),
            Err(WireError::InvalidTag {
                type_name,
                tag: patch,
                offset: index,
            }),
            "patch at {index}"
        );
    }
}

#[test]
fn option_tag_and_nested_container_offsets() {
    // Option tags reject 2+ with the tag's own offset...
    assert_eq!(
        from_bytes::<Option<u32>>(&[2]),
        Err(WireError::InvalidTag {
            type_name: "Option",
            tag: 2,
            offset: 0,
        })
    );
    // ...and an element cut inside a container reports the position of
    // the failed inner read, not the container's start.
    let bytes = to_bytes(&vec!["ab".to_string(), "cdef".to_string()]);
    // layout: count=2 @0 | len=2 @1, "ab" @2..4 | len=4 @4, "cdef" @5..9
    assert_eq!(
        from_bytes::<Vec<String>>(&bytes[..6]),
        Err(WireError::UnexpectedEof {
            offset: 5,
            needed: 4,
            have: 1,
        })
    );
}

#[test]
fn eof_display_names_the_shortfall() {
    let err = from_bytes::<u64>(&[1, 2, 3]).unwrap_err();
    assert_eq!(
        err.to_string(),
        "unexpected end of input at byte 0: needed 8 bytes, have 3"
    );
}
