//! Cheap-to-clone shared byte slices.
//!
//! [`Bytes`] is the borrowed-*write* counterpart of the reader's
//! borrowed `read_str`/`read_raw` path: an encoder produces one
//! canonical buffer, freezes it into an `Arc`-backed [`Bytes`], and
//! every consumer afterwards holds a refcounted view — cloning is a
//! pointer bump, slicing is arithmetic, and no consumer can mutate the
//! bytes out from under another. The stream fan-out layer relies on
//! this to serialize each delta exactly once regardless of how many
//! subscribers drain it.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte slice.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty slice (no allocation is shared).
    #[must_use]
    pub fn empty() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Takes ownership of a buffer without copying it.
    #[must_use]
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    /// Copies a borrowed slice into a fresh shared buffer.
    #[must_use]
    pub fn copy_from(b: &[u8]) -> Bytes {
        Bytes::from_vec(b.to_vec())
    }

    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, exactly like
    /// slice indexing.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> Bytes {
        assert!(start <= end && end <= self.len(), "Bytes::slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// How many views (including this one) share the backing buffer.
    #[must_use]
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_slice_share_one_allocation() {
        let b = Bytes::from_vec(vec![1, 2, 3, 4, 5]);
        let head = b.slice(0, 2);
        let tail = b.slice(2, 5);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(&*tail, &[3, 4, 5]);
        assert_eq!(b.ref_count(), 3);
        drop(head);
        assert_eq!(b.ref_count(), 2);
    }

    #[test]
    fn clone_is_refcount_not_copy() {
        let b = Bytes::from_vec(vec![9; 64]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.ref_count(), 2);
        assert!(std::ptr::eq(b.as_slice().as_ptr(), c.as_slice().as_ptr()));
    }

    #[test]
    fn empty_and_bounds() {
        let e = Bytes::empty();
        assert!(e.is_empty());
        let b = Bytes::copy_from(&[1, 2, 3]);
        let whole = b.slice(0, 3);
        assert_eq!(whole, b);
        let nested = whole.slice(1, 2);
        assert_eq!(&*nested, &[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_past_end_panics() {
        let _ = Bytes::copy_from(&[1]).slice(0, 2);
    }
}
