//! End-to-end tests for the static-analysis admission gate: a base
//! station ships signed-but-unsafe extensions to a robot, and
//! `midas::receiver` must reject them *before weaving* — with the
//! verdict and per-pass latency mirrored into telemetry. The paper
//! admits on cryptographic trust alone; this gate supplies the
//! JVM-verifier role our VM otherwise lacks.

use pmp::crypto::{KeyPair, Principal};
use pmp::discovery::Registrar;
use pmp::midas::{
    AdaptationService, ExtensionBase, ExtensionMeta, ExtensionPackage, ReceiverEvent,
    ReceiverPolicy, SignedExtension,
};
use pmp::net::prelude::*;
use pmp::prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod, Prose};
use pmp::telemetry::{Shared, Subsystem};
use pmp::vm::builder::MethodBuilder;
use pmp::vm::prelude::*;

const SEC: u64 = 1_000_000_000;

fn any5() -> Vec<String> {
    vec![
        "any".into(),
        "str".into(),
        "any".into(),
        "any".into(),
        "any".into(),
    ]
}

/// A script aspect whose single advice method runs `ops`, bound to
/// `crosscut`.
fn script_aspect(name: &str, class_name: &str, crosscut: &str, ops: Vec<Op>) -> PortableAspect {
    let mut body = MethodBuilder::new();
    for op in ops {
        body.op(op);
    }
    let class = PortableClass {
        name: class_name.into(),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "onCall".into(),
            params: any5(),
            ret: "any".into(),
            body: body.build(),
        }],
    };
    let aspect = Aspect::script(
        name,
        class,
        vec![(Crosscut::parse(crosscut).unwrap(), "onCall".into(), 0)],
    );
    PortableAspect::try_from(&aspect).unwrap()
}

fn package(id: &str, permissions: Vec<String>, aspect: PortableAspect) -> ExtensionPackage {
    ExtensionPackage {
        meta: ExtensionMeta {
            id: id.into(),
            version: 1,
            description: format!("{id} extension"),
            requires: vec![],
            permissions,
            implicit: false,
        },
        aspect,
    }
}

struct World {
    sim: Simulator,
    base_node: NodeId,
    registrar: Registrar,
    base: ExtensionBase,
    robot_node: NodeId,
    vm: Vm,
    prose: Prose,
    receiver: AdaptationService,
    receiver_events: Vec<ReceiverEvent>,
    telemetry: Shared,
    authority: KeyPair,
}

fn world() -> World {
    let mut sim = Simulator::new(41);
    sim.add_area("hall-a", Position::new(0.0, 0.0), Position::new(50.0, 50.0));
    let base_node = sim.add_node("base:hall-a", Position::new(25.0, 25.0), 60.0);
    let robot_node = sim.add_node("robot:1:1", Position::new(30.0, 25.0), 60.0);

    let mut registrar = Registrar::new(base_node, "lookup:hall-a");
    registrar.start(&mut sim);
    let mut base = ExtensionBase::new(base_node, base_node);
    base.start(&mut sim);

    let authority = KeyPair::from_seed(b"authority:hall-a");
    let mut policy = ReceiverPolicy::new();
    policy
        .trust
        .add(Principal::new("authority:hall-a", authority.public_key()));
    policy.set_signer_cap(
        "authority:hall-a",
        Permissions::none()
            .with(Permission::Print)
            .with(Permission::Net),
    );

    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Motor")
            .field("position", TypeSig::Int)
            .method("rotate", [TypeSig::Int], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    let prose = Prose::attach(&mut vm);

    let telemetry = Shared::new();
    let mut receiver = AdaptationService::new(robot_node, "robot:1:1", policy);
    receiver.attach_telemetry(&telemetry);
    receiver.start(&mut sim);

    World {
        sim,
        base_node,
        registrar,
        base,
        robot_node,
        vm,
        prose,
        receiver,
        receiver_events: Vec::new(),
        telemetry,
        authority,
    }
}

impl World {
    fn offer(&mut self, pkg: &ExtensionPackage) {
        let sealed = SignedExtension::seal("authority:hall-a", &self.authority, pkg);
        self.base.catalog.put(sealed);
    }

    fn pump(&mut self, ns: u64) {
        let until = self.sim.now().plus(ns);
        loop {
            match self.sim.peek_next() {
                Some(t) if t <= until => {
                    self.sim.step();
                }
                _ => break,
            }
            for inc in self.sim.drain_inbox(self.base_node) {
                self.registrar.handle(&mut self.sim, &inc);
                self.base.handle(&mut self.sim, &inc);
            }
            for inc in self.sim.drain_inbox(self.robot_node) {
                self.receiver_events.extend(self.receiver.handle(
                    &mut self.sim,
                    &mut self.vm,
                    &self.prose,
                    &inc,
                ));
            }
        }
    }

    fn rejection_reason(&self, id: &str) -> Option<String> {
        self.receiver_events.iter().find_map(|e| match e {
            ReceiverEvent::Rejected { ext_id, reason } if ext_id == id => Some(reason.clone()),
            _ => None,
        })
    }

    fn journal_details(&self, event_name: &str) -> Vec<String> {
        self.telemetry.with(|t| {
            t.journal
                .events()
                .filter(|e| e.subsystem == Subsystem::Midas && e.name == event_name)
                .map(|e| e.detail.clone())
                .collect()
        })
    }
}

#[test]
fn underflowing_package_is_rejected_before_weaving() {
    let mut w = world();
    // Pop on an empty stack: signed by a fully trusted authority, but
    // structurally unsound bytecode.
    let pkg = package(
        "hall-a/underflow",
        vec!["print".into()],
        script_aspect("underflow", "Uf1", "before * Motor.*(..)", vec![Op::Pop, Op::Ret]),
    );
    w.offer(&pkg);
    w.pump(5 * SEC);

    assert!(!w.receiver.is_installed("hall-a/underflow"));
    let reason = w.rejection_reason("hall-a/underflow").expect("nack reason");
    assert!(
        reason.contains("analysis: bytecode-verifier") && reason.contains("underflow"),
        "{reason}"
    );
    // Rejected before weaving: the aspect class never reached the VM
    // and nothing is woven.
    assert!(w.prose.woven().is_empty());
    assert!(w.vm.class_id("Uf1").is_none());
    // The base may redeliver after the nack; every delivery must be
    // re-rejected and none accepted.
    assert!(w.telemetry.counter_value("midas.analyze.rejected") >= 1);
    assert_eq!(w.telemetry.counter_value("midas.analyze.accepted"), 0);
    // The journal names the failing pass.
    let details = w.journal_details("midas.analyze");
    assert!(
        details
            .iter()
            .any(|d| d.contains("REJECTED by bytecode-verifier")),
        "{details:?}"
    );
}

#[test]
fn wild_jump_package_is_rejected() {
    let mut w = world();
    let pkg = package(
        "hall-a/wildjump",
        vec!["print".into()],
        script_aspect("wildjump", "Wj1", "before * Motor.*(..)", vec![Op::Jump(99)]),
    );
    w.offer(&pkg);
    w.pump(5 * SEC);

    assert!(!w.receiver.is_installed("hall-a/wildjump"));
    let reason = w.rejection_reason("hall-a/wildjump").unwrap();
    assert!(
        reason.contains("bytecode-verifier") && reason.contains("jump target"),
        "{reason}"
    );
}

#[test]
fn overprivileged_package_is_rejected_by_permission_inference() {
    let mut w = world();
    // Uses `print` but declares no permissions at all: at run time the
    // sandbox would throw mid-advice; the gate refuses it up front.
    let pkg = package(
        "hall-a/sneaky",
        vec![],
        script_aspect(
            "sneaky",
            "Sn1",
            "before * Motor.*(..)",
            vec![
                Op::Load(2),
                Op::Sys {
                    name: "print".into(),
                    argc: 1,
                },
                Op::Pop,
                Op::Ret,
            ],
        ),
    );
    w.offer(&pkg);
    w.pump(5 * SEC);

    assert!(!w.receiver.is_installed("hall-a/sneaky"));
    let reason = w.rejection_reason("hall-a/sneaky").unwrap();
    assert!(
        reason.contains("permission-inference") && reason.contains("undeclared"),
        "{reason}"
    );
    let details = w.journal_details("midas.analyze");
    assert!(
        details
            .iter()
            .any(|d| d.contains("REJECTED by permission-inference")),
        "{details:?}"
    );
}

#[test]
fn clean_package_passes_the_gate_and_installs() {
    let mut w = world();
    let pkg = package(
        "hall-a/clean",
        vec!["print".into()],
        script_aspect(
            "clean",
            "Cl1",
            "before * Motor.*(..)",
            vec![
                Op::Load(2),
                Op::Sys {
                    name: "print".into(),
                    argc: 1,
                },
                Op::Pop,
                Op::Ret,
            ],
        ),
    );
    w.offer(&pkg);
    w.pump(5 * SEC);

    assert!(w.receiver.is_installed("hall-a/clean"));
    assert_eq!(w.telemetry.counter_value("midas.analyze.accepted"), 1);
    assert_eq!(w.telemetry.counter_value("midas.analyze.rejected"), 0);
    // Per-pass latency histograms were recorded.
    let lines = w.telemetry.to_json_lines();
    for h in [
        "midas.analyze.bytecode_ns",
        "midas.analyze.perms_ns",
        "midas.analyze.termination_ns",
    ] {
        assert!(lines.contains(h), "missing histogram {h}");
    }
    // And the woven advice actually runs.
    let motor = w.vm.new_object("Motor").unwrap();
    w.vm
        .call("Motor", "rotate", motor, vec![Value::Int(30)])
        .unwrap();
    assert_eq!(w.vm.take_output(), vec!["Motor.rotate".to_string()]);
}

#[test]
fn disabling_the_gate_restores_trust_only_admission() {
    let mut w = world();
    w.receiver.policy.analysis.enabled = false;
    // The underflowing package now sails through (the paper's
    // behaviour: signature + sandbox, no static checks).
    let pkg = package(
        "hall-a/underflow",
        vec!["print".into()],
        script_aspect("underflow", "Uf1", "before * Motor.*(..)", vec![Op::Pop, Op::Ret]),
    );
    w.offer(&pkg);
    w.pump(5 * SEC);
    assert!(w.receiver.is_installed("hall-a/underflow"));
}

#[test]
fn equal_priority_interference_is_journaled_but_not_fatal_by_default() {
    let mut w = world();
    let a = package(
        "hall-a/mon-a",
        vec![],
        script_aspect("mon-a", "MonA1", "before * Motor.*(..)", vec![Op::Ret]),
    );
    let b = package(
        "hall-a/mon-b",
        vec![],
        script_aspect("mon-b", "MonB1", "before * Motor.*(..)", vec![Op::Ret]),
    );
    w.offer(&a);
    w.offer(&b);
    w.pump(5 * SEC);

    assert!(w.receiver.is_installed("hall-a/mon-a"));
    assert!(w.receiver.is_installed("hall-a/mon-b"));
    assert!(w.telemetry.counter_value("midas.analyze.interference") >= 1);
    let details = w.journal_details("midas.analyze");
    assert!(
        details.iter().any(|d| d.contains("ambiguous-order")),
        "{details:?}"
    );
}

#[test]
fn interference_rejection_unweaves_the_newcomer() {
    let mut w = world();
    w.receiver.policy.analysis.reject_on_interference = true;
    let a = package(
        "hall-a/writer-a",
        vec![],
        script_aspect("writer-a", "WrA1", "set Motor.position", vec![Op::Ret]),
    );
    let b = package(
        "hall-a/writer-b",
        vec![],
        script_aspect("writer-b", "WrB1", "set Motor.position", vec![Op::Ret]),
    );
    w.offer(&a);
    w.offer(&b);
    w.pump(5 * SEC);

    // Exactly one of the two field writers survives; the other was
    // woven, found to interfere, and unwoven again.
    let survivors = [
        w.receiver.is_installed("hall-a/writer-a"),
        w.receiver.is_installed("hall-a/writer-b"),
    ];
    assert_eq!(survivors.iter().filter(|s| **s).count(), 1, "{survivors:?}");
    assert_eq!(w.prose.woven().len(), 1);
    let rejected = w
        .receiver_events
        .iter()
        .find_map(|e| match e {
            ReceiverEvent::Rejected { ext_id, reason } => Some((ext_id.clone(), reason.clone())),
            _ => None,
        })
        .expect("one writer must be rejected");
    assert!(
        rejected.1.contains("analysis: interference"),
        "{rejected:?}"
    );
}
