//! HMAC-SHA256 (RFC 2104), used for deterministic nonce derivation and
//! keyed integrity checks.

use crate::sha256::{sha256, Digest, Sha256};

const BLOCK: usize = 64;

/// Computes HMAC-SHA256 of `msg` under `key`.
///
/// ```
/// let tag = pmp_crypto::hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert!(tag.to_string().starts_with("f7bc83f4"));
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(sha256(key).as_bytes());
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_string(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_string(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_string(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // Property tests need the external `proptest` crate; the offline
    // default build gates them behind the (empty) `proptest` feature.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_key_sensitivity(
                k1 in proptest::collection::vec(any::<u8>(), 1..64),
                k2 in proptest::collection::vec(any::<u8>(), 1..64),
                msg in proptest::collection::vec(any::<u8>(), 0..128),
            ) {
                prop_assume!(k1 != k2);
                prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
            }

            #[test]
            fn prop_deterministic(
                key in proptest::collection::vec(any::<u8>(), 0..200),
                msg in proptest::collection::vec(any::<u8>(), 0..200),
            ) {
                prop_assert_eq!(hmac_sha256(&key, &msg), hmac_sha256(&key, &msg));
            }
        }
    }
}
