//! Intra- and interprocedural constant propagation and folding.
//!
//! Works block-locally over a *provenance stack*: each simulated stack
//! slot remembers which in-block pc produced it and whether that
//! producer is removable (a `Const`, or a side-effect-free `Load`).
//! When every operand of a pure op is a known constant produced in the
//! same block, the operands' producers become `Nop` and the op itself
//! is rewritten to push the folded constant — [`crate::lattice::fold`]
//! mirrors the interpreter exactly and refuses any fold whose concrete
//! execution would throw, so observable behaviour is unchanged.
//!
//! The interprocedural half: a sibling method with a *constant
//! summary* — an acyclic body of provably non-throwing ops whose every
//! return yields the same constant, regardless of arguments — can be
//! called away entirely. A `CallStatic`/`CallDirect` to such a method
//! whose arguments (and, for `CallDirect`, a provably-`this` receiver)
//! were produced in-block by removable ops is replaced with the
//! summary constant. This is sound *for advice code specifically*
//! because advice executes under `begin_advice`, where method-entry /
//! method-exit hooks are suppressed — eliding the call cannot elide an
//! observable join point.
//!
//! Constant `JumpIf`/`JumpIfNot` conditions fold to `Jump` or `Nop`,
//! turning statically-dead branch arms unreachable for the DCE pass.

use crate::cfg::Cfg;
use crate::lattice::{analyze_method, fold, pure_arity};
use pmp_prose::PortableClass;
use pmp_vm::op::{Const, Op};
use std::collections::BTreeMap;

/// What one pass of constant propagation rewrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstpropStats {
    /// Pure ops folded to constants.
    pub folded: usize,
    /// Conditional branches with constant conditions resolved.
    pub branches: usize,
    /// Calls to constant-summary siblings eliminated.
    pub calls: usize,
}

impl ConstpropStats {
    /// Whether the pass changed anything (directly or by Nop-ing).
    pub fn any(&self, nops: usize) -> bool {
        self.folded + self.branches + self.calls + nops > 0
    }
}

/// One simulated stack slot with provenance.
#[derive(Debug, Clone)]
enum Slot {
    /// Produced in this block at `pc` by an op that can be deleted
    /// without observable effect (`Const`, folded const, or `Load`).
    Removable {
        pc: usize,
        konst: Option<Const>,
        self_ref: bool,
    },
    /// Anything else (block-entry values, call results, field reads…).
    Opaque,
}

impl Slot {
    fn konst(&self) -> Option<&Const> {
        match self {
            Slot::Removable { konst, .. } => konst.as_ref(),
            Slot::Opaque => None,
        }
    }
}

/// Computes the constant summary of `method`: `Some(c)` iff every
/// execution, for *any* arguments, terminates normally returning
/// exactly `c` with no observable side effect. Requirements:
///
/// - only stack-shuffling ops, `Load`/`Store`, control flow, and pure
///   ops whose operands the lattice proves constant (so the fold is
///   known not to throw);
/// - conditional branches only on constant booleans;
/// - forward jumps only (acyclic ⇒ guaranteed termination — removing
///   a call must not remove a potential fuel-exhaustion loop);
/// - every `RetVal` returns the same constant; `Ret` counts as `null`.
fn constant_summary(method: &pmp_prose::PortableMethod) -> Option<Const> {
    let body = &method.body;
    let states = analyze_method(body, method.params.len())?;
    let mut ret: Option<Const> = None;
    let mut saw_ret = false;
    for (pc, op) in body.ops.iter().enumerate() {
        let Some(state) = states[pc].as_ref() else {
            continue; // unreachable
        };
        match op {
            Op::Const(_) | Op::Dup | Op::Pop | Op::Swap | Op::Nop => {}
            Op::Load(i) | Op::Store(i) => {
                if *i as usize >= state.locals.len() {
                    return None;
                }
            }
            Op::Jump(t) => {
                if *t as usize <= pc {
                    return None; // back edge: possible non-termination
                }
            }
            Op::JumpIf(t) | Op::JumpIfNot(t) => {
                if *t as usize <= pc {
                    return None;
                }
                match state.stack.last()?.as_const() {
                    Some(Const::Bool(_)) => {}
                    _ => return None, // unknown or non-bool: could throw
                }
            }
            Op::Ret => {
                let c = Const::Null;
                if *ret.get_or_insert_with(|| c.clone()) != c {
                    return None;
                }
                saw_ret = true;
            }
            Op::RetVal => {
                let c = state.stack.last()?.as_const()?.clone();
                if *ret.get_or_insert_with(|| c.clone()) != c {
                    return None;
                }
                saw_ret = true;
            }
            pure if pure_arity(pure).is_some() => {
                let n = pure_arity(pure).unwrap();
                if state.stack.len() < n {
                    return None;
                }
                let consts: Option<Vec<Const>> = state.stack[state.stack.len() - n..]
                    .iter()
                    .map(|v| v.as_const().cloned())
                    .collect();
                fold(pure, &consts?)?; // must provably not throw
            }
            _ => return None, // calls, sys, fields, allocation, throw
        }
    }
    if saw_ret {
        ret
    } else {
        None
    }
}

/// Constant summaries for every summarisable method of `class`, plus
/// arities, keyed by method name.
pub(crate) fn summaries(class: &PortableClass) -> BTreeMap<String, (usize, Const)> {
    class
        .methods
        .iter()
        .filter_map(|m| constant_summary(m).map(|c| (m.name.clone(), (m.params.len(), c))))
        .collect()
}

/// Runs one constant-propagation pass over `class.methods[midx]`.
/// Returns the rewrite stats and the number of ops turned into `Nop`
/// (producers of folded constants, eliminated pops, dead branches).
pub fn propagate(
    class: &mut PortableClass,
    midx: usize,
    summaries: &BTreeMap<String, (usize, Const)>,
) -> (ConstpropStats, usize) {
    let params = class.methods[midx].params.len();
    let class_name = class.name.clone();
    let method_name = class.methods[midx].name.clone();
    let Some(states) = analyze_method(&class.methods[midx].body, params) else {
        return (ConstpropStats::default(), 0);
    };
    let cfg = Cfg::build(&class.methods[midx].body);
    let body = &mut class.methods[midx].body;

    let mut stats = ConstpropStats::default();
    let mut nops = 0usize;
    let nop = |ops: &mut Vec<Op>, pc: usize, nops: &mut usize| {
        if ops[pc] != Op::Nop {
            ops[pc] = Op::Nop;
            *nops += 1;
        }
    };

    for block in &cfg.blocks {
        let Some(entry) = states[block.start].as_ref() else {
            continue; // unreachable block
        };
        let mut sim: Vec<Slot> = vec![Slot::Opaque; entry.stack.len()];

        'ops: for pc in block.start..block.end {
            let op = body.ops[pc].clone();
            match &op {
                Op::Const(c) => sim.push(Slot::Removable {
                    pc,
                    konst: Some(c.clone()),
                    self_ref: false,
                }),
                Op::Load(i) => sim.push(Slot::Removable {
                    pc,
                    konst: None,
                    self_ref: *i == 0,
                }),
                Op::Store(_) => {
                    if sim.pop().is_none() {
                        break 'ops;
                    }
                }
                Op::Dup => {
                    match sim.last() {
                        Some(s) if s.konst().is_some() => {
                            let c = s.konst().unwrap().clone();
                            body.ops[pc] = Op::Const(c.clone());
                            stats.folded += 1;
                            sim.push(Slot::Removable {
                                pc,
                                konst: Some(c),
                                self_ref: false,
                            });
                        }
                        Some(_) => {
                            // Two slots now share one producer; neither
                            // may claim the right to delete it.
                            let n = sim.len();
                            sim[n - 1] = Slot::Opaque;
                            sim.push(Slot::Opaque);
                        }
                        None => break 'ops,
                    }
                }
                Op::Pop => match sim.pop() {
                    Some(Slot::Removable { pc: ppc, .. }) => {
                        // Dead push-pop pair: delete both.
                        nop(&mut body.ops, ppc, &mut nops);
                        nop(&mut body.ops, pc, &mut nops);
                    }
                    Some(Slot::Opaque) => {}
                    None => break 'ops,
                },
                Op::Swap => {
                    let n = sim.len();
                    if n < 2 {
                        break 'ops;
                    }
                    sim.swap(n - 1, n - 2);
                }
                Op::Jump(_) | Op::Ret | Op::Nop => {}
                Op::RetVal | Op::Throw(_) => {
                    sim.pop();
                }
                Op::JumpIf(t) | Op::JumpIfNot(t) => {
                    let taken_if = matches!(op, Op::JumpIf(_));
                    match sim.pop() {
                        Some(Slot::Removable {
                            pc: ppc,
                            konst: Some(Const::Bool(b)),
                            ..
                        }) => {
                            nop(&mut body.ops, ppc, &mut nops);
                            body.ops[pc] = if b == taken_if {
                                Op::Jump(*t)
                            } else {
                                Op::Nop
                            };
                            if body.ops[pc] == Op::Nop {
                                nops += 1;
                            }
                            stats.branches += 1;
                        }
                        Some(_) => {} // unknown or non-bool condition
                        None => break 'ops,
                    }
                }
                Op::CallStatic {
                    class: cname,
                    method,
                    argc,
                } if *cname == class_name => {
                    let n = *argc as usize;
                    if let Some((arity, c)) = summaries.get(method) {
                        // Never summarise away a self-recursive frame.
                        if *arity == n && *method != method_name && removable(&sim, n, false) {
                            for _ in 0..n {
                                if let Some(Slot::Removable { pc: ppc, .. }) = sim.pop() {
                                    nop(&mut body.ops, ppc, &mut nops);
                                }
                            }
                            body.ops[pc] = Op::Const(c.clone());
                            stats.calls += 1;
                            sim.push(Slot::Removable {
                                pc,
                                konst: Some(c.clone()),
                                self_ref: false,
                            });
                            continue 'ops;
                        }
                    }
                    if !pop_push(&mut sim, n, 1) {
                        break 'ops;
                    }
                }
                Op::CallDirect {
                    class: cname,
                    method,
                    argc,
                } if *cname == class_name => {
                    let n = *argc as usize;
                    if let Some((arity, c)) = summaries.get(method) {
                        // Receiver must be provably `this` (non-null).
                        if *arity == n && *method != method_name && removable(&sim, n + 1, true) {
                            for _ in 0..=n {
                                if let Some(Slot::Removable { pc: ppc, .. }) = sim.pop() {
                                    nop(&mut body.ops, ppc, &mut nops);
                                }
                            }
                            body.ops[pc] = Op::Const(c.clone());
                            stats.calls += 1;
                            sim.push(Slot::Removable {
                                pc,
                                konst: Some(c.clone()),
                                self_ref: false,
                            });
                            continue 'ops;
                        }
                    }
                    if !pop_push(&mut sim, n + 1, 1) {
                        break 'ops;
                    }
                }
                pure if pure_arity(pure).is_some() => {
                    let n = pure_arity(pure).unwrap();
                    if sim.len() < n {
                        break 'ops;
                    }
                    let consts: Option<Vec<Const>> = sim[sim.len() - n..]
                        .iter()
                        .map(|s| s.konst().cloned())
                        .collect();
                    let folded = consts.and_then(|cs| fold(pure, &cs));
                    if let Some(c) = folded {
                        for _ in 0..n {
                            if let Some(Slot::Removable { pc: ppc, .. }) = sim.pop() {
                                nop(&mut body.ops, ppc, &mut nops);
                            }
                        }
                        body.ops[pc] = Op::Const(c.clone());
                        stats.folded += 1;
                        sim.push(Slot::Removable {
                            pc,
                            konst: Some(c),
                            self_ref: false,
                        });
                    } else if !pop_push(&mut sim, n, 1) {
                        break 'ops;
                    }
                }
                other => {
                    let (pops, pushes) = opaque_effect(other);
                    if !pop_push(&mut sim, pops, pushes) {
                        break 'ops;
                    }
                }
            }
        }
    }
    (stats, nops)
}

/// Whether the top `n` slots are all removable — and, if `need_self`,
/// the bottom of those (the receiver) is provably `this`.
fn removable(sim: &[Slot], n: usize, need_self: bool) -> bool {
    if sim.len() < n {
        return false;
    }
    let top = &sim[sim.len() - n..];
    if !top.iter().all(|s| matches!(s, Slot::Removable { .. })) {
        return false;
    }
    !need_self
        || matches!(
            top.first(),
            Some(Slot::Removable { self_ref: true, .. })
        )
}

fn pop_push(sim: &mut Vec<Slot>, pops: usize, pushes: usize) -> bool {
    if sim.len() < pops {
        return false;
    }
    sim.truncate(sim.len() - pops);
    sim.extend(std::iter::repeat_with(|| Slot::Opaque).take(pushes));
    true
}

/// Stack effect of ops the pass treats as opaque (no provenance out).
fn opaque_effect(op: &Op) -> (usize, usize) {
    match op {
        Op::New(_) => (0, 1),
        Op::GetField { .. } => (1, 1),
        Op::PutField { .. } => (2, 0),
        Op::CallV { argc, .. } | Op::CallDirect { argc, .. } => (*argc as usize + 1, 1),
        Op::CallStatic { argc, .. } | Op::Sys { argc, .. } => (*argc as usize, 1),
        Op::NewArray | Op::NewBuffer | Op::ArrLen | Op::BufLen => (1, 1),
        Op::ArrGet | Op::BufGet => (2, 1),
        Op::ArrSet | Op::BufSet => (3, 0),
        _ => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_prose::PortableMethod;
    use pmp_vm::op::BytecodeBody;

    fn method(name: &str, nparams: usize, ops: Vec<Op>) -> PortableMethod {
        PortableMethod {
            name: name.into(),
            params: vec!["any".into(); nparams],
            ret: "any".into(),
            body: BytecodeBody {
                extra_locals: 0,
                ops,
                handlers: vec![],
            },
        }
    }

    fn class(methods: Vec<PortableMethod>) -> PortableClass {
        PortableClass {
            name: "A".into(),
            fields: vec![],
            methods,
        }
    }

    #[test]
    fn folds_constant_arithmetic_chain() {
        let mut c = class(vec![method(
            "m",
            0,
            vec![
                Op::Const(Const::Int(2)),
                Op::Const(Const::Int(3)),
                Op::Add,
                Op::Const(Const::Int(10)),
                Op::Mul,
                Op::RetVal,
            ],
        )]);
        let (stats, nops) = propagate(&mut c, 0, &BTreeMap::new());
        assert_eq!(stats.folded, 2);
        assert!(nops >= 3);
        assert_eq!(c.methods[0].body.ops[4], Op::Const(Const::Int(50)));
        assert_eq!(c.methods[0].body.ops[5], Op::RetVal);
    }

    #[test]
    fn folds_constant_branch_to_jump() {
        let mut c = class(vec![method(
            "m",
            0,
            vec![
                Op::Const(Const::Bool(true)), // 0
                Op::JumpIf(4),                // 1
                Op::Const(Const::Int(0)),     // 2 (dead)
                Op::RetVal,                   // 3
                Op::Const(Const::Int(1)),     // 4
                Op::RetVal,                   // 5
            ],
        )]);
        let (stats, _) = propagate(&mut c, 0, &BTreeMap::new());
        assert_eq!(stats.branches, 1);
        assert_eq!(c.methods[0].body.ops[0], Op::Nop);
        assert_eq!(c.methods[0].body.ops[1], Op::Jump(4));
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut c = class(vec![method(
            "m",
            0,
            vec![
                Op::Const(Const::Int(1)),
                Op::Const(Const::Int(0)),
                Op::Div,
                Op::RetVal,
            ],
        )]);
        let (stats, nops) = propagate(&mut c, 0, &BTreeMap::new());
        assert_eq!((stats.folded, nops), (0, 0));
        assert_eq!(c.methods[0].body.ops[2], Op::Div);
    }

    #[test]
    fn removes_dead_push_pop_pair() {
        let mut c = class(vec![method(
            "m",
            0,
            vec![Op::Load(0), Op::Pop, Op::Ret],
        )]);
        let (_, nops) = propagate(&mut c, 0, &BTreeMap::new());
        assert_eq!(nops, 2);
        assert_eq!(c.methods[0].body.ops[0], Op::Nop);
        assert_eq!(c.methods[0].body.ops[1], Op::Nop);
    }

    #[test]
    fn constant_summary_accepts_straightline_constants() {
        let m = method(
            "k",
            2,
            vec![Op::Const(Const::Int(7)), Op::RetVal],
        );
        assert_eq!(constant_summary(&m), Some(Const::Int(7)));
    }

    #[test]
    fn constant_summary_rejects_argument_dependence_and_effects() {
        assert_eq!(
            constant_summary(&method("a", 1, vec![Op::Load(1), Op::RetVal])),
            None
        );
        assert_eq!(
            constant_summary(&method(
                "b",
                0,
                vec![
                    Op::Sys {
                        name: "print".into(),
                        argc: 0
                    },
                    Op::RetVal
                ]
            )),
            None
        );
        // Back edge: could loop forever under low fuel.
        assert_eq!(
            constant_summary(&method("c", 0, vec![Op::Jump(0)])),
            None
        );
    }

    #[test]
    fn summarised_sibling_call_is_eliminated() {
        let mut c = class(vec![
            method(
                "onCall",
                0,
                vec![
                    Op::Load(0),
                    Op::Const(Const::Int(1)),
                    Op::CallDirect {
                        class: "A".into(),
                        method: "k".into(),
                        argc: 1,
                    },
                    Op::RetVal,
                ],
            ),
            method("k", 1, vec![Op::Const(Const::Int(7)), Op::RetVal]),
        ]);
        let sums = summaries(&c);
        assert_eq!(sums.get("k"), Some(&(1, Const::Int(7))));
        let (stats, _) = propagate(&mut c, 0, &sums);
        assert_eq!(stats.calls, 1);
        assert_eq!(c.methods[0].body.ops[0], Op::Nop);
        assert_eq!(c.methods[0].body.ops[1], Op::Nop);
        assert_eq!(c.methods[0].body.ops[2], Op::Const(Const::Int(7)));
    }

    #[test]
    fn call_with_opaque_receiver_is_kept() {
        // Receiver comes from a field read — could be null; the call
        // (and its potential NullPointerException) must survive.
        let mut c = class(vec![
            method(
                "onCall",
                0,
                vec![
                    Op::Load(0),
                    Op::GetField {
                        class: "A".into(),
                        field: "peer".into(),
                    },
                    Op::CallDirect {
                        class: "A".into(),
                        method: "k".into(),
                        argc: 0,
                    },
                    Op::RetVal,
                ],
            ),
            method("k", 0, vec![Op::Const(Const::Int(7)), Op::RetVal]),
        ]);
        let sums = summaries(&c);
        let (stats, _) = propagate(&mut c, 0, &sums);
        assert_eq!(stats.calls, 0);
        assert!(matches!(c.methods[0].body.ops[2], Op::CallDirect { .. }));
    }
}
