//! Motors: position-tracked rotary actuators.

use crate::device::Port;

/// Nanoseconds per degree of rotation at full power (a leisurely
/// LEGO-ish 90°/s at power 7).
pub const NS_PER_DEGREE_FULL: u64 = 11_111_111;

/// A simulated motor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Motor {
    /// The motor's port.
    pub port: Port,
    power: i64,
    position: i64,
    total_travel: u64,
}

impl Motor {
    /// Creates a motor on `port` at power 7 (full), position 0.
    pub fn new(port: Port) -> Self {
        Self {
            port,
            power: 7,
            position: 0,
            total_travel: 0,
        }
    }

    /// Device name used in logs, e.g. `"motor:A"`.
    pub fn device_name(&self) -> String {
        format!("motor:{}", self.port)
    }

    /// Current power setting (1..=7; affects rotation duration).
    pub fn power(&self) -> i64 {
        self.power
    }

    /// Sets the power (clamped to 1..=7).
    pub fn set_power(&mut self, power: i64) {
        self.power = power.clamp(1, 7);
    }

    /// Current cumulative position in degrees.
    pub fn position(&self) -> i64 {
        self.position
    }

    /// Total degrees travelled (absolute), for wear accounting.
    pub fn total_travel(&self) -> u64 {
        self.total_travel
    }

    /// Rotates by `degrees` (may be negative); returns the simulated
    /// duration in nanoseconds.
    pub fn rotate(&mut self, degrees: i64) -> u64 {
        self.position += degrees;
        self.total_travel += degrees.unsigned_abs();
        let per_degree = NS_PER_DEGREE_FULL * 7 / self.power.max(1) as u64;
        degrees.unsigned_abs().saturating_mul(per_degree)
    }

    /// Stops the motor (a no-op for position; returns a small fixed
    /// actuation delay).
    pub fn stop(&mut self) -> u64 {
        1_000_000 // 1 ms brake actuation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_tracks_position_and_travel() {
        let mut m = Motor::new(Port::A);
        m.rotate(90);
        m.rotate(-30);
        assert_eq!(m.position(), 60);
        assert_eq!(m.total_travel(), 120);
    }

    #[test]
    fn duration_scales_with_power() {
        let mut fast = Motor::new(Port::A);
        fast.set_power(7);
        let mut slow = Motor::new(Port::B);
        slow.set_power(1);
        let d_fast = fast.rotate(90);
        let d_slow = slow.rotate(90);
        assert!(d_slow > d_fast);
        assert_eq!(d_slow, d_fast * 7);
    }

    #[test]
    fn power_clamped() {
        let mut m = Motor::new(Port::A);
        m.set_power(99);
        assert_eq!(m.power(), 7);
        m.set_power(-5);
        assert_eq!(m.power(), 1);
    }

    #[test]
    fn device_name() {
        assert_eq!(Motor::new(Port::B).device_name(), "motor:B");
    }
}
