//! Base-side weave-time optimization of extension packages.
//!
//! Between admission analysis and shipping, a base may run the
//! `pmp-analyze` optimizing pipeline ([`pmp_analyze::opt`]) over a
//! package's advice bodies: interprocedural constant propagation and
//! folding, dead-code and unreachable-branch elimination, and
//! class-hierarchy devirtualisation — all translation-validated
//! against the same stack-depth verifier receivers run at admission,
//! so an optimized package can never fail a gate the original would
//! have passed.
//!
//! Only the aspect's method *bodies* change: metadata, bindings,
//! signatures, and permissions are untouched, so signing, crosscut
//! matching, versioning, and permission inference all behave
//! identically. Receivers re-verify whatever arrives — optimized or
//! not — and independently recompute hook-hoisting eligibility; they
//! never trust the base's optimization claims.

use crate::package::ExtensionPackage;
pub use pmp_analyze::opt::{MethodOptReport, OptReport};

/// Whether a base ships extension packages optimized or as authored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShipMode {
    /// Ship advice bodies exactly as authored (the paper's behaviour).
    Original,
    /// Run the weave-time optimizer before sealing (default).
    #[default]
    Optimized,
}

/// Optimizes a package's advice bodies, returning the optimized
/// package and the deterministic per-method report.
pub fn optimize_package(pkg: &ExtensionPackage) -> (ExtensionPackage, OptReport) {
    let (aspect, report) = pmp_analyze::opt::optimize_aspect(&pkg.aspect);
    (
        ExtensionPackage {
            meta: pkg.meta.clone(),
            aspect,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::ExtensionMeta;
    use pmp_prose::{Crosscut, PortableAspect, PortableBinding, PortableClass, PortableMethod};
    use pmp_vm::op::{BytecodeBody, Const, Op};

    fn pkg() -> ExtensionPackage {
        ExtensionPackage {
            meta: ExtensionMeta {
                id: "hall/t".into(),
                version: 1,
                description: "test".into(),
                requires: vec![],
                permissions: vec![],
            implicit: false,
            },
            aspect: PortableAspect {
                name: "t".into(),
                class: PortableClass {
                    name: "T".into(),
                    fields: vec![],
                    methods: vec![PortableMethod {
                        name: "onCall".into(),
                        params: vec!["any".into(); 5],
                        ret: "any".into(),
                        body: BytecodeBody {
                            extra_locals: 0,
                            ops: vec![
                                Op::Const(Const::Int(2)),
                                Op::Const(Const::Int(2)),
                                Op::Add,
                                Op::Pop,
                                Op::Ret,
                            ],
                            handlers: vec![],
                        },
                    }],
                },
                bindings: vec![PortableBinding {
                    crosscut: Crosscut::parse("before * X.*(..)").unwrap(),
                    method: "onCall".into(),
                    priority: 0,
                }],
            },
        }
    }

    #[test]
    fn optimization_preserves_meta_and_shrinks_body() {
        let p = pkg();
        let (opt, report) = optimize_package(&p);
        assert_eq!(opt.meta, p.meta);
        assert!(report.all_validated());
        assert_eq!(opt.aspect.class.methods[0].body.ops, vec![Op::Ret]);
        assert_eq!(report.total_removed(), 4);
    }
}
