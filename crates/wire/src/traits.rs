use crate::{Reader, WireError, Writer};
use std::collections::BTreeMap;

/// A value with a canonical wire encoding.
///
/// Implementations must be *canonical*: decoding the bytes produced by
/// `encode` yields an equal value, and equal values produce identical
/// bytes. The platform relies on this for signing extension packages.
///
/// # Examples
///
/// ```
/// use pmp_wire::{Wire, Writer, Reader, WireError};
///
/// struct Point { x: i64, y: i64 }
///
/// impl Wire for Point {
///     fn encode(&self, w: &mut Writer) {
///         w.put_vari64(self.x);
///         w.put_vari64(self.y);
///     }
///     fn decode(r: &mut Reader) -> Result<Self, WireError> {
///         Ok(Point { x: r.get_vari64()?, y: r.get_vari64()? })
///     }
/// }
/// ```
pub trait Wire {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes a value of this type from `r`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] describing malformed input.
    fn decode(r: &mut Reader) -> Result<Self, WireError>
    where
        Self: Sized;
}

macro_rules! wire_int {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Wire for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn decode(r: &mut Reader) -> Result<Self, WireError> {
                r.$get()
            }
        }
    };
}

wire_int!(u8, put_u8, get_u8);
wire_int!(u16, put_u16, get_u16);
wire_int!(u32, put_u32, get_u32);
wire_int!(u64, put_u64, get_u64);
wire_int!(bool, put_bool, get_bool);
wire_int!(f64, put_f64, get_f64);

impl Wire for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_vari64(*self);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        r.get_vari64()
    }
}

impl Wire for i32 {
    fn encode(&self, w: &mut Writer) {
        w.put_vari64(i64::from(*self));
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let v = r.get_vari64()?;
        i32::try_from(v).map_err(|_| WireError::Invalid {
            type_name: "i32",
            reason: "value out of range",
        })
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varu64(*self as u64);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let v = r.get_varu64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid {
            type_name: "usize",
            reason: "value out of range",
        })
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        r.get_str()
    }
}

/// Generic sequence encoding: count prefix, then the elements. For
/// `Vec<u8>` this is byte-identical to [`Writer::put_bytes`] because a
/// `u8` element encodes as one raw byte.
impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varu64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let len = r.get_len()?;
        // One byte is the minimum encoding per element; a hostile count
        // can never force allocation beyond the remaining input.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(r.bad_tag("Option", tag)),
        }
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.put_varu64(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            if out.insert(k, v).is_some() {
                return Err(WireError::Invalid {
                    type_name: "BTreeMap",
                    reason: "duplicate key",
                });
            }
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Implements [`Wire`] for a struct by listing its fields in order.
///
/// ```
/// use pmp_wire::{wire_struct, Wire};
///
/// #[derive(Debug, PartialEq, Clone)]
/// pub struct Beacon { pub id: u64, pub name: String }
/// wire_struct!(Beacon { id: u64, name: String });
///
/// let b = Beacon { id: 4, name: "base".into() };
/// let bytes = pmp_wire::to_bytes(&b);
/// assert_eq!(pmp_wire::from_bytes::<Beacon>(&bytes).unwrap(), b);
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($name:ident { $($field:ident : $ty:ty),* $(,)? }) => {
        impl $crate::Wire for $name {
            fn encode(&self, w: &mut $crate::Writer) {
                $( <$ty as $crate::Wire>::encode(&self.$field, w); )*
            }
            fn decode(r: &mut $crate::Reader) -> Result<Self, $crate::WireError> {
                Ok($name {
                    $( $field: <$ty as $crate::Wire>::decode(r)?, )*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    struct Sample {
        a: u32,
        b: String,
        c: Vec<u64>,
        d: Option<i64>,
    }
    wire_struct!(Sample {
        a: u32,
        b: String,
        c: Vec<u64>,
        d: Option<i64>
    });

    #[test]
    fn struct_macro_roundtrip() {
        let s = Sample {
            a: 9,
            b: "x".into(),
            c: vec![1, 2, 3],
            d: Some(-5),
        };
        let bytes = crate::to_bytes(&s);
        assert_eq!(crate::from_bytes::<Sample>(&bytes).unwrap(), s);
    }

    #[test]
    fn duplicate_map_keys_rejected() {
        let mut w = Writer::new();
        w.put_varu64(2);
        w.put_str("k");
        w.put_u32(1);
        w.put_str("k");
        w.put_u32(2);
        let bytes = w.into_bytes();
        assert!(crate::from_bytes::<BTreeMap<String, u32>>(&bytes).is_err());
    }

    // Property tests need the external `proptest` crate; the offline
    // default build gates them behind the (empty) `proptest` feature.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_u64_roundtrip(v: u64) {
                prop_assert_eq!(crate::from_bytes::<u64>(&crate::to_bytes(&v)).unwrap(), v);
            }

            #[test]
            fn prop_i64_roundtrip(v: i64) {
                prop_assert_eq!(crate::from_bytes::<i64>(&crate::to_bytes(&v)).unwrap(), v);
            }

            #[test]
            fn prop_string_roundtrip(s in ".*") {
                let s: String = s;
                prop_assert_eq!(crate::from_bytes::<String>(&crate::to_bytes(&s)).unwrap(), s);
            }

            #[test]
            fn prop_bytes_roundtrip(b in proptest::collection::vec(any::<u8>(), 0..512)) {
                prop_assert_eq!(crate::from_bytes::<Vec<u8>>(&crate::to_bytes(&b)).unwrap(), b);
            }

            #[test]
            fn prop_vec_string_roundtrip(v in proptest::collection::vec(".*", 0..16)) {
                let v: Vec<String> = v;
                prop_assert_eq!(crate::from_bytes::<Vec<String>>(&crate::to_bytes(&v)).unwrap(), v);
            }

            #[test]
            fn prop_map_roundtrip(m in proptest::collection::btree_map(any::<u64>(), ".*", 0..16)) {
                let m: BTreeMap<u64, String> = m;
                prop_assert_eq!(crate::from_bytes::<BTreeMap<u64, String>>(&crate::to_bytes(&m)).unwrap(), m);
            }

            #[test]
            fn prop_decoding_random_bytes_never_panics(b in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = crate::from_bytes::<Sample>(&b);
                let _ = crate::from_bytes::<Vec<String>>(&b);
                let _ = crate::from_bytes::<BTreeMap<String, u64>>(&b);
            }

            #[test]
            fn prop_canonical_equal_values_equal_bytes(v1 in proptest::collection::vec(any::<i64>(), 0..32)) {
                let v2 = v1.clone();
                prop_assert_eq!(crate::to_bytes(&v1), crate::to_bytes(&v2));
            }
        }
    }
}
