//! # pmp-analyze — static analysis of extension bytecode
//!
//! The paper's MIDAS admits extensions on cryptographic trust alone: a
//! valid signature from a trusted hall authority is enough to weave the
//! shipped advice into the live VM. On the JVM the built-in bytecode
//! verifier still stands behind that decision; our VM has no such
//! verifier, so a signed-but-buggy advice body could underflow the
//! operand stack, jump out of bounds, loop forever, or silently use
//! permissions it never declared. This crate supplies the missing
//! admission-time checks as a pipeline of passes over the *portable*
//! form of an extension ([`pmp_prose::PortableAspect`]), run by
//! `midas::receiver` between signature verification and weaving:
//!
//! 1. [`verifier`] — an abstract-interpretation bytecode verifier:
//!    per-instruction stack-effect simulation computing the operand
//!    stack depth at every pc, checking underflow/overflow, jump
//!    targets, merge-point consistency, local-slot bounds, call-arity
//!    consistency, and that execution cannot fall off the end.
//! 2. [`perms`] — permission inference: the least
//!    [`pmp_vm::perm::Permissions`] set the advice can require, derived
//!    from the sys ops reachable from its advice entry points; packages
//!    whose declared permissions do not cover the inferred set are
//!    rejected.
//! 3. [`termination`] — back-edge detection: loops are flagged, fatally
//!    when no fuel budget will bound them at run time.
//! 4. Aspect interference — computed *after* weaving by
//!    `pmp_prose::interference` on the live dispatch tables (two active
//!    aspects writing the same field, or advising the same join point
//!    with equal priority); [`interference`] converts those reports
//!    into [`Finding`]s so the whole pipeline speaks one language.
//!
//! Every pass emits structured [`Finding`]s; the receiver's policy maps
//! a [`Severity`] threshold to accept/reject.
//!
//! Beyond admission, the crate also houses the *weave-time optimizer*
//! ([`opt`], over [`cfg`] and [`lattice`]): after a package passes the
//! gate, the base may run interprocedural constant propagation,
//! dead-code elimination, CHA devirtualisation, and hook-check
//! hoisting over the advice bodies, re-verifying the optimized result
//! with the same [`verifier`] (translation validation) before shipping.

pub mod cfg;
pub mod interference;
pub mod lattice;
pub mod opt;
pub mod perms;
pub mod termination;
pub mod verifier;

use pmp_prose::PortableAspect;
use pmp_vm::perm::{Permission, Permissions};
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; never blocks admission.
    Info,
    /// Suspicious but survivable (e.g. a sys op unknown on this node).
    Warning,
    /// The package is unsafe to weave (underflow, bad jump,
    /// undeclared permission, ...).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which analysis pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// The abstract-interpretation bytecode verifier.
    Bytecode,
    /// Permission inference vs the declared permission set.
    Permissions,
    /// Back-edge / fuel-bound analysis.
    Termination,
    /// Aspect-interference analysis (post-weave, from `pmp-prose`).
    Interference,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Bytecode => "bytecode-verifier",
            Pass::Permissions => "permission-inference",
            Pass::Termination => "termination",
            Pass::Interference => "interference",
        })
    }
}

/// One diagnostic from one pass, anchored to a method and (when it
/// concerns a specific instruction) a pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Which pass found it.
    pub pass: Pass,
    /// The method the finding is about (empty for aspect-level
    /// findings such as permission coverage).
    pub method: String,
    /// The instruction it anchors to, if any.
    pub pc: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.pass)?;
        if !self.method.is_empty() {
            write!(f, ": {}", self.method)?;
        }
        if let Some(pc) = self.pc {
            write!(f, " @{pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Finding {
    /// Shorthand constructor used by the passes.
    pub(crate) fn new(
        severity: Severity,
        pass: Pass,
        method: impl Into<String>,
        pc: Option<usize>,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            severity,
            pass,
            method: method.into(),
            pc,
            message: message.into(),
        }
    }
}

/// What the receiving node knows about one named sys op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysPerm {
    /// Registered, no permission gate.
    Unguarded,
    /// Registered behind this permission.
    Guarded(Permission),
    /// Not registered on this node.
    Unknown,
}

/// Resolves sys-op names to the permission (if any) gating them on the
/// receiving VM. `midas::receiver` backs this with the VM's
/// `SysRegistry`; tests can use a closure.
pub trait SysResolver {
    /// Looks up one sys-op name.
    fn lookup(&self, name: &str) -> SysPerm;
}

impl<F: Fn(&str) -> SysPerm> SysResolver for F {
    fn lookup(&self, name: &str) -> SysPerm {
        self(name)
    }
}

/// A resolver that knows no sys ops at all (every op is [`SysPerm::Unknown`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSysOps;

impl SysResolver for NoSysOps {
    fn lookup(&self, _name: &str) -> SysPerm {
        SysPerm::Unknown
    }
}

/// Tunables for the static passes.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Maximum permitted operand-stack depth.
    pub max_stack: usize,
    /// Whether advice will run under a finite fuel budget (true for
    /// everything `midas::receiver` weaves). Back-edges are fatal
    /// without one.
    pub fueled: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self {
            max_stack: 256,
            fueled: true,
        }
    }
}

/// The combined result of the static (pre-weave) passes.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All findings, in pass order.
    pub findings: Vec<Finding>,
    /// The least permission set the aspect can require (pass 2).
    pub required: Permissions,
}

impl AnalysisReport {
    /// The worst severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// The first finding at or above `threshold` — the one a rejection
    /// message should name.
    pub fn first_at(&self, threshold: Severity) -> Option<&Finding> {
        self.findings.iter().find(|f| f.severity >= threshold)
    }

    /// Does the report demand rejection under `threshold`?
    pub fn rejects(&self, threshold: Severity) -> bool {
        self.first_at(threshold).is_some()
    }
}

/// Runs the three static passes over one portable aspect with its
/// declared permission set. This is the convenience entry point; the
/// receiver calls the passes individually so it can time each one.
pub fn analyze_aspect(
    aspect: &PortableAspect,
    declared: Permissions,
    resolver: &dyn SysResolver,
    opts: &AnalyzeOptions,
) -> AnalysisReport {
    let mut findings = verifier::verify_class(&aspect.class, opts);
    let inference = perms::check_permissions(aspect, declared, resolver);
    let required = inference.required;
    findings.extend(inference.findings);
    findings.extend(termination::check_class(&aspect.class, opts));
    AnalysisReport { findings, required }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(
            [Severity::Error, Severity::Info, Severity::Warning]
                .into_iter()
                .max(),
            Some(Severity::Error)
        );
    }

    #[test]
    fn finding_display_names_pass_and_pc() {
        let f = Finding::new(
            Severity::Error,
            Pass::Bytecode,
            "onCall",
            Some(3),
            "operand stack underflow",
        );
        let s = f.to_string();
        assert!(s.contains("bytecode-verifier"));
        assert!(s.contains("@3"));
        assert!(s.contains("underflow"));
    }
}
