//! Wire form of shippable aspects.
//!
//! MIDAS distributes extensions as bytes; this module defines the
//! canonical encoding of a script aspect (its class, bindings, and
//! priorities) and the conversions to/from [`Aspect`].

use crate::aspect::{Aspect, AspectImpl, Binding, PortableClass, PortableMethod};
use crate::advice::AdviceBody;
use crate::crosscut::Crosscut;
use crate::error::ProseError;
use pmp_vm::op::BytecodeBody;
use pmp_wire::{wire_struct, Reader, Wire, WireError, Writer};
use std::sync::Arc;

wire_struct!(PortableMethod {
    name: String,
    params: Vec<String>,
    ret: String,
    body: BytecodeBody,
});

impl Wire for PortableClass {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_varu64(self.fields.len() as u64);
        for (n, t) in &self.fields {
            w.put_str(n);
            w.put_str(t);
        }
        self.methods.encode(w);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let name = r.get_str()?;
        let nfields = r.get_len()?;
        let mut fields = Vec::with_capacity(nfields.min(r.remaining()));
        for _ in 0..nfields {
            fields.push((r.get_str()?, r.get_str()?));
        }
        let methods = Vec::<PortableMethod>::decode(r)?;
        Ok(PortableClass {
            name,
            fields,
            methods,
        })
    }
}

/// One wire-format binding: crosscut text, advice method name, priority.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableBinding {
    /// The crosscut.
    pub crosscut: Crosscut,
    /// Advice method name on the aspect class.
    pub method: String,
    /// Advice ordering priority.
    pub priority: i32,
}

wire_struct!(PortableBinding {
    crosscut: Crosscut,
    method: String,
    priority: i32,
});

/// The complete wire form of a shippable aspect.
///
/// # Examples
///
/// ```
/// use pmp_prose::portable::PortableAspect;
/// use pmp_prose::aspect::{Aspect, PortableClass};
///
/// let aspect = Aspect::script("mon", PortableClass {
///     name: "Mon".into(), fields: vec![], methods: vec![],
/// }, vec![]);
/// let portable = PortableAspect::try_from(&aspect).unwrap();
/// let bytes = pmp_wire::to_bytes(&portable);
/// let back: PortableAspect = pmp_wire::from_bytes(&bytes).unwrap();
/// assert_eq!(back, portable);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PortableAspect {
    /// Aspect name.
    pub name: String,
    /// The shipped implementation class.
    pub class: PortableClass,
    /// Crosscut → advice-method bindings.
    pub bindings: Vec<PortableBinding>,
}

wire_struct!(PortableAspect {
    name: String,
    class: PortableClass,
    bindings: Vec<PortableBinding>,
});

impl TryFrom<&Aspect> for PortableAspect {
    type Error = ProseError;

    fn try_from(aspect: &Aspect) -> Result<Self, Self::Error> {
        let class = match &aspect.implementation {
            AspectImpl::Script(c) => c.clone(),
            AspectImpl::Native => return Err(ProseError::NotPortable(aspect.name.clone())),
        };
        let mut bindings = Vec::with_capacity(aspect.bindings.len());
        for b in &aspect.bindings {
            match &b.advice {
                AdviceBody::Script { method } => bindings.push(PortableBinding {
                    crosscut: b.crosscut.clone(),
                    method: method.to_string(),
                    priority: b.priority,
                }),
                AdviceBody::Native(_) => {
                    return Err(ProseError::NotPortable(aspect.name.clone()))
                }
            }
        }
        Ok(PortableAspect {
            name: aspect.name.clone(),
            class,
            bindings,
        })
    }
}

impl From<PortableAspect> for Aspect {
    fn from(p: PortableAspect) -> Self {
        let mut aspect = Aspect::script(p.name, p.class, vec![]);
        aspect.bindings = p
            .bindings
            .into_iter()
            .map(|b| Binding {
                crosscut: b.crosscut,
                advice: AdviceBody::Script {
                    method: Arc::from(b.method.as_str()),
                },
                priority: b.priority,
            })
            .collect();
        aspect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::op::Op;

    fn sample_class() -> PortableClass {
        PortableClass {
            name: "Mon".into(),
            fields: vec![("count".into(), "int".into())],
            methods: vec![
                PortableMethod {
                    name: "onEntry".into(),
                    params: vec!["any".into(), "str".into(), "any".into(), "any".into(), "any".into()],
                    ret: "any".into(),
                    body: BytecodeBody {
                        extra_locals: 0,
                        ops: vec![Op::Const(pmp_vm::op::Const::Null), Op::RetVal],
                        handlers: vec![],
                    },
                },
                PortableMethod {
                    name: Aspect::SHUTDOWN_METHOD.into(),
                    params: vec!["any".into(), "str".into(), "any".into(), "any".into(), "any".into()],
                    ret: "any".into(),
                    body: BytecodeBody {
                        extra_locals: 0,
                        ops: vec![Op::Ret],
                        handlers: vec![],
                    },
                },
            ],
        }
    }

    #[test]
    fn roundtrip_full_aspect() {
        let aspect = Aspect::script(
            "mon",
            sample_class(),
            vec![(
                Crosscut::parse("before * Motor.*(..)").unwrap(),
                "onEntry".into(),
                2,
            )],
        );
        let portable = PortableAspect::try_from(&aspect).unwrap();
        let bytes = pmp_wire::to_bytes(&portable);
        let back: PortableAspect = pmp_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, portable);

        let rebuilt: Aspect = back.into();
        assert_eq!(rebuilt.name, "mon");
        assert_eq!(rebuilt.bindings.len(), 1);
        assert_eq!(rebuilt.bindings[0].priority, 2);
        // onShutdown present on the class → shutdown advice wired.
        assert!(rebuilt.shutdown.is_some());
    }

    #[test]
    fn native_aspects_are_rejected() {
        let aspect = Aspect::build("local")
            .before("* X.*(..)", |_| Ok(()))
            .done()
            .unwrap();
        assert!(matches!(
            PortableAspect::try_from(&aspect),
            Err(ProseError::NotPortable(_))
        ));
    }

    #[test]
    fn decoding_garbage_fails_cleanly() {
        assert!(pmp_wire::from_bytes::<PortableAspect>(&[1, 2, 3]).is_err());
    }
}
