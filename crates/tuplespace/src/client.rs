//! The client side: `out`/`rd`/`in`/`subscribe` against a remote space.

use crate::proto::{SpaceMsg, CHANNEL};
use crate::tuple::{Pattern, Tuple};
use pmp_net::{Incoming, NodeId, Simulator};

/// Events surfaced by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceEvent {
    /// A `rd`/`in` completed.
    Result {
        /// The request id.
        req: u64,
        /// The matched tuple, if any.
        tuple: Option<Tuple>,
    },
    /// A subscription fired.
    Notified {
        /// The subscription id.
        sub: u64,
        /// The matching tuple.
        tuple: Tuple,
    },
}

/// A tuple-space client bound to one space node.
#[derive(Debug)]
pub struct SpaceClient {
    node: NodeId,
    space: NodeId,
    next_req: u64,
    next_sub: u64,
}

impl SpaceClient {
    /// Creates a client on `node` speaking to the space at `space`.
    pub fn new(node: NodeId, space: NodeId) -> Self {
        Self {
            node,
            space,
            next_req: 1,
            next_sub: 1,
        }
    }

    fn send(&self, sim: &mut Simulator, msg: &SpaceMsg) {
        sim.send(
            self.node,
            self.space,
            CHANNEL,
            pmp_trace::TraceCtx::NIL.wrap(msg),
        );
    }

    /// Linda `out`: deposits a tuple.
    pub fn out(&self, sim: &mut Simulator, tuple: Tuple) {
        self.send(sim, &SpaceMsg::Out { tuple });
    }

    /// Linda `rd` (non-blocking): the result arrives as
    /// [`SpaceEvent::Result`] with the returned id.
    pub fn rd(&mut self, sim: &mut Simulator, pattern: Pattern) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.send(sim, &SpaceMsg::Rd { pattern, req });
        req
    }

    /// Linda `in` (non-blocking, destructive).
    pub fn take(&mut self, sim: &mut Simulator, pattern: Pattern) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.send(sim, &SpaceMsg::In { pattern, req });
        req
    }

    /// Subscribes to present and future matches; returns the
    /// subscription id carried by [`SpaceEvent::Notified`].
    pub fn subscribe(&mut self, sim: &mut Simulator, pattern: Pattern) -> u64 {
        let sub = self.next_sub;
        self.next_sub += 1;
        self.send(sim, &SpaceMsg::Subscribe { pattern, sub });
        sub
    }

    /// Cancels a subscription.
    pub fn unsubscribe(&self, sim: &mut Simulator, sub: u64) {
        self.send(sim, &SpaceMsg::Unsubscribe { sub });
    }

    /// Processes one inbox entry; returns surfaced events.
    pub fn handle(&mut self, incoming: &Incoming) -> Vec<SpaceEvent> {
        let Incoming::Message {
            channel, payload, ..
        } = incoming
        else {
            return Vec::new();
        };
        if &**channel != CHANNEL {
            return Vec::new();
        }
        let Ok(env) = pmp_wire::from_bytes::<pmp_trace::Traced<SpaceMsg>>(payload) else {
            return Vec::new();
        };
        match env.msg {
            SpaceMsg::Result { req, tuple } => vec![SpaceEvent::Result { req, tuple }],
            SpaceMsg::Notify { sub, tuple } => vec![SpaceEvent::Notified { sub, tuple }],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::TupleSpace;
    use crate::tuple::{Field, PatternField};
    use pmp_net::{LinkModel, Position};

    struct World {
        sim: Simulator,
        space_node: NodeId,
        space: TupleSpace,
        client_node: NodeId,
        client: SpaceClient,
        events: Vec<SpaceEvent>,
    }

    fn world() -> World {
        let mut sim = Simulator::with_link(5, LinkModel::ideal());
        let space_node = sim.add_node("space", Position::new(0.0, 0.0), 50.0);
        let client_node = sim.add_node("client", Position::new(5.0, 0.0), 50.0);
        World {
            space: TupleSpace::new(space_node),
            client: SpaceClient::new(client_node, space_node),
            sim,
            space_node,
            client_node,
            events: Vec::new(),
        }
    }

    fn pump(w: &mut World) {
        while w.sim.has_events() {
            w.sim.step();
            for inc in w.sim.drain_inbox(w.space_node) {
                w.space.handle(&mut w.sim, &inc);
            }
            for inc in w.sim.drain_inbox(w.client_node) {
                w.events.extend(w.client.handle(&inc));
            }
        }
    }

    fn t(fields: Vec<Field>) -> Tuple {
        Tuple::new(fields)
    }

    #[test]
    fn out_rd_in_lifecycle() {
        let mut w = world();
        w.client.out(&mut w.sim, t(vec!["job".into(), 1i64.into()]));
        pump(&mut w);
        assert_eq!(w.space.len(), 1);

        // rd: non-destructive.
        let p = Pattern::new(vec![PatternField::Exact("job".into()), PatternField::AnyInt]);
        let r1 = w.client.rd(&mut w.sim, p.clone());
        pump(&mut w);
        assert!(matches!(
            &w.events[..],
            [SpaceEvent::Result { req, tuple: Some(_) }] if *req == r1
        ));
        assert_eq!(w.space.len(), 1, "rd leaves the tuple");
        w.events.clear();

        // in: destructive.
        let r2 = w.client.take(&mut w.sim, p.clone());
        pump(&mut w);
        assert!(matches!(
            &w.events[..],
            [SpaceEvent::Result { req, tuple: Some(_) }] if *req == r2
        ));
        assert_eq!(w.space.len(), 0, "in removed it");
        w.events.clear();

        // now empty: None.
        let r3 = w.client.rd(&mut w.sim, p);
        pump(&mut w);
        assert!(matches!(
            &w.events[..],
            [SpaceEvent::Result { req, tuple: None }] if *req == r3
        ));
    }

    #[test]
    fn subscription_replays_and_pushes() {
        let mut w = world();
        // A tuple already present...
        w.client.out(&mut w.sim, t(vec!["ext".into(), 1i64.into()]));
        pump(&mut w);
        // ... is replayed on subscribe.
        let sub = w.client.subscribe(
            &mut w.sim,
            Pattern::new(vec![PatternField::Exact("ext".into()), PatternField::AnyInt]),
        );
        pump(&mut w);
        assert_eq!(w.events.len(), 1);
        assert!(matches!(&w.events[0], SpaceEvent::Notified { sub: s, .. } if *s == sub));
        w.events.clear();
        // Future matching tuples are pushed...
        w.client.out(&mut w.sim, t(vec!["ext".into(), 2i64.into()]));
        // ... and non-matching ones are not.
        w.client.out(&mut w.sim, t(vec!["other".into(), 3i64.into()]));
        pump(&mut w);
        assert_eq!(w.events.len(), 1);
        // Unsubscribe stops the flow.
        w.client.unsubscribe(&mut w.sim, sub);
        pump(&mut w);
        w.events.clear();
        w.client.out(&mut w.sim, t(vec!["ext".into(), 4i64.into()]));
        pump(&mut w);
        assert!(w.events.is_empty());
    }

    #[test]
    fn in_consumes_each_tuple_once() {
        let mut w = world();
        w.client.out(&mut w.sim, t(vec!["job".into(), 1i64.into()]));
        w.client.out(&mut w.sim, t(vec!["job".into(), 2i64.into()]));
        pump(&mut w);
        let p = Pattern::new(vec![PatternField::Exact("job".into()), PatternField::AnyInt]);
        w.client.take(&mut w.sim, p.clone());
        w.client.take(&mut w.sim, p.clone());
        w.client.take(&mut w.sim, p);
        pump(&mut w);
        let got: Vec<Option<&Tuple>> = w
            .events
            .iter()
            .map(|e| match e {
                SpaceEvent::Result { tuple, .. } => tuple.as_ref(),
                SpaceEvent::Notified { .. } => panic!("no subs"),
            })
            .collect();
        assert_eq!(got.len(), 3);
        assert!(got[0].is_some() && got[1].is_some());
        assert!(got[2].is_none(), "third take finds the space empty");
    }
}
