//! # pmp-prose — dynamic aspect-oriented programming with run-time weaving
//!
//! A Rust reproduction of PROSE (*PROgrammable extensions of sErvices*),
//! the dynamic AOP engine of *A Proactive Middleware Platform for Mobile
//! Computing* (Middleware 2003, §3.1). Aspects are first-class values:
//! a set of *(crosscut, advice)* bindings plus state. They are woven
//! into a running [`pmp_vm::Vm`] **without stopping the application** —
//! the simulated JIT has already planted minimal stubs at every join
//! point, and weaving merely activates the ones the crosscuts match.
//!
//! Two kinds of aspects:
//!
//! * **native** — advice bodies are Rust closures; used by local code
//!   and benchmarks ([`aspect::Aspect::build`]);
//! * **script** — advice bodies are methods of a shipped VM class;
//!   serialisable ([`portable::PortableAspect`]) and therefore exactly
//!   what MIDAS distributes to mobile nodes. Script advice runs in the
//!   PROSE sandbox: explicit permissions and a fuel budget.
//!
//! The crosscut language follows the paper:
//!
//! ```text
//! before void *.send*(byte[], ..)
//! after  * Motor.*(..)
//! set    Robot.state
//! throw  Security*
//! ```
//!
//! # Examples
//!
//! ```
//! use pmp_vm::prelude::*;
//! use pmp_prose::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut vm = Vm::new(VmConfig::default());
//! vm.register_class(
//!     ClassDef::build("Port")
//!         .method("send", [TypeSig::Bytes], TypeSig::Void, |b| { b.op(Op::Ret); })
//!         .done(),
//! )?;
//! let prose = Prose::attach(&mut vm);
//!
//! // The paper's example: encrypt byte[] arguments of send* methods.
//! let aspect = Aspect::build("encrypt")
//!     .before("void *.send*(byte[], ..)", |ctx| {
//!         if let JoinPoint::MethodEntry { args, .. } = &mut ctx.jp {
//!             if let Some(id) = args.first().and_then(|v| v.as_ref_id()) {
//!                 for b in ctx.vm.heap_mut().buffer_bytes_mut(id)? {
//!                     *b ^= 0xAA; // stand-in cipher
//!                 }
//!             }
//!         }
//!         Ok(())
//!     })
//!     .done()?;
//! prose.weave(&mut vm, aspect, WeaveOptions::default())?;
//!
//! let port = vm.new_object("Port")?;
//! let buf = vm.new_buffer(vec![0, 0]);
//! let id = buf.as_ref_id().unwrap();
//! vm.call("Port", "send", port, vec![buf])?;
//! assert_eq!(vm.heap().buffer_bytes(id)?, &[0xAA, 0xAA]);
//! # Ok(())
//! # }
//! ```

pub mod advice;
pub mod aspect;
pub mod crosscut;
pub mod error;
pub mod handle;
pub mod interference;
pub mod parser;
pub mod pattern;
pub mod portable;
pub mod runtime;
pub mod weaver;

pub use advice::{AdviceBody, AdviceCtx, JoinPoint};
pub use aspect::{Aspect, AspectImpl, Binding, PortableClass, PortableMethod};
pub use crosscut::Crosscut;
pub use error::ProseError;
pub use handle::{AspectId, AspectInfo};
pub use interference::{Interference, InterferenceKind};
pub use portable::{PortableAspect, PortableBinding};
pub use runtime::{ErrorPolicy, ProseRuntime};
pub use weaver::{Prose, WeaveOptions, DEFAULT_SCRIPT_FUEL};

/// Common imports for working with PROSE.
pub mod prelude {
    pub use crate::advice::{AdviceCtx, JoinPoint};
    pub use crate::aspect::{Aspect, PortableClass, PortableMethod};
    pub use crate::crosscut::Crosscut;
    pub use crate::error::ProseError;
    pub use crate::handle::{AspectId, AspectInfo};
    pub use crate::portable::PortableAspect;
    pub use crate::runtime::ErrorPolicy;
    pub use crate::weaver::{Prose, WeaveOptions};
}
