//! Simulated nodes and their inboxes.

use crate::clock::SimTime;
use crate::geo::Position;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Identifier of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Something that arrived at a node: a message or a fired timer.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// A delivered message.
    Message {
        /// Sender.
        from: NodeId,
        /// Logical channel, e.g. `"midas"` (used to demultiplex).
        channel: Arc<str>,
        /// Payload bytes (wire-encoded by the protocol layer).
        payload: Vec<u8>,
        /// When it was sent.
        sent_at: SimTime,
    },
    /// A timer set via `Simulator::set_timer` fired.
    Timer {
        /// The token returned when the timer was set.
        token: u64,
        /// The caller-supplied tag.
        tag: Arc<str>,
    },
}

/// A simulated device: position, radio, and inbox.
#[derive(Debug)]
pub struct SimNode {
    /// The node's id.
    pub id: NodeId,
    /// Human-readable name (`"robot:1:1"`, `"base:hall-a"`).
    pub name: String,
    /// Current position.
    pub pos: Position,
    /// Radio range in metres.
    pub radio_range: f64,
    /// Whether the radio is on.
    pub online: bool,
    pub(crate) inbox: VecDeque<Incoming>,
}

impl SimNode {
    pub(crate) fn new(id: NodeId, name: String, pos: Position, radio_range: f64) -> Self {
        Self {
            id,
            name,
            pos,
            radio_range,
            online: true,
            inbox: VecDeque::new(),
        }
    }

    /// Number of queued inbox entries.
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_basics() {
        let n = SimNode::new(NodeId(1), "robot".into(), Position::new(1.0, 2.0), 30.0);
        assert_eq!(n.inbox_len(), 0);
        assert!(n.online);
        assert_eq!(n.id.to_string(), "node#1");
    }
}
