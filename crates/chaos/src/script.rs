//! The chaos script: an explicit, serializable event program.
//!
//! A [`Scenario`] is everything a chaos run needs — topology, catalogs,
//! and a time-ordered list of [`Step`]s — with *no* hidden state. The
//! generator compiles a seed into one, the executor replays it against
//! the real [`pmp_core::Platform`], the shrinker deletes steps from it,
//! and the `.repro` format is just its pmp-wire encoding behind a magic
//! prefix. Every step is total: an op whose target does not exist (or
//! whose precondition fails, like crashing an already-crashed base) is
//! a no-op, so *any* subset of a valid script is itself valid — the
//! property delta debugging rests on.

use pmp_midas::ExtensionPackage;
use pmp_wire::{wire_struct, Reader, Wire, WireError, Writer};

/// Horizontal spacing between halls; hall `i` spans
/// `[i*HALL_PITCH, i*HALL_PITCH + HALL_SIDE]` on the x axis.
pub const HALL_PITCH: f64 = 150.0;
/// Side length of a (square) hall.
pub const HALL_SIDE: f64 = 60.0;
/// Radio range of every base and mobile node.
pub const RADIO_RANGE: f64 = 80.0;
/// The corridor: out of every base's radio range.
pub const CORRIDOR: (f64, f64) = (1000.0, 1000.0);
/// Executor cap on the node population (AddRobot beyond this no-ops).
pub const MAX_NODES: usize = 6;
/// Executor cap on stream subscribers (Subscribe beyond this no-ops).
pub const MAX_SUBS: usize = 8;

/// The durable namespaces a chaos subscriber may follow, in wire
/// order: `Op::Subscribe::ns` indexes this table (mod its length).
pub const STREAM_NAMESPACES: [&str; 3] = ["store.movements", "midas.base", "trace.flight"];

/// A complete chaos scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seed for the platform's network RNG (link loss, jitter).
    pub seed: u64,
    /// The static world the steps run against.
    pub topology: Topology,
    /// Time-ordered event program (executor sorts stably by `at_ms`).
    pub steps: Vec<Step>,
    /// Quiet tail after the last step, for leases to lapse and
    /// protocols to converge before final observables are read.
    pub settle_ms: u32,
}

wire_struct!(Scenario {
    seed: u64,
    topology: Topology,
    steps: Vec<Step>,
    settle_ms: u32
});

/// The static world: halls, initial robots, catalogs, lease policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Number of halls (1..=4), each with one base at its centre.
    pub halls: u8,
    /// Link loss probability in 1/1000 units (0 = ideal radio).
    pub loss_per_mille: u16,
    /// Robots present at t=0; robot `i` starts in hall `i % halls`.
    pub robots: u8,
    /// Per-hall extension catalog, published at t=0 through the WAL.
    pub catalogs: Vec<Vec<CatalogEntry>>,
    /// Lease duration every base grants, in milliseconds.
    pub lease_ms: u32,
    /// Whether consecutive bases get a wired backhaul (roaming
    /// handoffs work) or stand alone.
    pub link_neighbors: bool,
}

wire_struct!(Topology {
    halls: u8,
    loss_per_mille: u16,
    robots: u8,
    catalogs: Vec<Vec<CatalogEntry>>,
    lease_ms: u32,
    link_neighbors: bool
});

/// One catalog line: which extension, at which version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The extension kind.
    pub kind: ExtKind,
    /// Package version (bases upgrade in place on re-publish).
    pub version: u32,
}

wire_struct!(CatalogEntry {
    kind: ExtKind,
    version: u32
});

/// One timed event.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Simulated milliseconds from t=0.
    pub at_ms: u32,
    /// What happens.
    pub op: Op,
}

wire_struct!(Step { at_ms: u32, op: Op });

/// The chaos vocabulary. Node/base operands are indices into the
/// platform's node/base tables; out-of-range or precondition-failing
/// ops are no-ops (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Teleport a node into a hall (a roam).
    MoveToHall {
        /// Node index.
        node: u8,
        /// Destination hall.
        hall: u8,
    },
    /// Teleport a node out of every base's range (a departure).
    MoveToCorridor {
        /// Node index.
        node: u8,
    },
    /// Radio silence on/off for a node.
    SetOnline {
        /// Node index.
        node: u8,
        /// New radio state.
        online: bool,
    },
    /// A new robot joins, starting in `hall`.
    AddRobot {
        /// Hall to join in.
        hall: u8,
    },
    /// Power-fail a base: in-memory state gone, disk survives.
    CrashBase {
        /// Base index.
        base: u8,
    },
    /// Rebuild a crashed base from its disk (recovery).
    RestartBase {
        /// Base index.
        base: u8,
    },
    /// Snapshot a live base's durable state and compact its WAL.
    CheckpointBase {
        /// Base index.
        base: u8,
    },
    /// Publish (or upgrade) an extension in a base's catalog.
    Publish {
        /// Base index.
        base: u8,
        /// Which extension.
        kind: ExtKind,
        /// New version.
        version: u32,
    },
    /// Revoke an extension: out of the catalog, all grants void.
    Revoke {
        /// Base index.
        base: u8,
        /// Which extension.
        kind: ExtKind,
    },
    /// Remote `DrawingService.moveTo(x, y)` call from a base to a node.
    Rpc {
        /// Calling base index.
        base: u8,
        /// Target node index.
        node: u8,
        /// Plotter x.
        x: u8,
        /// Plotter y.
        y: u8,
    },
    /// While a base is down, chop bytes off its newest WAL segment
    /// (simulates a torn final write). No-op on a live base.
    InjectTornTail {
        /// Base index (must be crashed).
        base: u8,
        /// Bytes to drop from the tail.
        drop: u8,
    },
    /// While a base is down, flip one bit of its newest WAL segment.
    /// No-op on a live base.
    InjectBitFlip {
        /// Base index (must be crashed).
        base: u8,
        /// Byte offset (clamped to the segment by the executor).
        offset: u16,
    },
    /// Sever the radio path between one node and one base.
    Partition {
        /// Node index.
        node: u8,
        /// Base index.
        base: u8,
    },
    /// Restore a severed path.
    Heal {
        /// Node index.
        node: u8,
        /// Base index.
        base: u8,
    },
    /// Federate two bases: roaming neighbours *and* replicas over a
    /// wired backhaul — catalog/lease anti-entropy plus migratable
    /// (zero-re-deliver) handoffs. Self-pairs are no-ops.
    LinkBases {
        /// First base index.
        a: u8,
        /// Second base index.
        b: u8,
    },
    /// Sever the inter-base path (backhaul included): handoffs and
    /// anti-entropy between the pair stop until healed.
    PartitionBases {
        /// First base index.
        a: u8,
        /// Second base index.
        b: u8,
    },
    /// Restore a severed inter-base path.
    HealBases {
        /// First base index.
        a: u8,
        /// Second base index.
        b: u8,
    },
    /// Attach a rev-stream subscriber to a base's durable namespace.
    /// The executor mirrors every drained event and the
    /// `stream-resync` oracle holds the mirror to the publisher's
    /// state digest at every barrier. No-op past [`MAX_SUBS`].
    Subscribe {
        /// Base index.
        base: u8,
        /// Index into [`STREAM_NAMESPACES`] (mod its length).
        ns: u8,
    },
    /// Detach a subscriber created by an earlier `Subscribe` (index in
    /// creation order). Out-of-range or already-dropped: no-op.
    DropSubscriber {
        /// Subscriber index.
        sub: u8,
    },
    /// Remote `DrawingService.moveTo(x, y)` call with explicit
    /// invocation semantics (DESIGN.md §17): `sem % 3` selects
    /// maybe / at-most-once / at-least-once. Semantic calls retry on
    /// per-base timers and always resolve (reply or timeout outcome),
    /// which the `perf.soak-throughput` oracle relies on.
    RpcSem {
        /// Calling base index.
        base: u8,
        /// Target node index.
        node: u8,
        /// Semantics selector (`% 3`): 0 maybe, 1 at-most-once,
        /// 2 at-least-once.
        sem: u8,
        /// Plotter x.
        x: u8,
        /// Plotter y.
        y: u8,
    },
    /// Publish a hostile package through the MIDAS admission gate:
    /// `attack % 4` selects tampered-signature / over-privileged /
    /// verifier-rejecting / rogue-signer (see
    /// [`crate::exec`] for the concrete payloads). The
    /// `adversarial-containment` oracle asserts no such package is
    /// ever installed on a node.
    AdversarialPublish {
        /// Base index to publish through.
        base: u8,
        /// Attack selector (`% 4`).
        attack: u8,
        /// Package version (re-publishes upgrade in place).
        version: u32,
    },
    /// Multiply every link-latency parameter (base, per-byte, jitter)
    /// by `mult` from this point on — a simulated-time performance
    /// regression for the `perf.soak-rpc-p99` oracle to catch. The
    /// generator never emits this op; it exists for soak scenarios and
    /// pinned perf repros.
    SlowLinks {
        /// Latency multiplier (clamped to ≥ 1).
        mult: u8,
    },
}

impl Wire for Op {
    fn encode(&self, w: &mut Writer) {
        match self {
            Op::MoveToHall { node, hall } => {
                w.put_u8(0);
                w.put_u8(*node);
                w.put_u8(*hall);
            }
            Op::MoveToCorridor { node } => {
                w.put_u8(1);
                w.put_u8(*node);
            }
            Op::SetOnline { node, online } => {
                w.put_u8(2);
                w.put_u8(*node);
                w.put_bool(*online);
            }
            Op::AddRobot { hall } => {
                w.put_u8(3);
                w.put_u8(*hall);
            }
            Op::CrashBase { base } => {
                w.put_u8(4);
                w.put_u8(*base);
            }
            Op::RestartBase { base } => {
                w.put_u8(5);
                w.put_u8(*base);
            }
            Op::CheckpointBase { base } => {
                w.put_u8(6);
                w.put_u8(*base);
            }
            Op::Publish {
                base,
                kind,
                version,
            } => {
                w.put_u8(7);
                w.put_u8(*base);
                kind.encode(w);
                w.put_u32(*version);
            }
            Op::Revoke { base, kind } => {
                w.put_u8(8);
                w.put_u8(*base);
                kind.encode(w);
            }
            Op::Rpc { base, node, x, y } => {
                w.put_u8(9);
                w.put_u8(*base);
                w.put_u8(*node);
                w.put_u8(*x);
                w.put_u8(*y);
            }
            Op::InjectTornTail { base, drop } => {
                w.put_u8(10);
                w.put_u8(*base);
                w.put_u8(*drop);
            }
            Op::InjectBitFlip { base, offset } => {
                w.put_u8(11);
                w.put_u8(*base);
                w.put_u16(*offset);
            }
            Op::Partition { node, base } => {
                w.put_u8(12);
                w.put_u8(*node);
                w.put_u8(*base);
            }
            Op::Heal { node, base } => {
                w.put_u8(13);
                w.put_u8(*node);
                w.put_u8(*base);
            }
            Op::LinkBases { a, b } => {
                w.put_u8(14);
                w.put_u8(*a);
                w.put_u8(*b);
            }
            Op::PartitionBases { a, b } => {
                w.put_u8(15);
                w.put_u8(*a);
                w.put_u8(*b);
            }
            Op::HealBases { a, b } => {
                w.put_u8(16);
                w.put_u8(*a);
                w.put_u8(*b);
            }
            Op::Subscribe { base, ns } => {
                w.put_u8(17);
                w.put_u8(*base);
                w.put_u8(*ns);
            }
            Op::DropSubscriber { sub } => {
                w.put_u8(18);
                w.put_u8(*sub);
            }
            Op::RpcSem {
                base,
                node,
                sem,
                x,
                y,
            } => {
                w.put_u8(19);
                w.put_u8(*base);
                w.put_u8(*node);
                w.put_u8(*sem);
                w.put_u8(*x);
                w.put_u8(*y);
            }
            Op::AdversarialPublish {
                base,
                attack,
                version,
            } => {
                w.put_u8(20);
                w.put_u8(*base);
                w.put_u8(*attack);
                w.put_u32(*version);
            }
            Op::SlowLinks { mult } => {
                w.put_u8(21);
                w.put_u8(*mult);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Op::MoveToHall {
                node: r.get_u8()?,
                hall: r.get_u8()?,
            },
            1 => Op::MoveToCorridor { node: r.get_u8()? },
            2 => Op::SetOnline {
                node: r.get_u8()?,
                online: r.get_bool()?,
            },
            3 => Op::AddRobot { hall: r.get_u8()? },
            4 => Op::CrashBase { base: r.get_u8()? },
            5 => Op::RestartBase { base: r.get_u8()? },
            6 => Op::CheckpointBase { base: r.get_u8()? },
            7 => Op::Publish {
                base: r.get_u8()?,
                kind: ExtKind::decode(r)?,
                version: r.get_u32()?,
            },
            8 => Op::Revoke {
                base: r.get_u8()?,
                kind: ExtKind::decode(r)?,
            },
            9 => Op::Rpc {
                base: r.get_u8()?,
                node: r.get_u8()?,
                x: r.get_u8()?,
                y: r.get_u8()?,
            },
            10 => Op::InjectTornTail {
                base: r.get_u8()?,
                drop: r.get_u8()?,
            },
            11 => Op::InjectBitFlip {
                base: r.get_u8()?,
                offset: r.get_u16()?,
            },
            12 => Op::Partition {
                node: r.get_u8()?,
                base: r.get_u8()?,
            },
            13 => Op::Heal {
                node: r.get_u8()?,
                base: r.get_u8()?,
            },
            14 => Op::LinkBases {
                a: r.get_u8()?,
                b: r.get_u8()?,
            },
            15 => Op::PartitionBases {
                a: r.get_u8()?,
                b: r.get_u8()?,
            },
            16 => Op::HealBases {
                a: r.get_u8()?,
                b: r.get_u8()?,
            },
            17 => Op::Subscribe {
                base: r.get_u8()?,
                ns: r.get_u8()?,
            },
            18 => Op::DropSubscriber { sub: r.get_u8()? },
            19 => Op::RpcSem {
                base: r.get_u8()?,
                node: r.get_u8()?,
                sem: r.get_u8()?,
                x: r.get_u8()?,
                y: r.get_u8()?,
            },
            20 => Op::AdversarialPublish {
                base: r.get_u8()?,
                attack: r.get_u8()?,
                version: r.get_u32()?,
            },
            21 => Op::SlowLinks { mult: r.get_u8()? },
            tag => return Err(r.bad_tag("Op", tag)),
        })
    }
}

/// The extensions chaos runs distribute. All declared permissions fall
/// inside the receivers' `Print|Net|Time|Store` cap, so every one of
/// them is installable when its dependencies are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExtKind {
    /// Session management (implicit dependency of access control).
    Session,
    /// Access control — `requires: ext/session`.
    AccessControl,
    /// Hardware monitoring (`net`).
    Monitoring,
    /// Per-call billing (`net`).
    Billing,
    /// Geofence on plotter movement.
    Geofence,
}

/// Every kind, in wire-tag order.
pub const ALL_KINDS: [ExtKind; 5] = [
    ExtKind::Session,
    ExtKind::AccessControl,
    ExtKind::Monitoring,
    ExtKind::Billing,
    ExtKind::Geofence,
];

impl ExtKind {
    /// The package's extension id.
    #[must_use]
    pub fn ext_id(self) -> &'static str {
        match self {
            ExtKind::Session => pmp_extensions::session::ID,
            ExtKind::AccessControl => pmp_extensions::access_control::ID,
            ExtKind::Monitoring => "ext/monitoring",
            ExtKind::Billing => pmp_extensions::billing::ID,
            ExtKind::Geofence => pmp_extensions::geofence::ID,
        }
    }

    /// Builds the concrete package at `version`, with the same
    /// crosscuts the production-hall scenario uses.
    #[must_use]
    pub fn package(self, version: u32) -> ExtensionPackage {
        match self {
            ExtKind::Session => {
                pmp_extensions::session::package("* DrawingService.*(..)", version)
            }
            ExtKind::AccessControl => pmp_extensions::access_control::package(
                "* DrawingService.*(..)",
                &["operator:1", "operator:2"],
                version,
            ),
            ExtKind::Monitoring => pmp_extensions::monitoring::package(version),
            ExtKind::Billing => pmp_extensions::billing::package("* Motor.*(..)", 2, version),
            ExtKind::Geofence => pmp_extensions::geofence::package(0, 0, 40, 40, version),
        }
    }
}

impl Wire for ExtKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            ExtKind::Session => 0,
            ExtKind::AccessControl => 1,
            ExtKind::Monitoring => 2,
            ExtKind::Billing => 3,
            ExtKind::Geofence => 4,
        });
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => ExtKind::Session,
            1 => ExtKind::AccessControl,
            2 => ExtKind::Monitoring,
            3 => ExtKind::Billing,
            4 => ExtKind::Geofence,
            tag => return Err(r.bad_tag("ExtKind", tag)),
        })
    }
}

impl Scenario {
    /// Pretty one-line-per-step rendering for failure reports.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let t = &self.topology;
        let _ = writeln!(
            out,
            "seed={} halls={} robots={} loss={}‰ lease={}ms linked={} settle={}ms",
            self.seed,
            t.halls,
            t.robots,
            t.loss_per_mille,
            t.lease_ms,
            t.link_neighbors,
            self.settle_ms
        );
        for (i, cat) in t.catalogs.iter().enumerate() {
            let items: Vec<String> = cat
                .iter()
                .map(|e| format!("{}@v{}", e.kind.ext_id(), e.version))
                .collect();
            let _ = writeln!(out, "  hall-{i}: [{}]", items.join(", "));
        }
        for s in &self.steps {
            let _ = writeln!(out, "  t+{:>6}ms {:?}", s.at_ms, s.op);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_wire::{from_bytes, to_bytes};

    fn sample() -> Scenario {
        Scenario {
            seed: 42,
            topology: Topology {
                halls: 2,
                loss_per_mille: 50,
                robots: 2,
                catalogs: vec![
                    vec![
                        CatalogEntry {
                            kind: ExtKind::Session,
                            version: 1,
                        },
                        CatalogEntry {
                            kind: ExtKind::AccessControl,
                            version: 1,
                        },
                    ],
                    vec![CatalogEntry {
                        kind: ExtKind::Billing,
                        version: 3,
                    }],
                ],
                lease_ms: 3000,
                link_neighbors: true,
            },
            steps: vec![
                Step {
                    at_ms: 500,
                    op: Op::MoveToHall { node: 0, hall: 1 },
                },
                Step {
                    at_ms: 900,
                    op: Op::CrashBase { base: 0 },
                },
                Step {
                    at_ms: 1400,
                    op: Op::InjectTornTail { base: 0, drop: 7 },
                },
                Step {
                    at_ms: 2000,
                    op: Op::RestartBase { base: 0 },
                },
                Step {
                    at_ms: 2500,
                    op: Op::Publish {
                        base: 1,
                        kind: ExtKind::Geofence,
                        version: 2,
                    },
                },
            ],
            settle_ms: 8000,
        }
    }

    #[test]
    fn scenario_roundtrips_on_the_wire() {
        let sc = sample();
        assert_eq!(from_bytes::<Scenario>(&to_bytes(&sc)).unwrap(), sc);
    }

    #[test]
    fn every_op_roundtrips() {
        let ops = vec![
            Op::MoveToHall { node: 1, hall: 2 },
            Op::MoveToCorridor { node: 0 },
            Op::SetOnline {
                node: 3,
                online: false,
            },
            Op::AddRobot { hall: 1 },
            Op::CrashBase { base: 0 },
            Op::RestartBase { base: 0 },
            Op::CheckpointBase { base: 1 },
            Op::Publish {
                base: 0,
                kind: ExtKind::Monitoring,
                version: 9,
            },
            Op::Revoke {
                base: 0,
                kind: ExtKind::Session,
            },
            Op::Rpc {
                base: 1,
                node: 2,
                x: 10,
                y: 20,
            },
            Op::InjectTornTail { base: 0, drop: 255 },
            Op::InjectBitFlip {
                base: 1,
                offset: 4096,
            },
            Op::Partition { node: 0, base: 1 },
            Op::Heal { node: 0, base: 1 },
            Op::LinkBases { a: 0, b: 1 },
            Op::PartitionBases { a: 1, b: 2 },
            Op::HealBases { a: 1, b: 2 },
            Op::Subscribe { base: 0, ns: 2 },
            Op::DropSubscriber { sub: 3 },
            Op::RpcSem {
                base: 0,
                node: 1,
                sem: 2,
                x: 5,
                y: 6,
            },
            Op::AdversarialPublish {
                base: 1,
                attack: 3,
                version: 4,
            },
            Op::SlowLinks { mult: 2 },
        ];
        for op in ops {
            assert_eq!(from_bytes::<Op>(&to_bytes(&op)).unwrap(), op);
        }
    }

    #[test]
    fn bad_tags_are_rejected_with_offsets() {
        assert_eq!(
            from_bytes::<Op>(&[200, 0, 0]),
            Err(WireError::InvalidTag {
                type_name: "Op",
                tag: 200,
                offset: 0,
            })
        );
        assert_eq!(
            from_bytes::<ExtKind>(&[7]),
            Err(WireError::InvalidTag {
                type_name: "ExtKind",
                tag: 7,
                offset: 0,
            })
        );
    }

    #[test]
    fn render_names_the_world_and_every_step() {
        let text = sample().render();
        assert!(text.contains("seed=42"));
        assert!(text.contains("hall-0: [ext/session@v1, ext/access-control@v1]"));
        assert!(text.contains("CrashBase"));
    }
}
