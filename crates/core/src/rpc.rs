//! Configurable invocation semantics for remote service calls.
//!
//! The paper's RPC layer (§4.4) assumes one implicit semantic: fire a
//! call, hope the radio cooperates. A hall with 20%+ link loss needs
//! the classic spectrum instead — selectable per call:
//!
//! * **Maybe** — one transmission, no retries, no dedup. The legacy
//!   [`crate::Platform::rpc`] behaviour, byte-identical on the wire.
//! * **At-least-once** — the caller's base retransmits on a
//!   deterministic exponential-backoff schedule until a reply arrives
//!   or the attempt budget is exhausted. The server executes every
//!   arriving copy; duplicate executions are the accepted cost.
//! * **At-most-once** — retransmission as above, plus a bounded
//!   server-side dedup table (request id → cached reply, FIFO
//!   eviction) that filters duplicates and replays the cached reply.
//!   The table is persisted through [`pmp_durable::Durable`], so a
//!   crash → restart never double-executes a call.
//!
//! Three pieces live here: [`RpcEngine`] (caller side, owned by a base
//! station; durable under `"rpc.calls"`), [`RpcServer`] (server side,
//! owned by a mobile node; dedup table durable under `"rpc.dedup"`),
//! and [`backoff_delay`] (the pure retry schedule — simulated time
//! only, never the wall clock, so both drivers compute the same
//! schedule from the same inputs).

use pmp_durable::{Durable, DurableError, NamespaceHandle};
use pmp_net::SimRng;
use pmp_wire::{Reader, Wire, WireError, Writer};
use std::collections::{BTreeMap, VecDeque};

/// Durable namespace of the caller-side call table.
pub const RPC_CALLS_NAMESPACE: &str = "rpc.calls";
/// Durable namespace of the server-side dedup table.
pub const RPC_DEDUP_NAMESPACE: &str = "rpc.dedup";
/// Timer tag for retransmission timers armed by the engine.
pub const RPC_RETRY_TAG: &str = "rpc.retry";

/// The delivery/execution guarantee requested for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InvocationSemantics {
    /// One transmission, no retries, no filtering.
    Maybe,
    /// Retransmit until acknowledged; the server filters duplicates
    /// through its dedup table and replays the cached reply.
    AtMostOnce,
    /// Retransmit until acknowledged; the server executes every copy.
    AtLeastOnce,
}

impl InvocationSemantics {
    /// Stable lowercase name, used in observables and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InvocationSemantics::Maybe => "maybe",
            InvocationSemantics::AtMostOnce => "at-most-once",
            InvocationSemantics::AtLeastOnce => "at-least-once",
        }
    }

    /// Decodes the wire tag used by scripts and messages.
    #[must_use]
    pub fn from_tag(tag: u8) -> InvocationSemantics {
        match tag {
            1 => InvocationSemantics::AtMostOnce,
            2 => InvocationSemantics::AtLeastOnce,
            _ => InvocationSemantics::Maybe,
        }
    }

    /// The wire tag (inverse of [`InvocationSemantics::from_tag`]).
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            InvocationSemantics::Maybe => 0,
            InvocationSemantics::AtMostOnce => 1,
            InvocationSemantics::AtLeastOnce => 2,
        }
    }
}

impl std::fmt::Display for InvocationSemantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Wire for InvocationSemantics {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(InvocationSemantics::Maybe),
            1 => Ok(InvocationSemantics::AtMostOnce),
            2 => Ok(InvocationSemantics::AtLeastOnce),
            tag => Err(r.bad_tag("InvocationSemantics", tag)),
        }
    }
}

/// Retry/timeout tuning shared by every base station's engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcConfig {
    /// First-attempt timeout in simulated nanoseconds. Subsequent
    /// attempts double it ([`backoff_delay`]).
    pub timeout_ns: u64,
    /// Total transmission budget (the initial send counts as attempt
    /// 1); exhaustion resolves the call as a failed outcome.
    pub max_attempts: u32,
    /// Ceiling on any single backoff delay.
    pub backoff_cap_ns: u64,
    /// Upper bound on the deterministic per-attempt jitter added to
    /// the exponential schedule (decorrelates retry bursts).
    pub jitter_ns: u64,
    /// Capacity of each mobile node's dedup table (FIFO eviction).
    pub dedup_cap: usize,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            timeout_ns: 150_000_000,      // 150 ms: >> the ~1 ms link RTT
            max_attempts: 8,
            backoff_cap_ns: 2_000_000_000, // 2 s
            jitter_ns: 10_000_000,         // 10 ms
            dedup_cap: 256,
        }
    }
}

/// The retransmission delay before attempt `attempt + 1`, given that
/// `attempt` transmissions have already happened (`attempt >= 1`).
///
/// Pure function of `(cfg, req, attempt)`: exponential doubling from
/// `cfg.timeout_ns`, capped at `cfg.backoff_cap_ns`, plus splitmix
/// jitter seeded from the request id and attempt counter. No wall
/// clock, no shared RNG — both drivers, any thread count, and a
/// crash-restarted base all compute the identical schedule.
#[must_use]
pub fn backoff_delay(cfg: &RpcConfig, req: u64, attempt: u32) -> u64 {
    let shift = attempt.saturating_sub(1).min(20);
    let base = cfg
        .timeout_ns
        .saturating_mul(1u64 << shift)
        .min(cfg.backoff_cap_ns.max(cfg.timeout_ns));
    let jitter = if cfg.jitter_ns == 0 {
        0
    } else {
        let mut rng = SimRng::new(req.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt));
        rng.range_u64(cfg.jitter_ns)
    };
    base.saturating_add(jitter)
}

/// One outstanding (unresolved) call in the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingCall {
    /// Destination node id (raw `NodeId.0`).
    pub target: u32,
    /// Requested semantics (never `Maybe` — those bypass the engine).
    pub sem: InvocationSemantics,
    /// Caller identity.
    pub caller: String,
    /// Service class name.
    pub class: String,
    /// Method name.
    pub method: String,
    /// Integer arguments.
    pub args: Vec<i64>,
    /// Transmissions so far (1 = only the initial send).
    pub attempts: u32,
    /// Simulated time the call was issued, for latency histograms.
    pub issued_at: u64,
}

impl Wire for PendingCall {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.target);
        self.sem.encode(w);
        w.put_str(&self.caller);
        w.put_str(&self.class);
        w.put_str(&self.method);
        self.args.encode(w);
        w.put_u32(self.attempts);
        w.put_u64(self.issued_at);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(PendingCall {
            target: r.get_u32()?,
            sem: InvocationSemantics::decode(r)?,
            caller: r.get_str()?,
            class: r.get_str()?,
            method: r.get_str()?,
            args: Vec::<i64>::decode(r)?,
            attempts: r.get_u32()?,
            issued_at: r.get_u64()?,
        })
    }
}

/// WAL operations of the caller-side call table.
#[derive(Debug, Clone, PartialEq)]
enum CallOp {
    /// A new call was issued (attempt 1 sent).
    Issue { req: u64, call: PendingCall },
    /// One retransmission happened.
    Attempt { req: u64 },
    /// The call resolved (reply, or budget exhausted).
    Resolve { req: u64 },
}

impl Wire for CallOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            CallOp::Issue { req, call } => {
                w.put_u8(0);
                w.put_u64(*req);
                call.encode(w);
            }
            CallOp::Attempt { req } => {
                w.put_u8(1);
                w.put_u64(*req);
            }
            CallOp::Resolve { req } => {
                w.put_u8(2);
                w.put_u64(*req);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => CallOp::Issue {
                req: r.get_u64()?,
                call: PendingCall::decode(r)?,
            },
            1 => CallOp::Attempt { req: r.get_u64()? },
            2 => CallOp::Resolve { req: r.get_u64()? },
            tag => return Err(r.bad_tag("CallOp", tag)),
        })
    }
}

/// How many resolved request ids the engine remembers, to drop late
/// duplicate replies without growing without bound.
pub const RESOLVED_MEMORY: usize = 1_024;

/// Caller-side call table of one base station.
///
/// Tracks every semantic (`AtMostOnce`/`AtLeastOnce`) call issued
/// through this base: the outstanding set drives retransmission
/// timers, the resolved FIFO filters late duplicate replies, and both
/// are durable so a crash → restart resumes retrying with the *same*
/// request ids (the server's dedup table then makes resumption safe
/// for at-most-once calls). Timer tokens are deliberately *not*
/// durable: [`RpcEngine::rearm_tokens`] hands the restart path the
/// outstanding set so the platform can arm fresh timers.
#[derive(Debug, Default)]
pub struct RpcEngine {
    calls: BTreeMap<u64, PendingCall>,
    /// Recently-resolved ids, FIFO-bounded to [`RESOLVED_MEMORY`].
    resolved: VecDeque<u64>,
    /// Live timer token → request id (rebuilt after restart).
    timers: BTreeMap<u64, u64>,
    handle: Option<NamespaceHandle>,
    /// Retry tuning. Operator state, not durable — the platform
    /// re-applies it when it rebuilds a base.
    cfg: RpcConfig,
    /// Retries sent (telemetry; not durable).
    pub retries: u64,
    /// Calls that exhausted their budget (telemetry; not durable).
    pub exhausted: u64,
}

impl RpcEngine {
    /// A fresh engine. Call [`RpcEngine::attach`] before issuing.
    #[must_use]
    pub fn new() -> RpcEngine {
        RpcEngine::default()
    }

    /// Wires the engine to its WAL namespace.
    pub fn attach(&mut self, handle: NamespaceHandle) {
        self.handle = Some(handle);
    }

    /// Replaces the retry tuning.
    pub fn set_config(&mut self, cfg: RpcConfig) {
        self.cfg = cfg;
    }

    /// The retry tuning in force.
    #[must_use]
    pub fn config(&self) -> &RpcConfig {
        &self.cfg
    }

    fn log(&self, op: &CallOp) {
        if let Some(h) = &self.handle {
            h.append(pmp_wire::to_bytes(op));
        }
    }

    /// Records a freshly-issued call (the initial transmission is
    /// attempt 1; the caller sends it and arms the first timer).
    pub fn issue(&mut self, req: u64, call: PendingCall) {
        self.log(&CallOp::Issue {
            req,
            call: call.clone(),
        });
        self.calls.insert(req, call);
    }

    /// Records one retransmission; returns the new attempt count, or
    /// `None` if the call is no longer outstanding.
    pub fn note_attempt(&mut self, req: u64) -> Option<u32> {
        let call = self.calls.get_mut(&req)?;
        call.attempts += 1;
        let attempts = call.attempts;
        self.log(&CallOp::Attempt { req });
        self.retries += 1;
        Some(attempts)
    }

    /// Resolves `req` (first reply, or budget exhausted). Returns the
    /// call if it was outstanding; `None` means a duplicate or
    /// unknown id, which the caller must ignore.
    pub fn resolve(&mut self, req: u64) -> Option<PendingCall> {
        let call = self.calls.remove(&req)?;
        self.log(&CallOp::Resolve { req });
        self.resolved.push_back(req);
        if self.resolved.len() > RESOLVED_MEMORY {
            self.resolved.pop_front();
        }
        Some(call)
    }

    /// Whether `req` is outstanding.
    #[must_use]
    pub fn is_outstanding(&self, req: u64) -> bool {
        self.calls.contains_key(&req)
    }

    /// Whether `req` resolved recently (a late duplicate reply).
    #[must_use]
    pub fn recently_resolved(&self, req: u64) -> bool {
        self.resolved.contains(&req)
    }

    /// The outstanding call for `req`, if any.
    #[must_use]
    pub fn get(&self, req: u64) -> Option<&PendingCall> {
        self.calls.get(&req)
    }

    /// Number of outstanding calls (the soak memory oracle bounds it).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.calls.len()
    }

    /// Length of the resolved-id FIFO; never exceeds
    /// [`RESOLVED_MEMORY`] (the soak memory oracle asserts this).
    #[must_use]
    pub fn resolved_len(&self) -> usize {
        self.resolved.len()
    }

    /// Outstanding request ids in ascending order — the restart path
    /// iterates this to arm fresh retransmission timers.
    #[must_use]
    pub fn rearm_tokens(&self) -> Vec<u64> {
        self.calls.keys().copied().collect()
    }

    /// Associates a live timer token with `req`.
    pub fn arm(&mut self, token: u64, req: u64) {
        self.timers.insert(token, req);
    }

    /// Consumes a fired timer token; returns the request it was
    /// armed for, or `None` for foreign/stale tokens.
    pub fn take_timer(&mut self, token: u64) -> Option<u64> {
        self.timers.remove(&token)
    }
}

impl Durable for RpcEngine {
    fn namespace(&self) -> &'static str {
        RPC_CALLS_NAMESPACE
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.calls.len() as u32);
        for (req, call) in &self.calls {
            w.put_u64(*req);
            call.encode(&mut w);
        }
        w.put_u32(self.resolved.len() as u32);
        for req in &self.resolved {
            w.put_u64(*req);
        }
        w.into_bytes()
    }

    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let mut r = Reader::new(bytes);
        let n = r.get_u32()?;
        let mut calls = BTreeMap::new();
        for _ in 0..n {
            let req = r.get_u64()?;
            calls.insert(req, PendingCall::decode(&mut r)?);
        }
        let m = r.get_u32()?;
        let mut resolved = VecDeque::with_capacity(m as usize);
        for _ in 0..m {
            resolved.push_back(r.get_u64()?);
        }
        self.calls = calls;
        self.resolved = resolved;
        self.timers.clear();
        Ok(())
    }

    fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        match pmp_wire::from_bytes::<CallOp>(payload)? {
            CallOp::Issue { req, call } => {
                self.calls.insert(req, call);
            }
            CallOp::Attempt { req } => {
                if let Some(c) = self.calls.get_mut(&req) {
                    c.attempts += 1;
                }
            }
            CallOp::Resolve { req } => {
                if self.calls.remove(&req).is_some() {
                    self.resolved.push_back(req);
                    if self.resolved.len() > RESOLVED_MEMORY {
                        self.resolved.pop_front();
                    }
                }
            }
        }
        Ok(())
    }
}

/// WAL operation of the server-side dedup table (insert-only; FIFO
/// eviction is derived from capacity, not logged).
#[derive(Debug, Clone, PartialEq)]
struct DedupInsert {
    req: u64,
    ok: bool,
    value: String,
}

impl Wire for DedupInsert {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.req);
        w.put_bool(self.ok);
        w.put_str(&self.value);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(DedupInsert {
            req: r.get_u64()?,
            ok: r.get_bool()?,
            value: r.get_str()?,
        })
    }
}

/// Bounded request-id → cached-reply table (server side).
///
/// At-most-once execution hinges on this table: an arriving duplicate
/// whose id is present is answered from the cache without touching the
/// service object. Capacity-bounded with FIFO eviction — the soak
/// memory oracle asserts `len() <= cap()` forever — and durable, so a
/// node that moves its state through a crash/restart still refuses to
/// re-execute calls it already ran.
#[derive(Debug)]
pub struct DedupTable {
    cap: usize,
    order: VecDeque<u64>,
    replies: BTreeMap<u64, (bool, String)>,
    /// Duplicate hits answered from cache (telemetry; not durable).
    pub hits: u64,
}

impl DedupTable {
    /// A table holding at most `cap` cached replies.
    #[must_use]
    pub fn new(cap: usize) -> DedupTable {
        DedupTable {
            cap: cap.max(1),
            order: VecDeque::new(),
            replies: BTreeMap::new(),
            hits: 0,
        }
    }

    /// The cached reply for `req`, if present.
    #[must_use]
    pub fn lookup(&self, req: u64) -> Option<&(bool, String)> {
        self.replies.get(&req)
    }

    /// Caches the reply for `req`, evicting the oldest entry at
    /// capacity. Re-inserting an existing id refreshes the value but
    /// not its eviction position.
    pub fn insert(&mut self, req: u64, ok: bool, value: String) {
        if self.replies.insert(req, (ok, value)).is_none() {
            self.order.push_back(req);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.replies.remove(&old);
                }
            }
        }
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replies.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replies.is_empty()
    }

    /// The capacity bound.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl Durable for DedupTable {
    fn namespace(&self) -> &'static str {
        RPC_DEDUP_NAMESPACE
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        // FIFO order *is* state: eviction depends on it.
        let mut w = Writer::new();
        w.put_u32(self.order.len() as u32);
        for req in &self.order {
            let (ok, value) = &self.replies[req];
            w.put_u64(*req);
            w.put_bool(*ok);
            w.put_str(value);
        }
        w.into_bytes()
    }

    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let mut r = Reader::new(bytes);
        let n = r.get_u32()?;
        let mut order = VecDeque::with_capacity(n as usize);
        let mut replies = BTreeMap::new();
        for _ in 0..n {
            let req = r.get_u64()?;
            let ok = r.get_bool()?;
            let value = r.get_str()?;
            order.push_back(req);
            replies.insert(req, (ok, value));
        }
        self.order = order;
        self.replies = replies;
        Ok(())
    }

    fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        let op = pmp_wire::from_bytes::<DedupInsert>(payload)?;
        self.insert(op.req, op.ok, op.value);
        Ok(())
    }
}

/// Server-side RPC state of one mobile node: the dedup table plus an
/// execution ledger the duplicate-execution oracle reads.
#[derive(Debug)]
pub struct RpcServer {
    /// The at-most-once dedup table.
    pub dedup: DedupTable,
    /// req → (semantics, executions). Grows with distinct requests —
    /// instrumentation for tests and oracles, like
    /// [`crate::MobileNode`]'s receiver-event ledger, not product
    /// state.
    exec: BTreeMap<u64, (InvocationSemantics, u32)>,
}

impl Default for RpcServer {
    fn default() -> Self {
        RpcServer::new(RpcConfig::default().dedup_cap)
    }
}

impl RpcServer {
    /// A server with a dedup table of `dedup_cap` entries.
    #[must_use]
    pub fn new(dedup_cap: usize) -> RpcServer {
        RpcServer {
            dedup: DedupTable::new(dedup_cap),
            exec: BTreeMap::new(),
        }
    }

    /// Records one actual execution of `req`.
    pub fn note_execution(&mut self, req: u64, sem: InvocationSemantics) {
        let e = self.exec.entry(req).or_insert((sem, 0));
        e.1 += 1;
    }

    /// WAL payload for a cached reply (the host appends it through the
    /// node's durable hub when one exists).
    #[must_use]
    pub fn dedup_record(req: u64, ok: bool, value: &str) -> Vec<u8> {
        pmp_wire::to_bytes(&DedupInsert {
            req,
            ok,
            value: value.to_string(),
        })
    }

    /// Times `req` was executed.
    #[must_use]
    pub fn executions(&self, req: u64) -> u32 {
        self.exec.get(&req).map_or(0, |e| e.1)
    }

    /// Total *duplicate* executions of at-most-once requests — the
    /// `rpc-duplicate-execution` oracle asserts this stays zero.
    #[must_use]
    pub fn duplicate_at_most_once_executions(&self) -> u64 {
        self.exec
            .values()
            .filter(|(sem, _)| *sem == InvocationSemantics::AtMostOnce)
            .map(|(_, n)| u64::from(n.saturating_sub(1)))
            .sum()
    }

    /// Distinct requests executed at least once, per semantics.
    #[must_use]
    pub fn delivered(&self, sem: InvocationSemantics) -> u64 {
        self.exec
            .values()
            .filter(|(s, n)| *s == sem && *n >= 1)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_durable::DurableHub;

    #[test]
    fn semantics_roundtrip_on_the_wire() {
        for sem in [
            InvocationSemantics::Maybe,
            InvocationSemantics::AtMostOnce,
            InvocationSemantics::AtLeastOnce,
        ] {
            let bytes = pmp_wire::to_bytes(&sem);
            assert_eq!(
                pmp_wire::from_bytes::<InvocationSemantics>(&bytes).unwrap(),
                sem
            );
            assert_eq!(InvocationSemantics::from_tag(sem.tag()), sem);
        }
    }

    #[test]
    fn backoff_is_pure_exponential_and_capped() {
        let cfg = RpcConfig::default();
        for req in [1u64, 17, 900] {
            for attempt in 1..=12u32 {
                let a = backoff_delay(&cfg, req, attempt);
                let b = backoff_delay(&cfg, req, attempt);
                assert_eq!(a, b, "schedule must be pure");
                assert!(a >= cfg.timeout_ns);
                assert!(a <= cfg.backoff_cap_ns + cfg.jitter_ns);
            }
        }
        // Doubling dominates the jitter for early attempts.
        let d1 = backoff_delay(&cfg, 5, 1);
        let d3 = backoff_delay(&cfg, 5, 3);
        assert!(d3 > d1);
    }

    #[test]
    fn dedup_table_is_fifo_bounded() {
        let mut t = DedupTable::new(3);
        for req in 0..5u64 {
            t.insert(req, true, format!("v{req}"));
        }
        assert_eq!(t.len(), 3);
        assert!(t.lookup(0).is_none(), "oldest entries evicted");
        assert!(t.lookup(1).is_none());
        assert_eq!(t.lookup(4).unwrap().1, "v4");
    }

    #[test]
    fn dedup_table_survives_crash_recover() {
        let hub = DurableHub::new();
        let mut t = DedupTable::new(8);
        let h = hub.namespace(RPC_DEDUP_NAMESPACE);
        for req in 1..=4u64 {
            t.insert(req, true, format!("r{req}"));
            h.append(RpcServer::dedup_record(req, true, &format!("r{req}")));
        }
        hub.commit();
        let digest = t.state_digest();
        hub.crash();
        let mut restored = DedupTable::new(8);
        hub.recover(&mut [&mut restored]);
        assert_eq!(restored.state_digest(), digest);
        assert_eq!(restored.lookup(3).unwrap().1, "r3");
    }

    #[test]
    fn engine_walks_through_issue_attempt_resolve() {
        let hub = DurableHub::new();
        let mut e = RpcEngine::new();
        e.attach(hub.namespace(RPC_CALLS_NAMESPACE));
        let call = PendingCall {
            target: 3,
            sem: InvocationSemantics::AtMostOnce,
            caller: "op".into(),
            class: "DrawingService".into(),
            method: "moveTo".into(),
            args: vec![1, 2],
            attempts: 1,
            issued_at: 10,
        };
        e.issue(42, call);
        assert!(e.is_outstanding(42));
        assert_eq!(e.note_attempt(42), Some(2));
        hub.commit();
        let digest = e.state_digest();

        // WAL replay rebuilds the same state.
        hub.crash();
        let mut r = RpcEngine::new();
        hub.recover(&mut [&mut r]);
        assert_eq!(r.state_digest(), digest);
        assert_eq!(r.get(42).unwrap().attempts, 2);

        // Resolution removes and remembers.
        assert!(r.resolve(42).is_some());
        assert!(r.resolve(42).is_none(), "double resolve is filtered");
        assert!(r.recently_resolved(42));
    }

    #[test]
    fn server_ledger_counts_duplicates() {
        let mut s = RpcServer::new(4);
        s.note_execution(1, InvocationSemantics::AtMostOnce);
        s.note_execution(2, InvocationSemantics::AtLeastOnce);
        s.note_execution(2, InvocationSemantics::AtLeastOnce);
        assert_eq!(s.duplicate_at_most_once_executions(), 0);
        s.note_execution(1, InvocationSemantics::AtMostOnce);
        assert_eq!(s.duplicate_at_most_once_executions(), 1);
        assert_eq!(s.delivered(InvocationSemantics::AtLeastOnce), 1);
    }
}

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use pmp_durable::DurableHub;
    use proptest::prelude::*;

    /// One step of an adversarial delivery schedule.
    #[derive(Debug, Clone)]
    enum Event {
        /// A (possibly duplicate) copy of call `idx` arrives.
        Arrive(usize),
        /// The node crashes and recovers from its WAL.
        CrashRecover,
    }

    fn event() -> impl Strategy<Value = Event> {
        prop_oneof![
            4 => (0usize..8).prop_map(Event::Arrive),
            1 => Just(Event::CrashRecover),
        ]
    }

    proptest! {
        /// Under arbitrary retry/loss/crash interleavings — duplicate
        /// arrivals in any order, crash/recover at any point — an
        /// at-most-once request is executed at most once, as long as
        /// the dedup table has capacity for the distinct ids in flight.
        #[test]
        fn dedup_never_reexecutes(events in proptest::collection::vec(event(), 1..64)) {
            let hub = DurableHub::new();
            let mut server = RpcServer::new(16);
            let h = hub.namespace(RPC_DEDUP_NAMESPACE);
            let mut executions = [0u32; 8];
            for ev in events {
                match ev {
                    Event::Arrive(idx) => {
                        let req = 100 + idx as u64;
                        if server.dedup.lookup(req).is_none() {
                            executions[idx] += 1;
                            server.note_execution(req, InvocationSemantics::AtMostOnce);
                            server.dedup.insert(req, true, format!("v{idx}"));
                            h.append(RpcServer::dedup_record(req, true, &format!("v{idx}")));
                            hub.commit();
                        } else {
                            server.dedup.hits += 1;
                        }
                    }
                    Event::CrashRecover => {
                        hub.crash();
                        let mut fresh = DedupTable::new(16);
                        hub.recover(&mut [&mut fresh]);
                        prop_assert_eq!(fresh.state_digest(), server.dedup.state_digest());
                        server.dedup = fresh;
                    }
                }
            }
            for n in executions {
                prop_assert!(n <= 1, "at-most-once executed {n} times");
            }
            prop_assert_eq!(server.duplicate_at_most_once_executions(), 0);
        }

        /// The backoff schedule is a pure function of its inputs: no
        /// wall clock, no hidden state, monotone in the attempt number
        /// up to the cap, and bounded by cap + jitter.
        #[test]
        fn backoff_is_deterministic(req in any::<u64>(), attempt in 1u32..16) {
            let cfg = RpcConfig::default();
            let a = backoff_delay(&cfg, req, attempt);
            let b = backoff_delay(&cfg, req, attempt);
            prop_assert_eq!(a, b);
            prop_assert!(a >= cfg.timeout_ns);
            prop_assert!(a <= cfg.backoff_cap_ns + cfg.jitter_ns);
        }
    }
}
