//! The bytecode interpreter ("native execution" of JIT output).

use crate::error::{exception_class, Limit, VmError, VmException};
use crate::hooks::{HOOK_CATCH, HOOK_GET, HOOK_SET, HOOK_THROW};
use crate::op::CompiledOp;
use crate::value::Value;
use crate::vm::{CompiledMethod, Vm};

fn type_error(msg: impl Into<String>) -> VmError {
    VmError::exception(exception_class::TYPE, msg)
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, VmError> {
    stack
        .pop()
        .ok_or_else(|| VmError::link("operand stack underflow"))
}

fn pop_int(stack: &mut Vec<Value>) -> Result<i64, VmError> {
    match pop(stack)? {
        Value::Int(i) => Ok(i),
        other => Err(type_error(format!("expected int, found {}", other.kind()))),
    }
}

fn pop_bool(stack: &mut Vec<Value>) -> Result<bool, VmError> {
    match pop(stack)? {
        Value::Bool(b) => Ok(b),
        other => Err(type_error(format!("expected bool, found {}", other.kind()))),
    }
}

fn pop_obj(stack: &mut Vec<Value>) -> Result<crate::value::ObjId, VmError> {
    match pop(stack)? {
        Value::Ref(id) => Ok(id),
        Value::Null => Err(VmError::exception(
            exception_class::NULL_POINTER,
            "null reference",
        )),
        other => Err(type_error(format!("expected ref, found {}", other.kind()))),
    }
}

fn binary_num(
    stack: &mut Vec<Value>,
    int_op: impl Fn(i64, i64) -> Result<i64, VmError>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<(), VmError> {
    let b = pop(stack)?;
    let a = pop(stack)?;
    let v = match (a, b) {
        (Value::Int(a), Value::Int(b)) => Value::Int(int_op(a, b)?),
        (Value::Float(a), Value::Float(b)) => Value::Float(float_op(a, b)),
        (a, b) => {
            return Err(type_error(format!(
                "numeric op on {} and {}",
                a.kind(),
                b.kind()
            )))
        }
    };
    stack.push(v);
    Ok(())
}

fn binary_int(stack: &mut Vec<Value>, op: impl Fn(i64, i64) -> i64) -> Result<(), VmError> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    stack.push(Value::Int(op(a, b)));
    Ok(())
}

fn compare(
    stack: &mut Vec<Value>,
    op: impl Fn(std::cmp::Ordering) -> bool,
) -> Result<(), VmError> {
    let b = pop(stack)?;
    let a = pop(stack)?;
    let ord = match (&a, &b) {
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        (Value::Float(a), Value::Float(b)) => a
            .partial_cmp(b)
            .ok_or_else(|| type_error("NaN comparison"))?,
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        _ => {
            return Err(type_error(format!(
                "ordering comparison on {} and {}",
                a.kind(),
                b.kind()
            )))
        }
    };
    stack.push(Value::Bool(op(ord)));
    Ok(())
}

/// Control-flow outcome of executing one instruction.
enum Step {
    /// Fall through to `pc + 1`.
    Next,
    /// Transfer control to this pc.
    Jump(usize),
    /// Return from the method.
    Return(Value),
}

/// Runs a compiled bytecode body to completion.
pub(crate) fn run(
    vm: &mut Vm,
    compiled: &CompiledMethod,
    this: Value,
    args: Vec<Value>,
) -> Result<Value, VmError> {
    let mut locals = vec![Value::Null; compiled.nlocals as usize];
    if args.len() + 1 > locals.len() {
        return Err(VmError::link("argument count exceeds local slots"));
    }
    locals[0] = this;
    for (i, a) in args.into_iter().enumerate() {
        locals[i + 1] = a;
    }
    let mut stack: Vec<Value> = Vec::with_capacity(8);
    let mut pc: usize = 0;
    // Whether this method was compiled with stubs and advice may fire.
    let hooks_live = compiled.stub && vm.hooks_live();

    loop {
        if let Some(fuel) = vm.fuel() {
            if fuel == 0 {
                return Err(VmError::Limit(Limit::Fuel));
            }
            vm.set_fuel(Some(fuel - 1));
        }
        vm.count_bytecode_op();
        let op = match compiled.ops.get(pc) {
            Some(op) => op.clone(),
            // Falling off the end returns null, like an implicit `Ret`.
            None => return Ok(Value::Null),
        };

        let step = exec_op(vm, compiled, &mut stack, &mut locals, op, pc, hooks_live);
        match step {
            Ok(Step::Next) => pc += 1,
            Ok(Step::Jump(target)) => {
                // A jump must land on an instruction; sequential
                // fall-off is an implicit `Ret`, but a wild jump is a
                // link error (same rule as the JIT's `check_target`).
                // Anchored at the *jumping instruction's* offset, the
                // same pc the JIT and the analyze verifier report.
                if target >= compiled.ops.len() {
                    return Err(VmError::link(format!(
                        "jump target {target} out of range @{pc} (method has {} ops)",
                        compiled.ops.len()
                    )));
                }
                pc = target;
            }
            Ok(Step::Return(v)) => return Ok(v),
            Err(VmError::Exception(exc)) => {
                // Search this method's handler table for the faulting pc.
                let handler = compiled.handlers.iter().find(|h| {
                    (h.start as usize) <= pc
                        && pc < (h.end as usize)
                        && (&*h.class == "*" || *h.class == *exc.class)
                });
                match handler {
                    Some(h) => {
                        if hooks_live && vm.hooks().exception_flags() & HOOK_CATCH != 0 {
                            vm.dispatch_exception_catch(compiled.mid, &exc)?;
                        }
                        stack.clear();
                        stack.push(Value::str(&exc.message));
                        pc = h.target as usize;
                    }
                    None => return Err(VmError::Exception(exc)),
                }
            }
            Err(other) => return Err(other),
        }
    }
}

#[allow(clippy::too_many_lines)]
fn exec_op(
    vm: &mut Vm,
    compiled: &CompiledMethod,
    stack: &mut Vec<Value>,
    locals: &mut [Value],
    op: CompiledOp,
    _pc: usize,
    hooks_live: bool,
) -> Result<Step, VmError> {
    match op {
        CompiledOp::Const(v) => stack.push(v),
        CompiledOp::Load(i) => {
            let v = locals
                .get(i as usize)
                .cloned()
                .ok_or_else(|| VmError::link(format!("bad local {i}")))?;
            stack.push(v);
        }
        CompiledOp::Store(i) => {
            let v = pop(stack)?;
            let slot = locals
                .get_mut(i as usize)
                .ok_or_else(|| VmError::link(format!("bad local {i}")))?;
            *slot = v;
        }
        CompiledOp::Dup => {
            let v = stack
                .last()
                .cloned()
                .ok_or_else(|| VmError::link("operand stack underflow"))?;
            stack.push(v);
        }
        CompiledOp::Pop => {
            pop(stack)?;
        }
        CompiledOp::Swap => {
            let b = pop(stack)?;
            let a = pop(stack)?;
            stack.push(b);
            stack.push(a);
        }
        CompiledOp::Add => binary_num(stack, |a, b| Ok(a.wrapping_add(b)), |a, b| a + b)?,
        CompiledOp::Sub => binary_num(stack, |a, b| Ok(a.wrapping_sub(b)), |a, b| a - b)?,
        CompiledOp::Mul => binary_num(stack, |a, b| Ok(a.wrapping_mul(b)), |a, b| a * b)?,
        CompiledOp::Div => binary_num(
            stack,
            |a, b| {
                if b == 0 {
                    Err(VmError::exception(
                        exception_class::ARITHMETIC,
                        "division by zero",
                    ))
                } else {
                    Ok(a.wrapping_div(b))
                }
            },
            |a, b| a / b,
        )?,
        CompiledOp::Rem => binary_num(
            stack,
            |a, b| {
                if b == 0 {
                    Err(VmError::exception(
                        exception_class::ARITHMETIC,
                        "remainder by zero",
                    ))
                } else {
                    Ok(a.wrapping_rem(b))
                }
            },
            |a, b| a % b,
        )?,
        CompiledOp::Neg => {
            let v = match pop(stack)? {
                Value::Int(i) => Value::Int(i.wrapping_neg()),
                Value::Float(f) => Value::Float(-f),
                other => return Err(type_error(format!("negate {}", other.kind()))),
            };
            stack.push(v);
        }
        CompiledOp::Shl => binary_int(stack, |a, b| a.wrapping_shl(b as u32 & 63))?,
        CompiledOp::Shr => binary_int(stack, |a, b| a.wrapping_shr(b as u32 & 63))?,
        CompiledOp::BitAnd => binary_int(stack, |a, b| a & b)?,
        CompiledOp::BitOr => binary_int(stack, |a, b| a | b)?,
        CompiledOp::BitXor => binary_int(stack, |a, b| a ^ b)?,
        CompiledOp::Eq => {
            let b = pop(stack)?;
            let a = pop(stack)?;
            stack.push(Value::Bool(a == b));
        }
        CompiledOp::Ne => {
            let b = pop(stack)?;
            let a = pop(stack)?;
            stack.push(Value::Bool(a != b));
        }
        CompiledOp::Lt => compare(stack, |o| o.is_lt())?,
        CompiledOp::Le => compare(stack, |o| o.is_le())?,
        CompiledOp::Gt => compare(stack, |o| o.is_gt())?,
        CompiledOp::Ge => compare(stack, |o| o.is_ge())?,
        CompiledOp::Not => {
            let b = pop_bool(stack)?;
            stack.push(Value::Bool(!b));
        }
        CompiledOp::Jump(t) => return Ok(Step::Jump(t as usize)),
        CompiledOp::JumpIf(t) => {
            if pop_bool(stack)? {
                return Ok(Step::Jump(t as usize));
            }
        }
        CompiledOp::JumpIfNot(t) => {
            if !pop_bool(stack)? {
                return Ok(Step::Jump(t as usize));
            }
        }
        CompiledOp::Ret => return Ok(Step::Return(Value::Null)),
        CompiledOp::RetVal => return Ok(Step::Return(pop(stack)?)),
        CompiledOp::New(cid) => {
            let v = vm.alloc_instance(cid)?;
            stack.push(v);
        }
        CompiledOp::GetField { slot, fid } => {
            let obj = pop_obj(stack)?;
            let mut value = vm.heap().field(obj, slot)?;
            if hooks_live && vm.hooks().field_flags(fid) & HOOK_GET != 0 {
                vm.dispatch_field_get(fid, obj, &mut value)?;
            }
            stack.push(value);
        }
        CompiledOp::PutField { slot, fid } => {
            let mut value = pop(stack)?;
            let obj = pop_obj(stack)?;
            if hooks_live && vm.hooks().field_flags(fid) & HOOK_SET != 0 {
                vm.dispatch_field_set(fid, obj, &mut value)?;
            }
            vm.heap_mut().set_field(obj, slot, value)?;
        }
        CompiledOp::CallV { method, argc } => {
            let n = argc as usize;
            if stack.len() < n + 1 {
                return Err(VmError::link("operand stack underflow"));
            }
            let args = stack.split_off(stack.len() - n);
            let recv = pop(stack)?;
            let ret = vm.call_virtual(&method, recv, args)?;
            stack.push(ret);
        }
        CompiledOp::CallStatic { mid, argc } => {
            let n = argc as usize;
            if stack.len() < n {
                return Err(VmError::link("operand stack underflow"));
            }
            let args = stack.split_off(stack.len() - n);
            let ret = vm.invoke(mid, Value::Null, args)?;
            stack.push(ret);
        }
        CompiledOp::CallDirect { mid, argc } => {
            // Devirtualised `CallV`: the optimizer proved the receiver's
            // class, so skip the heap class lookup + name resolution and
            // invoke the resolved method with the receiver as `this`.
            let n = argc as usize;
            if stack.len() < n + 1 {
                return Err(VmError::link("operand stack underflow"));
            }
            let args = stack.split_off(stack.len() - n);
            let recv = pop(stack)?;
            if recv == Value::Null {
                return Err(VmError::exception(
                    exception_class::NULL_POINTER,
                    "null receiver",
                ));
            }
            let ret = vm.invoke(mid, recv, args)?;
            stack.push(ret);
        }
        CompiledOp::NewArray => {
            let len = pop_int(stack)?;
            let len = usize::try_from(len).map_err(|_| {
                VmError::exception(
                    exception_class::INDEX_OUT_OF_BOUNDS,
                    format!("negative array length {len}"),
                )
            })?;
            let id = vm.heap_mut().alloc_array(len);
            stack.push(Value::Ref(id));
        }
        CompiledOp::ArrGet => {
            let idx = pop_int(stack)?;
            let arr = pop_obj(stack)?;
            stack.push(vm.heap().array_get(arr, idx)?);
        }
        CompiledOp::ArrSet => {
            let v = pop(stack)?;
            let idx = pop_int(stack)?;
            let arr = pop_obj(stack)?;
            vm.heap_mut().array_set(arr, idx, v)?;
        }
        CompiledOp::ArrLen => {
            let arr = pop_obj(stack)?;
            stack.push(Value::Int(vm.heap().array_len(arr)? as i64));
        }
        CompiledOp::NewBuffer => {
            let len = pop_int(stack)?;
            let len = usize::try_from(len).map_err(|_| {
                VmError::exception(
                    exception_class::INDEX_OUT_OF_BOUNDS,
                    format!("negative buffer length {len}"),
                )
            })?;
            let id = vm.heap_mut().alloc_buffer(len);
            stack.push(Value::Ref(id));
        }
        CompiledOp::BufGet => {
            let idx = pop_int(stack)?;
            let buf = pop_obj(stack)?;
            stack.push(Value::Int(i64::from(vm.heap().buffer_get(buf, idx)?)));
        }
        CompiledOp::BufSet => {
            let byte = pop_int(stack)?;
            let idx = pop_int(stack)?;
            let buf = pop_obj(stack)?;
            vm.heap_mut().buffer_set(buf, idx, byte)?;
        }
        CompiledOp::BufLen => {
            let buf = pop_obj(stack)?;
            stack.push(Value::Int(vm.heap().buffer_len(buf)? as i64));
        }
        CompiledOp::Throw(class) => {
            let msg = pop(stack)?;
            let exc = VmException::new(&*class, msg.to_string());
            if hooks_live && vm.hooks().exception_flags() & HOOK_THROW != 0 {
                vm.dispatch_exception_throw(compiled.mid, &exc)?;
            }
            return Err(exc.into());
        }
        CompiledOp::Concat => {
            let b = pop(stack)?;
            let a = pop(stack)?;
            stack.push(Value::str(format!("{a}{b}")));
        }
        CompiledOp::ToStr => {
            let v = pop(stack)?;
            stack.push(Value::str(v.to_string()));
        }
        CompiledOp::ToInt => {
            let v = pop(stack)?;
            let i = match &v {
                Value::Int(i) => *i,
                Value::Float(f) => *f as i64,
                Value::Bool(b) => i64::from(*b),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map_err(|_| type_error(format!("cannot parse {s:?} as int")))?,
                other => return Err(type_error(format!("to-int on {}", other.kind()))),
            };
            stack.push(Value::Int(i));
        }
        CompiledOp::ToFloat => {
            let v = pop(stack)?;
            let f = match &v {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| type_error(format!("cannot parse {s:?} as float")))?,
                other => return Err(type_error(format!("to-float on {}", other.kind()))),
            };
            stack.push(Value::Float(f));
        }
        CompiledOp::Sys { sys, argc } => {
            let n = argc as usize;
            if stack.len() < n {
                return Err(VmError::link("operand stack underflow"));
            }
            let args = stack.split_off(stack.len() - n);
            let ret = vm.call_sys(sys, args)?;
            stack.push(ret);
        }
        CompiledOp::Nop => {}
    }
    Ok(Step::Next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassDef;
    use crate::op::Op;
    use crate::types::TypeSig;
    use crate::vm::VmConfig;

    /// Hand-builds a compiled body for a registered method, bypassing
    /// the JIT's target validation.
    fn compiled(vm: &Vm, ops: Vec<CompiledOp>) -> CompiledMethod {
        let mid = vm.method_id("T", "m").unwrap();
        CompiledMethod {
            mid,
            ops,
            handlers: vec![],
            nlocals: 1,
            stub: false,
        }
    }

    fn vm_with_method() -> Vm {
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("T")
                .method("m", [], TypeSig::Void, |b| {
                    b.op(Op::Ret);
                })
                .done(),
        )
        .unwrap();
        vm
    }

    #[test]
    fn wild_jump_is_a_link_error_not_a_panic() {
        let mut vm = vm_with_method();
        let cm = compiled(&vm, vec![CompiledOp::Jump(99)]);
        let err = run(&mut vm, &cm, Value::Null, vec![]).unwrap_err();
        assert!(
            matches!(&err, VmError::Link(msg) if msg.contains("jump target 99 out of range")),
            "{err:?}"
        );
    }

    #[test]
    fn wild_jump_error_names_the_jumping_instruction_offset() {
        // Interpreter and JIT must report the *same* offset for the
        // same wild jump: the pc of the jumping instruction. Here the
        // jump sits at pc 1 (after a Nop).
        let mut vm = vm_with_method();
        let cm = compiled(&vm, vec![CompiledOp::Nop, CompiledOp::Jump(99)]);
        let interp_err = run(&mut vm, &cm, Value::Null, vec![]).unwrap_err();
        let interp_msg = match &interp_err {
            VmError::Link(m) => m.clone(),
            other => panic!("expected link error, got {other:?}"),
        };
        assert!(interp_msg.contains("jump target 99 out of range @1"), "{interp_msg}");

        // The JIT rejects the same body at compile time, anchored at
        // the same offset.
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("W")
                .method("m", [], TypeSig::Void, |b| {
                    b.op(Op::Nop).op(Op::Jump(99)).op(Op::Ret);
                })
                .done(),
        )
        .unwrap();
        let obj = vm.new_object("W").unwrap();
        let jit_err = vm.call("W", "m", obj, vec![]).unwrap_err();
        let jit_msg = match &jit_err {
            VmError::Link(m) => m.clone(),
            other => panic!("expected link error, got {other:?}"),
        };
        assert!(jit_msg.contains("@1: jump target 99 out of range"), "{jit_msg}");
    }

    #[test]
    fn conditional_wild_jump_is_a_link_error() {
        let mut vm = vm_with_method();
        let cm = compiled(
            &vm,
            vec![CompiledOp::Const(Value::Bool(true)), CompiledOp::JumpIf(7)],
        );
        let err = run(&mut vm, &cm, Value::Null, vec![]).unwrap_err();
        assert!(matches!(&err, VmError::Link(msg) if msg.contains("out of range")));
    }

    #[test]
    fn sequential_fall_off_is_still_an_implicit_ret() {
        let mut vm = vm_with_method();
        let cm = compiled(&vm, vec![CompiledOp::Nop]);
        assert_eq!(run(&mut vm, &cm, Value::Null, vec![]).unwrap(), Value::Null);
    }

    #[test]
    fn in_range_jump_still_works() {
        let mut vm = vm_with_method();
        let cm = compiled(
            &vm,
            vec![
                CompiledOp::Jump(2),
                CompiledOp::Const(Value::Int(1)),
                CompiledOp::Ret,
            ],
        );
        assert_eq!(run(&mut vm, &cm, Value::Null, vec![]).unwrap(), Value::Null);
    }
}
