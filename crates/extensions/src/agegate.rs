//! The device-age trust extension (paper §4.6): "a proactive context
//! can add an extension that records the 'birth date' of a device. The
//! very same extension may intercept all service invocations ... and
//! decide how to proceed depending on the device's age."

use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::Op;

/// Extension id.
pub const ID: &str = "ext/age-gate";

/// Builds the age-gate package: service calls matching
/// `service_pattern` are denied until the device has been adapted for
/// at least `min_age_ns`.
pub fn package(service_pattern: &str, min_age_ns: i64, version: u32) -> ExtensionPackage {
    let class_name = versioned_class("AgeGate", version);

    // init(): this.birth = time.now()
    let mut init = MethodBuilder::new();
    init.op(Op::Load(0));
    init.op(Op::Sys {
        name: "time.now".into(),
        argc: 0,
    });
    init.op(Op::PutField {
        class: class_name.clone(),
        field: "birth".into(),
    });
    init.op(Op::Ret);

    // gate(): if time.now() - birth < min_age → deny
    let mut gate = MethodBuilder::new();
    let ok = gate.label();
    gate.op(Op::Sys {
        name: "time.now".into(),
        argc: 0,
    });
    gate.op(Op::Load(0)).op(Op::GetField {
        class: class_name.clone(),
        field: "birth".into(),
    });
    gate.op(Op::Sub);
    gate.konst(min_age_ns).op(Op::Ge);
    gate.jump_if(ok);
    gate.konst("device too young to be trusted");
    gate.op(Op::Throw("AccessDeniedException".into()));
    gate.bind(ok);
    gate.op(Op::Ret);

    let class = PortableClass {
        name: class_name,
        fields: vec![("birth".into(), "int".into())],
        methods: vec![
            PortableMethod {
                name: "init".into(),
                params: vec![],
                ret: "any".into(),
                body: init.build(),
            },
            PortableMethod {
                name: "gate".into(),
                params: advice_params(),
                ret: "any".into(),
                body: gate.build(),
            },
        ],
    };
    let aspect = Aspect::script(
        "age-gate",
        class,
        vec![(
            Crosscut::parse(&format!("before {service_pattern}")).expect("valid"),
            "gate".into(),
            -60,
        )],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: ID.into(),
            version,
            description: "trust grows with device age; young devices are denied".into(),
            requires: vec![],
            permissions: vec!["time".into()],
            implicit: false,
        },
        aspect: PortableAspect::try_from(&aspect).expect("portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_vm::perm::{Permission, Permissions};
    use pmp_vm::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn young_devices_denied_then_trusted_with_age() {
        let mut vm = Vm::new(VmConfig::default());
        let now = Arc::new(AtomicU64::new(1_000));
        let n = now.clone();
        vm.set_clock(Arc::new(move || n.load(Ordering::Relaxed)));
        vm.register_class(
            ClassDef::build("DrawingService")
                .method("draw", [], TypeSig::Void, |b| {
                    b.op(Op::Ret);
                })
                .done(),
        )
        .unwrap();
        let prose = Prose::attach(&mut vm);
        prose
            .weave(
                &mut vm,
                package("* DrawingService.*(..)", 10_000, 1).aspect.into(),
                WeaveOptions::sandboxed(Permissions::none().with(Permission::Time)),
            )
            .unwrap();

        let svc = vm.new_object("DrawingService").unwrap();
        // Too young: birth = 1_000, now = 1_000 → age 0.
        let err = vm
            .call("DrawingService", "draw", svc.clone(), vec![])
            .unwrap_err();
        assert_eq!(
            err.as_exception().unwrap().class.as_ref(),
            "AccessDeniedException"
        );
        // Age the device past the threshold.
        now.store(20_000, Ordering::Relaxed);
        vm.call("DrawingService", "draw", svc, vec![]).unwrap();
    }
}
