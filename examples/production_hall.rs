//! The paper's headline scenario (Fig. 2): a robot roams between two
//! production halls; each hall proactively adapts it with its own
//! policies the moment it arrives, and everything evaporates when it
//! leaves.
//!
//! ```bash
//! cargo run --example production_hall
//! ```

use pmp::core::{ProductionHalls, CORRIDOR, IN_HALL_B};

const SEC: u64 = 1_000_000_000;

fn show(w: &ProductionHalls, label: &str) {
    let node = w.platform.node(w.robot);
    println!(
        "[{}] {label}: extensions = {:?}",
        w.platform.now(),
        node.receiver.installed_ids()
    );
}

fn main() {
    let mut w = ProductionHalls::build(2003);
    println!("world: hall A (monitoring + access control), hall B (geofence + billing)");

    // --- Hall A -------------------------------------------------------
    w.platform.pump(6 * SEC);
    show(&w, "robot entered hall A");

    // An authorized operator draws remotely; the hall logs every motor
    // command into its database.
    let ok = w.platform.rpc(
        w.base_a, w.robot, "operator:1", "DrawingService", "drawLine",
        vec![0, 0, 20, 0],
    );
    let denied = w.platform.rpc(
        w.base_a, w.robot, "saboteur", "DrawingService", "drawLine",
        vec![0, 0, 99, 99],
    );
    w.platform.pump(3 * SEC);
    for o in w.platform.take_rpc_outcomes() {
        let who = if o.req == ok { "operator:1" } else if o.req == denied { "saboteur  " } else { "?" };
        println!("  rpc from {who}: ok={} {}", o.ok, o.value);
    }
    println!(
        "  hall A database now holds {} movement records",
        w.platform.base(w.base_a).store.len()
    );

    // --- Leaving ------------------------------------------------------
    w.platform.move_node(w.robot, CORRIDOR);
    w.platform.pump(12 * SEC);
    show(&w, "robot left into the corridor (leases lapsed)");

    // --- Hall B -------------------------------------------------------
    w.platform.move_node(w.robot, IN_HALL_B);
    w.platform.pump(6 * SEC);
    show(&w, "robot entered hall B");

    let inside = w.platform.rpc(
        w.base_b, w.robot, "anyone", "DrawingService", "moveTo", vec![20, 20],
    );
    let outside = w.platform.rpc(
        w.base_b, w.robot, "anyone", "DrawingService", "moveTo", vec![55, 5],
    );
    w.platform.pump(3 * SEC);
    for o in w.platform.take_rpc_outcomes() {
        let what = if o.req == inside { "moveTo(20,20) inside fence " } else if o.req == outside { "moveTo(55,5) outside fence" } else { "?" };
        println!("  {what}: ok={} {}", o.ok, o.value);
    }

    // The hall turns billing off; the settlement arrives as the
    // extension's shutdown procedure runs.
    w.platform
        .revoke_extension(w.base_b, "ext/billing", "end of shift");
    w.platform.pump(3 * SEC);
    for (robot, reason, amount) in &w.platform.base(w.base_b).charges {
        println!("  billing settled: {robot} owes {amount} units ({reason})");
    }
    show(&w, "after hall B revoked billing");
    println!("done — the robot itself never carried any of this code.");
}
