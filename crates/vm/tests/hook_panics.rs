//! Hook-dispatch panic containment (ISSUE 5 satellite).
//!
//! Advice is foreign code woven into the VM at runtime. A panic inside
//! a dispatcher callback must surface as a `VmError` on the intercepted
//! call — the same contract as advice returning `Err` — and must leave
//! the VM able to serve further calls. Before this conversion a buggy
//! extension could unwind straight through the interpreter and take the
//! whole simulated node (and, under the parallel driver, the worker
//! thread) down with it.

use pmp_vm::hooks::{Dispatcher, Outcome, HOOK_ENTRY, HOOK_EXIT, HOOK_SET};
use pmp_vm::prelude::*;
use pmp_vm::VmException;
use std::sync::Arc;

/// Panics inside exactly one callback, chosen at construction.
struct Bomb {
    site: &'static str,
}

impl Bomb {
    fn arm(site: &'static str) -> Arc<Self> {
        Arc::new(Self { site })
    }
    fn maybe_blow(&self, site: &'static str) {
        if self.site == site {
            panic!("{site} boom");
        }
    }
}

impl Dispatcher for Bomb {
    fn method_entry(
        &self,
        _vm: &mut Vm,
        _mid: MethodId,
        _this: &Value,
        _args: &mut Vec<Value>,
    ) -> Result<(), VmError> {
        self.maybe_blow("method_entry");
        Ok(())
    }

    fn method_exit(
        &self,
        _vm: &mut Vm,
        _mid: MethodId,
        _this: &Value,
        _args: &[Value],
        _outcome: &mut Outcome,
    ) -> Result<(), VmError> {
        self.maybe_blow("method_exit");
        Ok(())
    }

    fn field_get(
        &self,
        _vm: &mut Vm,
        _fid: FieldId,
        _obj: ObjId,
        _value: &mut Value,
    ) -> Result<(), VmError> {
        self.maybe_blow("field_get");
        Ok(())
    }

    fn field_set(
        &self,
        _vm: &mut Vm,
        _fid: FieldId,
        _obj: ObjId,
        _value: &mut Value,
    ) -> Result<(), VmError> {
        self.maybe_blow("field_set");
        Ok(())
    }

    fn exception_throw(
        &self,
        _vm: &mut Vm,
        _site: MethodId,
        _exc: &VmException,
    ) -> Result<(), VmError> {
        self.maybe_blow("exception_throw");
        Ok(())
    }

    fn exception_catch(
        &self,
        _vm: &mut Vm,
        _site: MethodId,
        _exc: &VmException,
    ) -> Result<(), VmError> {
        self.maybe_blow("exception_catch");
        Ok(())
    }
}

fn armed_vm(site: &'static str) -> Vm {
    let mut vm = Vm::new(VmConfig::default());
    vm.set_dispatcher(Bomb::arm(site));
    vm.register_class(
        ClassDef::build("Svc")
            .field("state", TypeSig::Int)
            .method("twice", [TypeSig::Int], TypeSig::Int, |b| {
                b.op(Op::Load(1)).konst(2i64).op(Op::Mul).op(Op::RetVal);
            })
            .method("store", [TypeSig::Int], TypeSig::Void, |b| {
                b.op(Op::Load(0))
                    .op(Op::Load(1))
                    .op(Op::PutField {
                        class: "Svc".into(),
                        field: "state".into(),
                    })
                    .op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    vm
}

fn assert_converted(err: &VmError, site: &str) {
    let text = format!("{err:?}");
    assert!(
        text.contains(&format!("{site} advice panicked")) && text.contains("boom"),
        "panic not converted at {site}: {text}"
    );
}

#[test]
fn entry_hook_panic_becomes_a_vm_error() {
    let mut vm = armed_vm("method_entry");
    let mid = vm.method_id("Svc", "twice").unwrap();
    vm.hooks().activate_method(mid, HOOK_ENTRY);
    let err = vm
        .call("Svc", "twice", Value::Null, vec![Value::Int(5)])
        .unwrap_err();
    assert_converted(&err, "method_entry");
}

#[test]
fn exit_hook_panic_becomes_a_vm_error() {
    let mut vm = armed_vm("method_exit");
    let mid = vm.method_id("Svc", "twice").unwrap();
    vm.hooks().activate_method(mid, HOOK_EXIT);
    let err = vm
        .call("Svc", "twice", Value::Null, vec![Value::Int(5)])
        .unwrap_err();
    assert_converted(&err, "method_exit");
}

#[test]
fn field_set_hook_panic_becomes_a_vm_error() {
    let mut vm = armed_vm("field_set");
    let (_, fid) = vm.resolve_field("Svc", "state").unwrap();
    vm.hooks().activate_field(fid, HOOK_SET);
    let obj = vm.new_object("Svc").unwrap();
    let err = vm
        .call("Svc", "store", obj, vec![Value::Int(42)])
        .unwrap_err();
    assert_converted(&err, "field_set");
}

#[test]
fn vm_survives_a_hook_panic_and_keeps_serving() {
    let mut vm = armed_vm("method_entry");
    let mid = vm.method_id("Svc", "twice").unwrap();
    vm.hooks().activate_method(mid, HOOK_ENTRY);
    vm.call("Svc", "twice", Value::Null, vec![Value::Int(5)])
        .unwrap_err();

    // Same VM, hook withdrawn: the fault was contained to that call.
    vm.hooks().deactivate_method(mid, HOOK_ENTRY);
    let out = vm
        .call("Svc", "twice", Value::Null, vec![Value::Int(5)])
        .unwrap();
    assert_eq!(out, Value::Int(10));
}

#[test]
fn formatted_panic_payloads_survive_the_conversion() {
    // panic!("{site} boom") carries a String payload (not &'static str);
    // the converter must extract both shapes. Bomb formats its message,
    // so every case above already uses the String path — this pins the
    // &'static str path too.
    struct StaticBomb;
    impl Dispatcher for StaticBomb {
        fn method_entry(
            &self,
            _vm: &mut Vm,
            _mid: MethodId,
            _this: &Value,
            _args: &mut Vec<Value>,
        ) -> Result<(), VmError> {
            panic!("static boom");
        }
        fn method_exit(
            &self,
            _vm: &mut Vm,
            _mid: MethodId,
            _this: &Value,
            _args: &[Value],
            _outcome: &mut Outcome,
        ) -> Result<(), VmError> {
            Ok(())
        }
        fn field_get(
            &self,
            _vm: &mut Vm,
            _fid: FieldId,
            _obj: ObjId,
            _value: &mut Value,
        ) -> Result<(), VmError> {
            Ok(())
        }
        fn field_set(
            &self,
            _vm: &mut Vm,
            _fid: FieldId,
            _obj: ObjId,
            _value: &mut Value,
        ) -> Result<(), VmError> {
            Ok(())
        }
        fn exception_throw(
            &self,
            _vm: &mut Vm,
            _site: MethodId,
            _exc: &VmException,
        ) -> Result<(), VmError> {
            Ok(())
        }
        fn exception_catch(
            &self,
            _vm: &mut Vm,
            _site: MethodId,
            _exc: &VmException,
        ) -> Result<(), VmError> {
            Ok(())
        }
    }

    let mut vm = armed_vm("none");
    vm.set_dispatcher(Arc::new(StaticBomb));
    let mid = vm.method_id("Svc", "twice").unwrap();
    vm.hooks().activate_method(mid, HOOK_ENTRY);
    let err = vm
        .call("Svc", "twice", Value::Null, vec![Value::Int(5)])
        .unwrap_err();
    let text = format!("{err:?}");
    assert!(text.contains("static boom"), "{text}");
}
