//! The AOP runtime: dispatch tables consulted by the VM's hooks, and
//! the machinery that executes advice inside the aspect sandbox.

use crate::advice::{AdviceCtx, JoinPoint, NativeAdviceFn};
use crate::aspect::Aspect;
use crate::crosscut::Crosscut;
use crate::handle::AspectId;
use crate::pattern::NamePat;
use pmp_telemetry::sync::Mutex;
use pmp_vm::hooks::{
    Dispatcher, FieldId, MethodId, Outcome, HOOK_CATCH, HOOK_ENTRY, HOOK_EXIT, HOOK_GET, HOOK_SET,
    HOOK_THROW,
};
use pmp_vm::perm::Permissions;
use pmp_vm::types::MethodSig;
use pmp_vm::value::{ObjId, Value};
use pmp_vm::vm::Vm;
use pmp_vm::{VmError, VmException};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// What happens when advice itself fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// The failure aborts the intercepted operation (access-control
    /// semantics: "the execution is ended with an exception").
    #[default]
    Propagate,
    /// The failure is recorded in the fault log and the intercepted
    /// operation proceeds (monitoring semantics: a broken extension must
    /// not take the application down).
    Isolate,
}

/// Per-woven-aspect runtime configuration.
#[derive(Debug)]
pub(crate) struct AspectRt {
    pub(crate) id: AspectId,
    pub(crate) name: String,
    pub(crate) perms: Permissions,
    pub(crate) fuel: Option<u64>,
    pub(crate) policy: ErrorPolicy,
    /// Script aspects: the instance holding aspect state.
    pub(crate) instance: Value,
    /// Script aspects: the registered class name.
    pub(crate) class: Option<Arc<str>>,
}

#[derive(Clone)]
pub(crate) enum AdviceExec {
    Native(NativeAdviceFn),
    Script {
        method: Arc<str>,
        /// Pre-resolved dispatch: the advice method id plus its
        /// parameter-load mask (bit *i* set ⇔ the body loads local
        /// slot *i*), computed once at weave time so each dispatch
        /// skips the name lookup and can skip materialising join-point
        /// arguments the advice never reads. `None` falls back to
        /// per-dispatch resolution.
        resolved: Option<(MethodId, u64)>,
    },
}

/// Resolves a script advice method against `vm` for the fast path.
pub(crate) fn resolve_script(
    vm: &Vm,
    class: Option<&str>,
    method: &str,
) -> Option<(MethodId, u64)> {
    let mid = vm.method_id(class?, method)?;
    Some((mid, vm.param_load_mask(mid)))
}

#[derive(Clone)]
pub(crate) struct AdviceRef {
    pub(crate) aspect: Arc<AspectRt>,
    pub(crate) exec: AdviceExec,
    pub(crate) priority: i32,
}

pub(crate) struct Woven {
    pub(crate) rt: Arc<AspectRt>,
    pub(crate) aspect: Aspect,
    pub(crate) join_points: usize,
}

#[derive(Default)]
pub(crate) struct State {
    pub(crate) next_id: u64,
    pub(crate) woven: BTreeMap<u64, Woven>,
    pub(crate) entry: HashMap<MethodId, Vec<AdviceRef>>,
    pub(crate) exit: HashMap<MethodId, Vec<AdviceRef>>,
    pub(crate) field_get: HashMap<FieldId, Vec<AdviceRef>>,
    pub(crate) field_set: HashMap<FieldId, Vec<AdviceRef>>,
    pub(crate) throw: Vec<(NamePat, AdviceRef)>,
    pub(crate) catch: Vec<(NamePat, AdviceRef)>,
    /// Aspect classes this runtime registered in the VM.
    pub(crate) registered_classes: HashSet<String>,
    /// Faults recorded under [`ErrorPolicy::Isolate`].
    pub(crate) faults: Vec<String>,
}

/// The PROSE runtime — installed into a [`Vm`] as its hook
/// [`Dispatcher`].
#[derive(Default)]
pub struct ProseRuntime {
    pub(crate) state: Mutex<State>,
}

impl std::fmt::Debug for ProseRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("ProseRuntime")
            .field("woven", &s.woven.len())
            .field("entry_sites", &s.entry.len())
            .field("exit_sites", &s.exit.len())
            .finish_non_exhaustive()
    }
}

impl ProseRuntime {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the dispatch tables and hook flags from the currently
    /// woven aspects. Called after weave/unweave/refresh; also activates
    /// the right hook flags in `vm`.
    pub(crate) fn rebuild(&self, vm: &Vm) {
        let mut s = self.state.lock();
        s.entry.clear();
        s.exit.clear();
        s.field_get.clear();
        s.field_set.clear();
        s.throw.clear();
        s.catch.clear();

        // Collect matches per woven aspect in id order (deterministic).
        let ids: Vec<u64> = s.woven.keys().copied().collect();
        for id in ids {
            let (bindings, rt) = {
                let w = &s.woven[&id];
                (w.aspect.bindings.clone(), w.rt.clone())
            };
            let mut join_points = 0usize;
            for b in &bindings {
                let exec = match &b.advice {
                    crate::advice::AdviceBody::Native(f) => AdviceExec::Native(f.clone()),
                    crate::advice::AdviceBody::Script { method } => AdviceExec::Script {
                        method: method.clone(),
                        resolved: resolve_script(vm, rt.class.as_deref(), method),
                    },
                };
                let aref = AdviceRef {
                    aspect: rt.clone(),
                    exec,
                    priority: b.priority,
                };
                match &b.crosscut {
                    Crosscut::MethodEntry(p) => {
                        for (mid, sig) in vm.methods() {
                            if p.matches(sig) {
                                s.entry.entry(mid).or_default().push(aref.clone());
                                join_points += 1;
                            }
                        }
                    }
                    Crosscut::MethodExit(p) => {
                        for (mid, sig) in vm.methods() {
                            if p.matches(sig) {
                                s.exit.entry(mid).or_default().push(aref.clone());
                                join_points += 1;
                            }
                        }
                    }
                    Crosscut::FieldGet(p) => {
                        for (fid, class, field, _ty) in vm.fields() {
                            if p.matches(class, field) {
                                s.field_get.entry(fid).or_default().push(aref.clone());
                                join_points += 1;
                            }
                        }
                    }
                    Crosscut::FieldSet(p) => {
                        for (fid, class, field, _ty) in vm.fields() {
                            if p.matches(class, field) {
                                s.field_set.entry(fid).or_default().push(aref.clone());
                                join_points += 1;
                            }
                        }
                    }
                    Crosscut::ExceptionThrow(p) => {
                        s.throw.push((p.clone(), aref.clone()));
                        join_points += 1;
                    }
                    Crosscut::ExceptionCatch(p) => {
                        s.catch.push((p.clone(), aref.clone()));
                        join_points += 1;
                    }
                }
            }
            if let Some(w) = s.woven.get_mut(&id) {
                w.join_points = join_points;
            }
        }

        // Sort advice lists by priority (dispatch iterates ascending for
        // entry-like events and descending for exit-like ones).
        for list in s.entry.values_mut() {
            list.sort_by_key(|r| r.priority);
        }
        for list in s.exit.values_mut() {
            list.sort_by_key(|r| r.priority);
        }
        for list in s.field_get.values_mut() {
            list.sort_by_key(|r| r.priority);
        }
        for list in s.field_set.values_mut() {
            list.sort_by_key(|r| r.priority);
        }
        s.throw.sort_by_key(|(_, r)| r.priority);
        s.catch.sort_by_key(|(_, r)| r.priority);

        // Re-derive hook flags from the tables.
        vm.hooks().clear_all();
        for mid in s.entry.keys() {
            vm.hooks().activate_method(*mid, HOOK_ENTRY);
        }
        for mid in s.exit.keys() {
            vm.hooks().activate_method(*mid, HOOK_EXIT);
        }
        for fid in s.field_get.keys() {
            vm.hooks().activate_field(*fid, HOOK_GET);
        }
        for fid in s.field_set.keys() {
            vm.hooks().activate_field(*fid, HOOK_SET);
        }
        if !s.throw.is_empty() {
            vm.hooks().activate_exception(HOOK_THROW);
        }
        if !s.catch.is_empty() {
            vm.hooks().activate_exception(HOOK_CATCH);
        }
    }

    /// Runs one advice inside the aspect sandbox, applying its error
    /// policy.
    pub(crate) fn run_advice(
        &self,
        vm: &mut Vm,
        aref: &AdviceRef,
        jp: JoinPoint<'_>,
    ) -> Result<(), VmError> {
        let scope = vm.begin_advice(aref.aspect.perms, aref.aspect.fuel);
        let result = match &aref.exec {
            AdviceExec::Native(f) => {
                let mut ctx = AdviceCtx { vm, jp };
                f(&mut ctx)
            }
            AdviceExec::Script { method, resolved } => {
                run_script_advice(vm, &aref.aspect, method, *resolved, jp)
            }
        };
        vm.end_advice(scope);
        match result {
            Ok(()) => Ok(()),
            Err(e) => match aref.aspect.policy {
                ErrorPolicy::Propagate => Err(e),
                ErrorPolicy::Isolate => {
                    self.state
                        .lock()
                        .faults
                        .push(format!("aspect {}: {e}", aref.aspect.name));
                    Ok(())
                }
            },
        }
    }

    fn advice_for_method(
        &self,
        table: fn(&State) -> &HashMap<MethodId, Vec<AdviceRef>>,
        mid: MethodId,
    ) -> Vec<AdviceRef> {
        let s = self.state.lock();
        table(&s).get(&mid).cloned().unwrap_or_default()
    }

    fn advice_for_field(
        &self,
        table: fn(&State) -> &HashMap<FieldId, Vec<AdviceRef>>,
        fid: FieldId,
    ) -> Vec<AdviceRef> {
        let s = self.state.lock();
        table(&s).get(&fid).cloned().unwrap_or_default()
    }

    fn advice_for_exception(&self, catching: bool, class: &str) -> Vec<AdviceRef> {
        let s = self.state.lock();
        let list = if catching { &s.catch } else { &s.throw };
        list.iter()
            .filter(|(p, _)| p.matches(class))
            .map(|(_, r)| r.clone())
            .collect()
    }
}

/// Executes a script advice method with the fixed 5-argument calling
/// convention (local 0 is the aspect instance):
///
/// | slot | method entry     | method exit      | field get/set   | throw/catch      | shutdown     |
/// |------|------------------|------------------|-----------------|------------------|--------------|
/// | 1    | target `this`    | target `this`    | target object   | `null`           | `null`       |
/// | 2    | `"Class.method"` | `"Class.method"` | `"Class.field"` | `"Class.method"` | `"shutdown"` |
/// | 3    | args array       | args array       | value           | message          | reason       |
/// | 4    | `null`           | return value     | `null`          | exception class  | `null`       |
/// | 5    | `null`           | exception class or `null` | `null` | `null`           | `null`       |
///
/// Mutations of the args array propagate back into the call only at
/// entry; a non-null return value replaces the method return value
/// (exit) or the field value (get/set).
fn run_script_advice(
    vm: &mut Vm,
    aspect: &AspectRt,
    method: &str,
    resolved: Option<(MethodId, u64)>,
    jp: JoinPoint<'_>,
) -> Result<(), VmError> {
    let (mid, mask) = match resolved {
        Some(r) => r,
        None => {
            let class = aspect
                .class
                .as_deref()
                .ok_or_else(|| VmError::link("script advice without aspect class"))?;
            resolve_script(vm, Some(class), method).ok_or_else(|| {
                VmError::link(format!("missing advice method {class}.{method}"))
            })?
        }
    };
    // Advice parameter *i* (1-based, after `this`) lives in local slot
    // *i*; a slot the body never loads can receive `null` instead of a
    // freshly materialised description string or argument array — the
    // body has no way to observe the difference.
    let uses = |slot: u64| mask & (1 << slot) != 0;
    let instance = aspect.instance.clone();
    match jp {
        JoinPoint::MethodEntry { sig, this, args } => {
            let arr = if uses(3) {
                vm.new_array(args.clone())
            } else {
                Value::Null
            };
            let desc = if uses(2) {
                Value::str(format!("{}.{}", sig.class, sig.name))
            } else {
                Value::Null
            };
            vm.invoke(
                mid,
                instance,
                vec![this.clone(), desc, arr.clone(), Value::Null, Value::Null],
            )?;
            if let Some(id) = arr.as_ref_id() {
                let n = vm.heap().array_len(id)?.min(args.len());
                for (i, slot) in args.iter_mut().enumerate().take(n) {
                    *slot = vm.heap().array_get(id, i as i64)?;
                }
            }
            Ok(())
        }
        JoinPoint::MethodExit {
            sig,
            this,
            args,
            outcome,
        } => {
            let arr = if uses(3) {
                vm.new_array(args.to_vec())
            } else {
                Value::Null
            };
            let desc = if uses(2) {
                Value::str(format!("{}.{}", sig.class, sig.name))
            } else {
                Value::Null
            };
            let (retv, exc) = match &*outcome {
                Outcome::Returned(v) => (v.clone(), Value::Null),
                Outcome::Threw(e) => (Value::Null, Value::str(&*e.class)),
            };
            let ret = vm.invoke(mid, instance, vec![this.clone(), desc, arr, retv, exc])?;
            if !ret.is_null() {
                if let Outcome::Returned(v) = outcome {
                    *v = ret;
                }
            }
            Ok(())
        }
        JoinPoint::FieldGet {
            class: c,
            field,
            obj,
            value,
        }
        | JoinPoint::FieldSet {
            class: c,
            field,
            obj,
            value,
        } => {
            let desc = if uses(2) {
                Value::str(format!("{c}.{field}"))
            } else {
                Value::Null
            };
            let ret = vm.invoke(
                mid,
                instance,
                vec![Value::Ref(obj), desc, value.clone(), Value::Null, Value::Null],
            )?;
            if !ret.is_null() {
                *value = ret;
            }
            Ok(())
        }
        JoinPoint::ExceptionThrow { site, exc } | JoinPoint::ExceptionCatch { site, exc } => {
            let desc = if uses(2) {
                Value::str(format!("{}.{}", site.class, site.name))
            } else {
                Value::Null
            };
            vm.invoke(
                mid,
                instance,
                vec![
                    Value::Null,
                    desc,
                    Value::str(&exc.message),
                    Value::str(&*exc.class),
                    Value::Null,
                ],
            )?;
            Ok(())
        }
        JoinPoint::Shutdown { reason } => {
            vm.invoke(
                mid,
                instance,
                vec![
                    Value::Null,
                    Value::str("shutdown"),
                    Value::str(reason),
                    Value::Null,
                    Value::Null,
                ],
            )?;
            Ok(())
        }
    }
}

impl Dispatcher for ProseRuntime {
    fn method_entry(
        &self,
        vm: &mut Vm,
        mid: MethodId,
        this: &Value,
        args: &mut Vec<Value>,
    ) -> Result<(), VmError> {
        let refs = self.advice_for_method(|s| &s.entry, mid);
        if refs.is_empty() {
            return Ok(());
        }
        let sig: MethodSig = vm.method_sig(mid).clone();
        for r in &refs {
            let jp = JoinPoint::MethodEntry {
                sig: sig.clone(),
                this,
                args: &mut *args,
            };
            self.run_advice(vm, r, jp)?;
        }
        Ok(())
    }

    fn method_exit(
        &self,
        vm: &mut Vm,
        mid: MethodId,
        this: &Value,
        args: &[Value],
        outcome: &mut Outcome,
    ) -> Result<(), VmError> {
        let refs = self.advice_for_method(|s| &s.exit, mid);
        if refs.is_empty() {
            return Ok(());
        }
        let sig: MethodSig = vm.method_sig(mid).clone();
        // After advice unwinds in reverse priority order.
        for r in refs.iter().rev() {
            let jp = JoinPoint::MethodExit {
                sig: sig.clone(),
                this,
                args,
                outcome: &mut *outcome,
            };
            self.run_advice(vm, r, jp)?;
        }
        Ok(())
    }

    fn field_get(
        &self,
        vm: &mut Vm,
        fid: FieldId,
        obj: ObjId,
        value: &mut Value,
    ) -> Result<(), VmError> {
        let refs = self.advice_for_field(|s| &s.field_get, fid);
        if refs.is_empty() {
            return Ok(());
        }
        let (class, field) = vm
            .field_info(fid)
            .map(|(c, f)| (Arc::<str>::from(c), Arc::<str>::from(f)))
            .unwrap_or_else(|| (Arc::from("?"), Arc::from("?")));
        for r in &refs {
            let jp = JoinPoint::FieldGet {
                class: class.clone(),
                field: field.clone(),
                obj,
                value: &mut *value,
            };
            self.run_advice(vm, r, jp)?;
        }
        Ok(())
    }

    fn field_set(
        &self,
        vm: &mut Vm,
        fid: FieldId,
        obj: ObjId,
        value: &mut Value,
    ) -> Result<(), VmError> {
        let refs = self.advice_for_field(|s| &s.field_set, fid);
        if refs.is_empty() {
            return Ok(());
        }
        let (class, field) = vm
            .field_info(fid)
            .map(|(c, f)| (Arc::<str>::from(c), Arc::<str>::from(f)))
            .unwrap_or_else(|| (Arc::from("?"), Arc::from("?")));
        for r in &refs {
            let jp = JoinPoint::FieldSet {
                class: class.clone(),
                field: field.clone(),
                obj,
                value: &mut *value,
            };
            self.run_advice(vm, r, jp)?;
        }
        Ok(())
    }

    fn exception_throw(
        &self,
        vm: &mut Vm,
        site: MethodId,
        exc: &VmException,
    ) -> Result<(), VmError> {
        let refs = self.advice_for_exception(false, &exc.class);
        if refs.is_empty() {
            return Ok(());
        }
        let sig = vm.method_sig(site).clone();
        for r in &refs {
            let jp = JoinPoint::ExceptionThrow {
                site: sig.clone(),
                exc: exc.clone(),
            };
            self.run_advice(vm, r, jp)?;
        }
        Ok(())
    }

    fn exception_catch(
        &self,
        vm: &mut Vm,
        site: MethodId,
        exc: &VmException,
    ) -> Result<(), VmError> {
        let refs = self.advice_for_exception(true, &exc.class);
        if refs.is_empty() {
            return Ok(());
        }
        let sig = vm.method_sig(site).clone();
        for r in &refs {
            let jp = JoinPoint::ExceptionCatch {
                site: sig.clone(),
                exc: exc.clone(),
            };
            self.run_advice(vm, r, jp)?;
        }
        Ok(())
    }
}
