//! Movement records and the movement store (Fig. 6's data model).

use crate::table::{RecordId, Table};
use pmp_wire::wire_struct;
use std::collections::HashMap;

/// One logged hardware action: which robot/device executed which
/// command, when, and for how long (the paper's monitoring extension
/// logs "the time when the command was issued, its duration, as well as
/// the identity of the robot").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovementRecord {
    /// Robot identity, e.g. `"robot:1:1"`.
    pub robot: String,
    /// Device within the robot, e.g. `"motor:x"`.
    pub device: String,
    /// Command name, e.g. `"rotate"`.
    pub command: String,
    /// Command arguments.
    pub args: Vec<i64>,
    /// Issue time (ns, simulated).
    pub issued_at: u64,
    /// Execution duration (ns, simulated).
    pub duration_ns: u64,
}

wire_struct!(MovementRecord {
    robot: String,
    device: String,
    command: String,
    args: Vec<i64>,
    issued_at: u64,
    duration_ns: u64,
});

/// The base station's movement database, indexed by robot.
///
/// # Examples
///
/// ```
/// use pmp_store::{MovementRecord, MovementStore};
///
/// let mut store = MovementStore::new();
/// store.append(MovementRecord {
///     robot: "robot:1:1".into(), device: "motor:x".into(),
///     command: "rotate".into(), args: vec![30],
///     issued_at: 1_000, duration_ns: 500,
/// });
/// assert_eq!(store.by_robot("robot:1:1").len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MovementStore {
    table: Table<MovementRecord>,
    by_robot: HashMap<String, Vec<RecordId>>,
}

impl MovementStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read-only view of the underlying table (insertion order), for
    /// the durable snapshot encoder.
    pub(crate) fn table(&self) -> &Table<MovementRecord> {
        &self.table
    }

    /// Appends a record; returns its id.
    pub fn append(&mut self, record: MovementRecord) -> RecordId {
        let robot = record.robot.clone();
        let at = record.issued_at;
        let id = self.table.append(at, record);
        self.by_robot.entry(robot).or_default().push(id);
        id
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if no movement has been logged.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// All actions ever executed by `robot`, in issue order (the left
    /// panel of Fig. 6).
    pub fn by_robot(&self, robot: &str) -> Vec<&MovementRecord> {
        self.by_robot
            .get(robot)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| self.table.get(*id).map(|(r, _)| r))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Records with `from <= issued_at < to`, across all robots.
    pub fn range(&self, from: u64, to: u64) -> Vec<&MovementRecord> {
        self.table.range(from, to).map(|(_, _, r)| r).collect()
    }

    /// The distinct robots seen, sorted.
    pub fn robots(&self) -> Vec<String> {
        let mut names: Vec<String> = self.by_robot.keys().cloned().collect();
        names.sort();
        names
    }

    /// A replay cursor over `robot`'s actions: yields each record with
    /// the delay (ns) since the previous one, preserving relative time
    /// (the paper's simulation feature: "replay the sequence of
    /// movements of all robots at the right relative time").
    pub fn replay(&self, robot: &str) -> Vec<(u64, MovementRecord)> {
        let records = self.by_robot(robot);
        let mut out = Vec::with_capacity(records.len());
        let mut prev: Option<u64> = None;
        for r in records {
            let delay = match prev {
                None => 0,
                Some(p) => r.issued_at.saturating_sub(p),
            };
            prev = Some(r.issued_at);
            out.push((delay, r.clone()));
        }
        out
    }

    /// A scaled copy of `robot`'s actions: every argument multiplied by
    /// `num/den` (the paper's remote replication "at a scale different
    /// from what is being done by the original robot").
    pub fn scaled(&self, robot: &str, num: i64, den: i64) -> Vec<MovementRecord> {
        assert!(den != 0, "scale denominator must be nonzero");
        self.by_robot(robot)
            .into_iter()
            .map(|r| {
                let mut c = r.clone();
                for a in &mut c.args {
                    *a = *a * num / den;
                }
                c
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(robot: &str, cmd: &str, arg: i64, at: u64) -> MovementRecord {
        MovementRecord {
            robot: robot.into(),
            device: "motor:x".into(),
            command: cmd.into(),
            args: vec![arg],
            issued_at: at,
            duration_ns: 100,
        }
    }

    #[test]
    fn per_robot_index() {
        let mut s = MovementStore::new();
        s.append(rec("r1", "rotate", 30, 10));
        s.append(rec("r2", "rotate", -30, 20));
        s.append(rec("r1", "stop", 0, 30));
        assert_eq!(s.len(), 3);
        assert_eq!(s.by_robot("r1").len(), 2);
        assert_eq!(s.by_robot("r2").len(), 1);
        assert!(s.by_robot("r3").is_empty());
        assert_eq!(s.robots(), ["r1", "r2"]);
    }

    #[test]
    fn time_range_query() {
        let mut s = MovementStore::new();
        for at in [10u64, 20, 30, 40] {
            s.append(rec("r", "rotate", 1, at));
        }
        assert_eq!(s.range(15, 35).len(), 2);
    }

    #[test]
    fn replay_preserves_relative_time() {
        let mut s = MovementStore::new();
        s.append(rec("r", "a", 1, 100));
        s.append(rec("r", "b", 2, 250));
        s.append(rec("r", "c", 3, 1000));
        let replay = s.replay("r");
        let delays: Vec<u64> = replay.iter().map(|(d, _)| *d).collect();
        assert_eq!(delays, [0, 150, 750]);
    }

    #[test]
    fn scaling_amplifies_and_reduces() {
        let mut s = MovementStore::new();
        s.append(rec("r", "rotate", 30, 0));
        let doubled = s.scaled("r", 2, 1);
        assert_eq!(doubled[0].args, [60]);
        let halved = s.scaled("r", 1, 2);
        assert_eq!(halved[0].args, [15]);
    }

    #[test]
    fn record_wire_roundtrip() {
        let r = rec("robot:1:1", "rotate", 30, 5);
        let bytes = pmp_wire::to_bytes(&r);
        assert_eq!(
            pmp_wire::from_bytes::<MovementRecord>(&bytes).unwrap(),
            r
        );
    }
}
