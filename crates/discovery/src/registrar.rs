//! The lookup service (Jini registrar) hosted by a base station.

use crate::directory::{Directory, MAX_HOPS};
use crate::lease::Lease;
use crate::proto::{DiscoveryMsg, CHANNEL};
use crate::service::{ServiceId, ServiceItem};
use pmp_net::{Incoming, NetPort, NodeId, SimTime};
use pmp_telemetry::{Shared, Sink};
use pmp_trace::{TraceCtx, Traced};
use std::collections::{BTreeSet, HashMap};

const ANNOUNCE_TAG: &str = "disc.announce";
const SWEEP_TAG: &str = "disc.sweep";

/// An event surfaced by the registrar to its host (the base station).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistrarEvent {
    /// A new service registered.
    Registered(ServiceItem),
    /// A service's lease lapsed and it was dropped.
    Expired(ServiceItem),
    /// A service was cancelled by its provider.
    Cancelled(ServiceItem),
}

/// The registrar state machine. Drive it by passing every [`Incoming`]
/// of its host node to [`Registrar::handle`].
#[derive(Debug)]
pub struct Registrar {
    node: NodeId,
    name: String,
    announce_interval_ns: u64,
    services: HashMap<ServiceId, (ServiceItem, Lease)>,
    counter: u32,
    started: bool,
    announce_token: Option<u64>,
    sweep_token: Option<u64>,
    events: Vec<RegistrarEvent>,
    telemetry: Option<Sink>,
    /// Federation state: place in the registrar tree plus the routes
    /// learned from child advertisements.
    directory: Directory,
}

impl Registrar {
    /// Creates a registrar hosted on `node`.
    pub fn new(node: NodeId, name: impl Into<String>) -> Self {
        Self {
            node,
            name: name.into(),
            announce_interval_ns: 500_000_000, // 0.5 s
            services: HashMap::new(),
            counter: 0,
            started: false,
            announce_token: None,
            sweep_token: None,
            events: Vec::new(),
            telemetry: None,
            directory: Directory::new(),
        }
    }

    /// Wires this registrar under `parent` in the federation tree.
    /// The reachable-type advert is pushed on the next mutation (or
    /// sweep), so late federation still converges.
    pub fn set_parent(&mut self, parent: NodeId) {
        self.directory.set_parent(parent);
    }

    /// Registers `child` as a federated subtree (idempotent).
    pub fn add_child(&mut self, child: NodeId) {
        self.directory.add_child(child);
    }

    /// Read-only view of the federation state.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Service types held locally (not counting routed subtrees).
    fn local_types(&self) -> BTreeSet<String> {
        self.services
            .values()
            .map(|(item, _)| item.service_type.clone())
            .collect()
    }

    /// Pushes a fresh advert to the parent iff the reachable-type set
    /// changed since the last push. No-op for unfederated registrars.
    fn maybe_advertise(&mut self, sim: &mut dyn NetPort) {
        if self.directory.parent().is_none() {
            return;
        }
        let local = self.local_types();
        if let Some(types) = self.directory.advert_if_changed(local) {
            let parent = self.directory.parent().expect("checked above");
            self.count("discovery.registrar.adverts_sent");
            let msg = DiscoveryMsg::DirAdvertise { types };
            sim.send(self.node, parent, CHANNEL, TraceCtx::NIL.wrap(&msg));
        }
    }

    /// Mirrors registrar activity into `shared` as
    /// `discovery.registrar.*` counters and a live-services gauge.
    pub fn attach_telemetry(&mut self, shared: &Shared) {
        self.telemetry = Some(Sink::direct(shared));
    }

    /// Routes telemetry through a per-cell [`Sink`].
    pub fn attach_sink(&mut self, sink: Sink) {
        self.telemetry = Some(sink);
    }

    fn count(&self, name: &str) {
        if let Some(s) = &self.telemetry {
            s.inc(name);
        }
    }

    fn update_live_gauge(&self) {
        if let Some(s) = &self.telemetry {
            // Scoped per registrar instance (like `net.channel.<name>.bytes`):
            // several registrars share one platform registry, and a plain
            // set-gauge under a common name would let an idle registrar's
            // sweep overwrite its neighbour's live count.
            let name = format!("discovery.registrar.{}.live_services", self.name);
            let n = self.services.len() as i64;
            s.with(|t| {
                let g = t.registry.gauge(&name);
                t.registry.set_gauge(g, n);
            });
        }
    }

    /// Overrides the multicast announce interval.
    pub fn set_announce_interval(&mut self, ns: u64) {
        self.announce_interval_ns = ns;
    }

    /// Starts announcing and lease sweeping. Idempotent.
    pub fn start(&mut self, sim: &mut dyn NetPort) {
        if self.started {
            return;
        }
        self.started = true;
        self.announce(sim);
        self.announce_token =
            Some(sim.set_timer(self.node, self.announce_interval_ns, ANNOUNCE_TAG));
        self.sweep_token =
            Some(sim.set_timer(self.node, self.announce_interval_ns / 2, SWEEP_TAG));
    }

    fn announce(&self, sim: &mut dyn NetPort) {
        let msg = DiscoveryMsg::Announce {
            name: self.name.clone(),
        };
        sim.broadcast(self.node, CHANNEL, TraceCtx::NIL.wrap(&msg));
    }

    /// Number of live registrations.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Snapshot of live items.
    pub fn services(&self) -> Vec<ServiceItem> {
        self.services.values().map(|(i, _)| i.clone()).collect()
    }

    /// Drains accumulated events.
    pub fn take_events(&mut self) -> Vec<RegistrarEvent> {
        std::mem::take(&mut self.events)
    }

    fn sweep(&mut self, now: SimTime) {
        let expired: Vec<ServiceId> = self
            .services
            .iter()
            .filter(|(_, (_, lease))| lease.expired(now))
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            if let Some((item, _)) = self.services.remove(&id) {
                self.count("discovery.registrar.lease_expiries");
                self.events.push(RegistrarEvent::Expired(item));
            }
        }
        self.update_live_gauge();
    }

    /// Processes one inbox entry of the host node. Entries not addressed
    /// to the registrar (other channels, other timer tags) are ignored.
    pub fn handle(&mut self, sim: &mut dyn NetPort, incoming: &Incoming) {
        match incoming {
            Incoming::Timer { token, .. } if Some(*token) == self.announce_token => {
                self.announce(sim);
                self.announce_token =
                    Some(sim.set_timer(self.node, self.announce_interval_ns, ANNOUNCE_TAG));
            }
            Incoming::Timer { token, .. } if Some(*token) == self.sweep_token => {
                self.sweep(sim.now());
                self.maybe_advertise(sim);
                self.sweep_token =
                    Some(sim.set_timer(self.node, self.announce_interval_ns / 2, SWEEP_TAG));
            }
            Incoming::Message {
                from,
                channel,
                payload,
                ..
            } if &**channel == CHANNEL => {
                let Ok(env) = pmp_wire::from_bytes::<Traced<DiscoveryMsg>>(payload) else {
                    return; // malformed traffic is dropped
                };
                self.handle_msg(sim, *from, env.msg, env.ctx);
            }
            _ => {}
        }
    }

    fn handle_msg(&mut self, sim: &mut dyn NetPort, from: NodeId, msg: DiscoveryMsg, ctx: TraceCtx) {
        let now = sim.now();
        match msg {
            DiscoveryMsg::Register {
                mut item,
                lease_ns,
                req,
            } => {
                self.counter += 1;
                let id = ServiceId::compose(self.node.0, self.counter);
                item.id = id;
                item.provider = from.0;
                let lease = Lease::grant(now, lease_ns);
                self.services.insert(id, (item.clone(), lease));
                self.count("discovery.registrar.registrations");
                self.update_live_gauge();
                self.events.push(RegistrarEvent::Registered(item));
                let reply = DiscoveryMsg::Registered {
                    service: id,
                    lease_ns,
                    req,
                };
                sim.send(self.node, from, CHANNEL, ctx.wrap(&reply));
                self.maybe_advertise(sim);
            }
            DiscoveryMsg::Renew { service, req } => {
                self.count("discovery.registrar.renewals");
                let ok = match self.services.get_mut(&service) {
                    Some((_, lease)) => lease.renew(now),
                    None => false,
                };
                if !ok {
                    // Lapsed entries are removed eagerly on failed renew.
                    if let Some((item, _)) = self.services.remove(&service) {
                        self.count("discovery.registrar.lease_expiries");
                        self.update_live_gauge();
                        self.events.push(RegistrarEvent::Expired(item));
                    }
                }
                let reply = DiscoveryMsg::RenewAck { service, ok, req };
                sim.send(self.node, from, CHANNEL, ctx.wrap(&reply));
                if !ok {
                    self.maybe_advertise(sim);
                }
            }
            DiscoveryMsg::Cancel { service } => {
                if let Some((item, _)) = self.services.remove(&service) {
                    self.count("discovery.registrar.cancellations");
                    self.update_live_gauge();
                    self.events.push(RegistrarEvent::Cancelled(item));
                    self.maybe_advertise(sim);
                }
            }
            DiscoveryMsg::Lookup { query, req } => {
                self.count("discovery.registrar.lookups");
                self.sweep(now);
                let mut items: Vec<ServiceItem> = self
                    .services
                    .values()
                    .filter(|(item, _)| query.matches(item))
                    .map(|(item, _)| item.clone())
                    .collect();
                // Stable result order: the items travel inside the
                // reply payload, so hash order would be byte-observable.
                items.sort_by(|a, b| (&a.name, a.provider).cmp(&(&b.name, b.provider)));
                let reply = DiscoveryMsg::LookupResult { items, req };
                sim.send(self.node, from, CHANNEL, ctx.wrap(&reply));
            }
            DiscoveryMsg::DirAdvertise { types } => {
                self.count("discovery.registrar.adverts_in");
                if self.directory.learn(from, &types) {
                    // Reachability changed: propagate up the tree.
                    self.maybe_advertise(sim);
                }
            }
            DiscoveryMsg::FedLookup {
                query,
                origin,
                mut path,
                req,
            } => {
                self.count("discovery.registrar.fed_lookups");
                self.sweep(now);
                let hops = path.len() as u16;
                let mut items: Vec<ServiceItem> = self
                    .services
                    .values()
                    .filter(|(item, _)| query.matches(item))
                    .map(|(item, _)| item.clone())
                    .collect();
                items.sort_by(|a, b| (&a.name, a.provider).cmp(&(&b.name, b.provider)));
                if !items.is_empty() || hops >= MAX_HOPS {
                    // Answer (or give up): the reply retraces the path
                    // stack — only tree edges are guaranteed reachable.
                    self.send_fed_result(sim, items, hops, origin, path, req, ctx);
                    return;
                }
                // Nothing local: route down a subtree advertising the
                // queried type, else up to the parent. Never bounce the
                // query straight back where it came from.
                let down = query
                    .service_type
                    .as_deref()
                    .and_then(|ty| self.directory.route_for(ty, from));
                let next = down.or_else(|| self.directory.parent().filter(|p| *p != from));
                match next {
                    Some(next) => {
                        path.push(self.node.0);
                        let fwd = DiscoveryMsg::FedLookup {
                            query,
                            origin,
                            path,
                            req,
                        };
                        sim.send(self.node, next, CHANNEL, ctx.wrap(&fwd));
                    }
                    None => {
                        self.send_fed_result(sim, Vec::new(), hops, origin, path, req, ctx);
                    }
                }
            }
            DiscoveryMsg::FedLookupResult {
                items,
                hops,
                origin,
                path,
                req,
            } => {
                // A reply in transit: relay it one step back along the
                // recorded path. A reply that already reached the
                // origin node is the co-located client's business.
                if origin != self.node.0 {
                    self.send_fed_result(sim, items, hops, origin, path, req, ctx);
                }
            }
            // Client-bound messages are ignored by the registrar.
            DiscoveryMsg::Announce { .. }
            | DiscoveryMsg::Registered { .. }
            | DiscoveryMsg::RenewAck { .. }
            | DiscoveryMsg::LookupResult { .. } => {}
        }
    }

    /// Sends a [`DiscoveryMsg::FedLookupResult`] one step toward the
    /// origin: to the last registrar on the return path, or — when the
    /// path is exhausted — over the final radio hop to the origin.
    #[allow(clippy::too_many_arguments)]
    fn send_fed_result(
        &self,
        sim: &mut dyn NetPort,
        items: Vec<ServiceItem>,
        hops: u16,
        origin: u32,
        mut path: Vec<u32>,
        req: u64,
        ctx: TraceCtx,
    ) {
        let next = match path.pop() {
            Some(prev) => NodeId(prev),
            None => NodeId(origin),
        };
        let reply = DiscoveryMsg::FedLookupResult {
            items,
            hops,
            origin,
            path,
            req,
        };
        sim.send(self.node, next, CHANNEL, ctx.wrap(&reply));
    }
}
