//! Sandbox permissions.
//!
//! PROSE runs extension code "in a sandbox" using the platform security
//! model (paper §3.1). Here a [`Permissions`] set gates access to every
//! system operation the VM exposes; advice executes under the
//! intersection of what its package requested and what the receiving
//! node's policy grants the signer.

use std::fmt;

/// A single capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    /// Write to the console / log output.
    Print,
    /// Read the (simulated) clock.
    Time,
    /// Send messages over the network port.
    Net,
    /// Append to / query the local store port.
    Store,
    /// Issue device (motor/sensor) commands.
    Device,
    /// Reflective queries about loaded classes and methods.
    Reflect,
}

impl Permission {
    const ALL_LIST: [Permission; 6] = [
        Permission::Print,
        Permission::Time,
        Permission::Net,
        Permission::Store,
        Permission::Device,
        Permission::Reflect,
    ];

    fn bit(self) -> u32 {
        match self {
            Permission::Print => 1 << 0,
            Permission::Time => 1 << 1,
            Permission::Net => 1 << 2,
            Permission::Store => 1 << 3,
            Permission::Device => 1 << 4,
            Permission::Reflect => 1 << 5,
        }
    }

    /// Parses the lowercase permission name used in package metadata.
    pub fn parse(s: &str) -> Option<Permission> {
        match s {
            "print" => Some(Permission::Print),
            "time" => Some(Permission::Time),
            "net" => Some(Permission::Net),
            "store" => Some(Permission::Store),
            "device" => Some(Permission::Device),
            "reflect" => Some(Permission::Reflect),
            _ => None,
        }
    }

    /// The lowercase wire name of this permission.
    pub fn name(self) -> &'static str {
        match self {
            Permission::Print => "print",
            Permission::Time => "time",
            Permission::Net => "net",
            Permission::Store => "store",
            Permission::Device => "device",
            Permission::Reflect => "reflect",
        }
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// An immutable set of [`Permission`]s.
///
/// # Examples
///
/// ```
/// use pmp_vm::perm::{Permission, Permissions};
///
/// let p = Permissions::none().with(Permission::Net).with(Permission::Time);
/// assert!(p.allows(Permission::Net));
/// assert!(!p.allows(Permission::Device));
/// let capped = p.intersect(Permissions::none().with(Permission::Net));
/// assert!(!capped.allows(Permission::Time));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Permissions(u32);

impl Permissions {
    /// The empty set.
    pub fn none() -> Self {
        Permissions(0)
    }

    /// Every permission; what the hosting application itself runs with.
    pub fn all() -> Self {
        let mut p = Permissions(0);
        for perm in Permission::ALL_LIST {
            p.0 |= perm.bit();
        }
        p
    }

    /// Returns a copy with `perm` added.
    #[must_use]
    pub fn with(self, perm: Permission) -> Self {
        Permissions(self.0 | perm.bit())
    }

    /// Returns a copy with `perm` removed.
    #[must_use]
    pub fn without(self, perm: Permission) -> Self {
        Permissions(self.0 & !perm.bit())
    }

    /// Set intersection — used to cap a package's requested permissions
    /// by the receiver's policy for the signer.
    #[must_use]
    pub fn intersect(self, other: Permissions) -> Self {
        Permissions(self.0 & other.0)
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: Permissions) -> Self {
        Permissions(self.0 | other.0)
    }

    /// Membership test.
    pub fn allows(self, perm: Permission) -> bool {
        self.0 & perm.bit() != 0
    }

    /// Returns `true` if every permission in `other` is also in `self`.
    pub fn covers(self, other: Permissions) -> bool {
        self.0 & other.0 == other.0
    }

    /// Iterates the contained permissions in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Permission> {
        Permission::ALL_LIST
            .into_iter()
            .filter(move |p| self.allows(*p))
    }

    /// Builds a set from lowercase names, ignoring unknown ones.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        let mut p = Permissions::none();
        for n in names {
            if let Some(perm) = Permission::parse(n) {
                p = p.with(perm);
            }
        }
        p
    }

    /// The lowercase names of the contained permissions.
    pub fn names(self) -> Vec<String> {
        self.iter().map(|p| p.name().to_string()).collect()
    }
}

impl fmt::Display for Permissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names().join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_everything() {
        for p in Permission::ALL_LIST {
            assert!(Permissions::all().allows(p));
            assert!(!Permissions::none().allows(p));
        }
    }

    #[test]
    fn with_without() {
        let p = Permissions::none().with(Permission::Net);
        assert!(p.allows(Permission::Net));
        assert!(!p.without(Permission::Net).allows(Permission::Net));
    }

    #[test]
    fn intersect_caps() {
        let requested = Permissions::none()
            .with(Permission::Net)
            .with(Permission::Device);
        let policy = Permissions::none().with(Permission::Net).with(Permission::Print);
        let effective = requested.intersect(policy);
        assert!(effective.allows(Permission::Net));
        assert!(!effective.allows(Permission::Device));
        assert!(!effective.allows(Permission::Print));
    }

    #[test]
    fn covers_relation() {
        let big = Permissions::all();
        let small = Permissions::none().with(Permission::Time);
        assert!(big.covers(small));
        assert!(!small.covers(big));
        assert!(small.covers(Permissions::none()));
    }

    #[test]
    fn name_roundtrip() {
        for p in Permission::ALL_LIST {
            assert_eq!(Permission::parse(p.name()), Some(p));
        }
        assert_eq!(Permission::parse("bogus"), None);
    }

    #[test]
    fn from_names_ignores_unknown() {
        let p = Permissions::from_names(["net", "bogus", "time"]);
        assert!(p.allows(Permission::Net));
        assert!(p.allows(Permission::Time));
        assert!(!p.allows(Permission::Print));
    }

    #[test]
    fn display() {
        let p = Permissions::none().with(Permission::Print).with(Permission::Net);
        assert_eq!(p.to_string(), "{print,net}");
    }
}
