//! Error model of the VM.
//!
//! Faults that Java would surface as exceptions are catchable
//! [`VmException`]s (with well-known class names); engine limits and API
//! misuse are separate, uncatchable variants.

use std::fmt;
use std::sync::Arc;

/// Well-known exception class names raised by the engine itself.
pub mod exception_class {
    /// Division or remainder by zero.
    pub const ARITHMETIC: &str = "ArithmeticException";
    /// Operation on a null reference.
    pub const NULL_POINTER: &str = "NullPointerException";
    /// Array or buffer index out of range.
    pub const INDEX_OUT_OF_BOUNDS: &str = "IndexOutOfBoundsException";
    /// A value had the wrong runtime kind for an operation.
    pub const TYPE: &str = "TypeError";
    /// A sandboxed caller lacked a required permission.
    pub const SECURITY: &str = "SecurityException";
    /// An extension denied the call (paper §4.6: "the execution is ended
    /// with an exception" when access is denied).
    pub const ACCESS_DENIED: &str = "AccessDeniedException";
}

/// A catchable exception value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmException {
    /// Exception class name (matched by handlers and crosscuts).
    pub class: Arc<str>,
    /// Human-readable message.
    pub message: String,
}

impl VmException {
    /// Creates an exception.
    pub fn new(class: impl AsRef<str>, message: impl Into<String>) -> Self {
        Self {
            class: Arc::from(class.as_ref()),
            message: message.into(),
        }
    }
}

impl fmt::Display for VmException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class, self.message)
    }
}

/// A hard engine limit was hit; not catchable by VM code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limit {
    /// Call stack exceeded the configured depth.
    CallDepth,
    /// The fuel budget for sandboxed execution ran out.
    Fuel,
}

impl fmt::Display for Limit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Limit::CallDepth => write!(f, "call depth limit exceeded"),
            Limit::Fuel => write!(f, "fuel budget exhausted"),
        }
    }
}

/// Any failure produced while running or preparing VM code.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A catchable exception propagating out of the entry call.
    Exception(VmException),
    /// An engine limit; terminates the entry call unconditionally.
    Limit(Limit),
    /// API misuse or link error: unknown class/method/field, bad
    /// operands, malformed bytecode. Produced at registration, JIT, or
    /// dispatch time.
    Link(String),
}

impl VmError {
    /// Shorthand for a catchable exception error.
    pub fn exception(class: impl AsRef<str>, message: impl Into<String>) -> Self {
        VmError::Exception(VmException::new(class, message))
    }

    /// Shorthand for a link error.
    pub fn link(msg: impl Into<String>) -> Self {
        VmError::Link(msg.into())
    }

    /// Returns the exception if this is a catchable fault.
    pub fn as_exception(&self) -> Option<&VmException> {
        match self {
            VmError::Exception(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Exception(e) => write!(f, "uncaught exception: {e}"),
            VmError::Limit(l) => write!(f, "limit: {l}"),
            VmError::Link(m) => write!(f, "link error: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<VmException> for VmError {
    fn from(e: VmException) -> Self {
        VmError::Exception(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = VmError::exception(exception_class::SECURITY, "no NET permission");
        assert_eq!(
            e.to_string(),
            "uncaught exception: SecurityException: no NET permission"
        );
        assert_eq!(
            VmError::Limit(Limit::Fuel).to_string(),
            "limit: fuel budget exhausted"
        );
        assert_eq!(VmError::link("x").to_string(), "link error: x");
    }

    #[test]
    fn as_exception_filters() {
        assert!(VmError::exception("E", "m").as_exception().is_some());
        assert!(VmError::Limit(Limit::CallDepth).as_exception().is_none());
    }
}
