//! Identifiers and descriptions of woven aspects.

use std::fmt;

/// Identifies an aspect woven into a particular VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AspectId(pub u64);

impl fmt::Display for AspectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aspect#{}", self.0)
    }
}

/// A snapshot description of a woven aspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AspectInfo {
    /// The aspect's id.
    pub id: AspectId,
    /// The aspect's name.
    pub name: String,
    /// Number of join points currently matched.
    pub join_points: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(AspectId(3).to_string(), "aspect#3");
    }
}
