//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! Every WAL frame and snapshot file carries a CRC over its length
//! prefix *and* body, so any single corrupted byte — including one in
//! the length itself — is detectable before the wire decoder runs.
//! The table is built at compile time; no external crate needed.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// An incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ u32::from(b)) & 0xff;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
    }

    /// The final checksum.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Crc32::new();
        h.update(b"123");
        h.update(b"456789");
        assert_eq!(h.finish(), crc32(b"123456789"));
    }

    #[test]
    fn any_single_byte_flip_changes_the_checksum() {
        let data = b"the extension catalog of hall-a";
        let base = crc32(data);
        for i in 0..data.len() {
            let mut copy = data.to_vec();
            copy[i] ^= 0x40;
            assert_ne!(crc32(&copy), base, "flip at byte {i} went undetected");
        }
    }
}
