//! The structured event journal: a ring buffer of sim-time-stamped
//! events with per-subsystem enable flags and explicit spans.
//!
//! Components call [`Journal::event`] for point events and
//! [`Journal::span_begin`]/[`Journal::span_end`] around multi-step work
//! (a weave, an extension verification). Disabled subsystems cost one
//! mask test; the ring drops the oldest events once full and counts
//! what it dropped, so a long scenario can run with a small cap.

use crate::Clock;
use std::collections::VecDeque;

/// The platform layer an event originates from; used for enable flags
/// and as the `subsystem` field of exported events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// The managed runtime (`pmp-vm`).
    Vm,
    /// The weaver (`pmp-prose`).
    Prose,
    /// Extension distribution (`pmp-midas`).
    Midas,
    /// Registrar + leases (`pmp-discovery`).
    Discovery,
    /// The network simulator (`pmp-net`).
    Net,
    /// Platform facade and scenarios (`pmp-core`).
    Core,
    /// The benchmark harness (`pmp-bench`).
    Bench,
    /// The storage engine (`pmp-durable`).
    Durable,
}

impl Subsystem {
    /// Every subsystem, in export order.
    pub const ALL: [Subsystem; 8] = [
        Subsystem::Vm,
        Subsystem::Prose,
        Subsystem::Midas,
        Subsystem::Discovery,
        Subsystem::Net,
        Subsystem::Core,
        Subsystem::Bench,
        Subsystem::Durable,
    ];

    /// The lowercase display name (`"vm"`, `"prose"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Vm => "vm",
            Subsystem::Prose => "prose",
            Subsystem::Midas => "midas",
            Subsystem::Discovery => "discovery",
            Subsystem::Net => "net",
            Subsystem::Core => "core",
            Subsystem::Bench => "bench",
            Subsystem::Durable => "durable",
        }
    }

    fn bit(self) -> u32 {
        1 << (self as u32)
    }
}

/// What kind of journal entry an [`Event`] is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`span_begin`).
    SpanBegin,
    /// A span closed; `dur` is sim-time elapsed since its begin.
    SpanEnd {
        /// Nanoseconds between begin and end.
        dur: u64,
    },
    /// A point event.
    Point,
}

/// One journal entry.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (survives ring-buffer eviction).
    pub seq: u64,
    /// Sim-time stamp from the injected clock (0 without a clock).
    pub at: u64,
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Entry kind.
    pub kind: EventKind,
    /// Span id shared by a `span_begin`/`span_end` pair (0 for point
    /// events), so exporters and consumers can match the two halves
    /// even with other spans interleaved.
    pub span_id: u64,
    /// Event name, dot-scoped like metrics (`"midas.verify"`).
    pub name: String,
    /// Free-form detail (extension id, node, byte count, …).
    pub detail: String,
}

/// An open span returned by [`Journal::span_begin`]; close it with
/// [`Journal::span_end`] to record the duration.
#[derive(Debug)]
#[must_use = "close the span with Journal::span_end"]
pub struct SpanToken {
    subsystem: Subsystem,
    name: String,
    start: u64,
    span_id: u64,
    /// Whether the begin event actually entered the journal; the end
    /// event is emitted iff it did, so a subsystem toggled between
    /// begin and end can never produce an unpaired half.
    journaled: bool,
}

/// The ring-buffered event journal.
#[derive(Default)]
pub struct Journal {
    cap: usize,
    buf: VecDeque<Event>,
    mask: u32,
    seq: u64,
    next_span: u64,
    dropped: u64,
    clock: Option<Clock>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("cap", &self.cap)
            .field("len", &self.buf.len())
            .field("seq", &self.seq)
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// An empty journal keeping at most `cap` events (all subsystems
    /// enabled).
    #[must_use]
    pub fn new(cap: usize) -> Journal {
        Journal {
            cap: cap.max(1),
            buf: VecDeque::new(),
            mask: u32::MAX,
            seq: 0,
            next_span: 0,
            dropped: 0,
            clock: None,
        }
    }

    /// Installs the time source used to stamp events.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = Some(clock);
    }

    /// Current time from the injected clock (0 without one).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock.as_ref().map_or(0, |c| c())
    }

    /// Enables or disables journaling for one subsystem.
    pub fn set_enabled(&mut self, sub: Subsystem, on: bool) {
        if on {
            self.mask |= sub.bit();
        } else {
            self.mask &= !sub.bit();
        }
    }

    /// Whether `sub` is journaled.
    #[must_use]
    pub fn is_enabled(&self, sub: Subsystem) -> bool {
        self.mask & sub.bit() != 0
    }

    /// Appends a point event (dropped when `sub` is disabled).
    pub fn event(&mut self, sub: Subsystem, name: impl Into<String>, detail: impl Into<String>) {
        if !self.is_enabled(sub) {
            return;
        }
        let at = self.now();
        self.push(at, sub, EventKind::Point, 0, name.into(), detail.into());
    }

    /// Appends a point event stamped with an explicit time instead of
    /// the injected clock. Used by execution drivers that buffer events
    /// per node cell during an epoch and merge them at the barrier in
    /// deterministic `(time, cell, seq)` order — each buffered event
    /// carries the cell-clock reading it was emitted at.
    pub fn event_at(
        &mut self,
        at: u64,
        sub: Subsystem,
        name: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if !self.is_enabled(sub) {
            return;
        }
        self.push(at, sub, EventKind::Point, 0, name.into(), detail.into());
    }

    /// Opens a span. The begin event is journaled (subject to the
    /// enable mask); the token always measures, so `span_end` returns a
    /// duration even for disabled subsystems. Each pair shares a fresh
    /// span id (never 0), carried on both events.
    pub fn span_begin(&mut self, sub: Subsystem, name: impl Into<String>) -> SpanToken {
        let name = name.into();
        let start = self.now();
        self.next_span += 1;
        let span_id = self.next_span;
        let journaled = self.is_enabled(sub);
        if journaled {
            self.push(
                start,
                sub,
                EventKind::SpanBegin,
                span_id,
                name.clone(),
                String::new(),
            );
        }
        SpanToken {
            subsystem: sub,
            name,
            start,
            span_id,
            journaled,
        }
    }

    /// Closes a span, journaling the end event; returns the sim-time
    /// duration. The end event is emitted iff the matching begin was
    /// (not merely "iff the subsystem is enabled *now*"): toggling a
    /// subsystem mid-span can therefore never leave an unmatched
    /// `span_end` — or an unmatched `span_begin` — in the journal.
    pub fn span_end(&mut self, token: SpanToken, detail: impl Into<String>) -> u64 {
        let now = self.now();
        let dur = now.saturating_sub(token.start);
        if token.journaled {
            self.push(
                now,
                token.subsystem,
                EventKind::SpanEnd { dur },
                token.span_id,
                token.name,
                detail.into(),
            );
        }
        dur
    }

    fn push(
        &mut self,
        at: u64,
        sub: Subsystem,
        kind: EventKind,
        span_id: u64,
        name: String,
        detail: String,
    ) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            seq: self.seq,
            at,
            subsystem: sub,
            kind,
            span_id,
            name,
            detail,
        });
        self.seq += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever journaled (retained + dropped).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.seq
    }

    /// Stable 64-bit FNV-1a digest over the journal's observable state:
    /// total/dropped counts plus every retained event's `(seq, at,
    /// subsystem, kind, name, detail)`. Two runs are journal-identical
    /// iff their digests match (module hash collisions). Histogram
    /// *values* never enter the journal, so wall-clock-measured
    /// durations recorded via the registry don't perturb the digest —
    /// span durations do, but those are sim-time and deterministic.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = crate::digest::Fnv64::new();
        h.write_u64(self.seq);
        h.write_u64(self.dropped);
        for e in &self.buf {
            h.write_u64(e.seq);
            h.write_u64(e.at);
            h.write_u64(e.span_id);
            h.write_str(e.subsystem.name());
            match &e.kind {
                EventKind::SpanBegin => h.write_u64(0),
                EventKind::SpanEnd { dur } => {
                    h.write_u64(1);
                    h.write_u64(*dur);
                }
                EventKind::Point => h.write_u64(2),
            }
            h.write_str(&e.name);
            h.write_str(&e.detail);
        }
        h.finish()
    }

    /// Forgets all events and resets the drop counter; the enable mask
    /// and clock survive.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.seq = 0;
        self.next_span = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn point_events_are_sequenced() {
        let mut j = Journal::new(8);
        j.event(Subsystem::Vm, "a", "1");
        j.event(Subsystem::Net, "b", "2");
        let seqs: Vec<u64> = j.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(j.events().next().unwrap().at, 0, "no clock → at=0");
    }

    // -- Ring wraparound (satellite: telemetry coverage) --

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut j = Journal::new(3);
        for i in 0..10 {
            j.event(Subsystem::Core, format!("e{i}"), "");
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        assert_eq!(j.total(), 10);
        let names: Vec<&str> = j.events().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["e7", "e8", "e9"], "oldest evicted first");
        let seqs: Vec<u64> = j.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9], "sequence numbers survive eviction");
    }

    #[test]
    fn subsystem_flags_filter() {
        let mut j = Journal::new(8);
        j.set_enabled(Subsystem::Net, false);
        j.event(Subsystem::Net, "hidden", "");
        j.event(Subsystem::Vm, "shown", "");
        assert_eq!(j.len(), 1);
        assert_eq!(j.events().next().unwrap().name, "shown");
        assert!(!j.is_enabled(Subsystem::Net));
        j.set_enabled(Subsystem::Net, true);
        j.event(Subsystem::Net, "back", "");
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn spans_measure_with_clock() {
        let t = Arc::new(std::sync::atomic::AtomicU64::new(100));
        let t2 = t.clone();
        let mut j = Journal::new(8);
        j.set_clock(Arc::new(move || {
            t2.load(std::sync::atomic::Ordering::Relaxed)
        }));
        let span = j.span_begin(Subsystem::Midas, "midas.verify");
        t.store(350, std::sync::atomic::Ordering::Relaxed);
        let dur = j.span_end(span, "ext/monitoring");
        assert_eq!(dur, 250);
        let kinds: Vec<EventKind> = j.events().map(|e| e.kind.clone()).collect();
        assert_eq!(kinds, vec![EventKind::SpanBegin, EventKind::SpanEnd { dur: 250 }]);
    }

    #[test]
    fn span_on_disabled_subsystem_still_measures() {
        let mut j = Journal::new(8);
        j.set_enabled(Subsystem::Midas, false);
        let span = j.span_begin(Subsystem::Midas, "midas.verify");
        let dur = j.span_end(span, "");
        assert_eq!(dur, 0);
        assert!(j.is_empty());
    }

    // -- Span pairing (satellite: masked begins never leak an end) --

    #[test]
    fn begin_and_end_share_a_span_id() {
        let mut j = Journal::new(8);
        let a = j.span_begin(Subsystem::Midas, "midas.verify");
        let b = j.span_begin(Subsystem::Prose, "prose.weave");
        j.span_end(b, "");
        j.span_end(a, "");
        let ids: Vec<(u64, EventKind)> =
            j.events().map(|e| (e.span_id, e.kind.clone())).collect();
        assert_eq!(ids[0].0, 1, "first pair gets span id 1");
        assert_eq!(ids[1].0, 2);
        assert_eq!(ids[2].0, 2, "interleaved end matches its begin");
        assert_eq!(ids[3].0, 1);
        assert!(ids.iter().all(|(id, _)| *id != 0), "span events never id 0");
        j.event(Subsystem::Core, "point", "");
        assert_eq!(j.events().last().unwrap().span_id, 0, "points carry 0");
    }

    #[test]
    fn masked_begin_suppresses_the_end() {
        // Disabled at begin, re-enabled before end: previously the end
        // was emitted with no begin; now the pair is dropped whole.
        let mut j = Journal::new(8);
        j.set_enabled(Subsystem::Midas, false);
        let span = j.span_begin(Subsystem::Midas, "midas.verify");
        j.set_enabled(Subsystem::Midas, true);
        j.span_end(span, "late enable");
        assert!(j.is_empty(), "no unmatched span_end");
    }

    #[test]
    fn journaled_begin_forces_the_end() {
        // Enabled at begin, disabled before end: the end still lands,
        // so the begin is never left dangling either.
        let mut j = Journal::new(8);
        let span = j.span_begin(Subsystem::Midas, "midas.verify");
        j.set_enabled(Subsystem::Midas, false);
        j.span_end(span, "");
        let kinds: Vec<EventKind> = j.events().map(|e| e.kind.clone()).collect();
        assert_eq!(kinds, vec![EventKind::SpanBegin, EventKind::SpanEnd { dur: 0 }]);
    }

    #[test]
    fn subsystem_names_are_distinct() {
        let mut names: Vec<&str> = Subsystem::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Subsystem::ALL.len());
    }
}
