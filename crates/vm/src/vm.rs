//! The VM facade: class registration, method resolution, invocation
//! with join-point hooks, the sandbox, and reflection.

use crate::class::{ClassDef, MethodBody, NativeCall, NativeFn};
use crate::error::{exception_class, Limit, VmError, VmException};
use crate::heap::Heap;
use crate::hooks::{
    ClassId, Dispatcher, FieldId, HookRegistry, MethodId, Outcome, HOOK_ENTRY, HOOK_EXIT,
};
use crate::jit;
use crate::perm::Permissions;
use crate::sys::{security_violation, SysFn, SysRegistry};
use crate::types::{MethodSig, TypeSig};
use crate::value::{ObjId, Value};
use pmp_telemetry::{CounterId, Subsystem, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Plant PROSE stubs when JIT-compiling methods. When `false` the VM
    /// behaves like an unmodified runtime (the benchmark baseline).
    pub prose_hooks: bool,
    /// Maximum nested call depth.
    pub max_call_depth: u32,
    /// Echo `print` output to stdout in addition to capturing it.
    pub echo_output: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self {
            prose_hooks: true,
            max_call_depth: 256,
            echo_output: false,
        }
    }
}

impl VmConfig {
    /// Configuration with stubs disabled (unmodified-JVM baseline).
    pub fn without_hooks() -> Self {
        Self {
            prose_hooks: false,
            ..Self::default()
        }
    }
}

/// Counters describing engine activity; used by benches and tests.
///
/// Since the telemetry refactor this is a *view* over the VM's
/// [`pmp_telemetry::Registry`] (metric names `vm.*`, see
/// [`Vm::stats`]), kept for its convenient struct shape.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VmStats {
    /// Method invocations (bytecode and native).
    pub invocations: u64,
    /// Bytecode instructions executed.
    pub bytecode_ops: u64,
    /// Hook-flag checks performed by stubs: exactly one per planted
    /// stub reached while hooks are live (one entry stub + one exit
    /// stub per invocation), never one per hook-table probe.
    pub hook_checks: u64,
    /// Advice dispatches (hook fired into the AOP runtime).
    pub advice_dispatches: u64,
    /// Methods JIT-compiled.
    pub compiled_methods: u64,
    /// Fuel consumed inside advice scopes (sandboxed advice only).
    pub advice_fuel_used: u64,
}

/// Pre-registered ids of the VM's hot-path metrics, so the interpreter
/// bumps plain array slots instead of doing name lookups.
#[derive(Debug, Clone, Copy)]
struct VmMetricIds {
    invocations: CounterId,
    bytecode_ops: CounterId,
    hook_checks: CounterId,
    advice_dispatches: CounterId,
    compiled_methods: CounterId,
    advice_fuel_used: CounterId,
}

impl VmMetricIds {
    fn register(t: &mut Telemetry) -> VmMetricIds {
        let r = &mut t.registry;
        VmMetricIds {
            invocations: r.counter("vm.interp.invocations"),
            bytecode_ops: r.counter("vm.interp.bytecode_ops"),
            hook_checks: r.counter("vm.hooks.checks"),
            advice_dispatches: r.counter("vm.hooks.advice_dispatches"),
            compiled_methods: r.counter("vm.jit.compiled_methods"),
            advice_fuel_used: r.counter("vm.advice.fuel_used"),
        }
    }
}

/// A resolved exception handler range.
#[derive(Debug, Clone)]
pub struct CompiledHandler {
    /// First covered pc (inclusive).
    pub start: u32,
    /// One past the last covered pc.
    pub end: u32,
    /// Exception class caught (`"*"` for all).
    pub class: Arc<str>,
    /// Handler entry pc.
    pub target: u32,
}

/// JIT output for a bytecode method.
#[derive(Debug)]
pub struct CompiledMethod {
    /// The method this code belongs to.
    pub mid: MethodId,
    /// Resolved instructions.
    pub ops: Vec<crate::op::CompiledOp>,
    /// Resolved handler table.
    pub handlers: Vec<CompiledHandler>,
    /// Total local slots (`this` + params + extra).
    pub nlocals: u16,
    /// Whether PROSE stubs were planted at compile time.
    pub stub: bool,
}

/// Compiled form of a method body.
#[derive(Clone)]
pub(crate) enum Compiled {
    Bytecode(Arc<CompiledMethod>),
    Native { f: NativeFn, stub: bool },
}

pub(crate) struct FieldRt {
    pub(crate) name: Arc<str>,
    pub(crate) ty: TypeSig,
    pub(crate) fid: FieldId,
    pub(crate) declared_in: ClassId,
}

pub(crate) struct ClassRt {
    pub(crate) name: Arc<str>,
    pub(crate) superclass: Option<ClassId>,
    pub(crate) field_slots: Vec<FieldRt>,
    pub(crate) field_by_name: HashMap<Arc<str>, u16>,
    pub(crate) method_by_name: HashMap<Arc<str>, MethodId>,
}

pub(crate) struct MethodRt {
    pub(crate) class: ClassId,
    pub(crate) sig: MethodSig,
    pub(crate) body: MethodBody,
    pub(crate) compiled: Option<Compiled>,
    /// Hook-check hoisting: when set, the JIT skips planting the PROSE
    /// entry/exit stubs even on a hook-carrying VM. Set only via
    /// [`Vm::hoist_hooks`] for methods the weave-time analyzer proved
    /// are never join points that matter (pure advice bodies — they run
    /// inside `begin_advice`, where hooks are suppressed anyway).
    pub(crate) hoisted: bool,
}

/// Saved state for a nested advice execution; restore with
/// [`Vm::end_advice`].
#[derive(Debug)]
pub struct AdviceScope {
    saved_fuel: Option<u64>,
    /// The fuel budget this scope started with, so `end_advice` can
    /// attribute consumed fuel to `vm.advice.fuel_used`.
    budget: Option<u64>,
}

/// The managed runtime.
///
/// # Examples
///
/// ```
/// use pmp_vm::prelude::*;
///
/// # fn main() -> Result<(), VmError> {
/// let mut vm = Vm::new(VmConfig::default());
/// let class = ClassDef::build("Greeter")
///     .native("greet", [TypeSig::Str], TypeSig::Str, |_vm, call| {
///         Ok(Value::str(format!("hello {}", call.str_arg(0)?)))
///     })
///     .done();
/// vm.register_class(class)?;
/// let out = vm.call("Greeter", "greet", Value::Null, vec![Value::str("world")])?;
/// assert_eq!(out, Value::str("hello world"));
/// # Ok(())
/// # }
/// ```
pub struct Vm {
    classes: Vec<ClassRt>,
    class_by_name: HashMap<Arc<str>, ClassId>,
    methods: Vec<MethodRt>,
    heap: Heap,
    hooks: HookRegistry,
    dispatcher: Option<Arc<dyn Dispatcher>>,
    sys: SysRegistry,
    config: VmConfig,
    perm_stack: Vec<Permissions>,
    advice_depth: u32,
    depth: u32,
    fuel: Option<u64>,
    clock: Arc<dyn Fn() -> u64 + Send + Sync>,
    telemetry: Telemetry,
    ids: VmMetricIds,
    field_count: u32,
    output: Vec<String>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("classes", &self.classes.len())
            .field("methods", &self.methods.len())
            .field("heap", &self.heap.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Default for Vm {
    fn default() -> Self {
        Self::new(VmConfig::default())
    }
}

impl Vm {
    /// Creates a VM and registers the built-in system operations
    /// (`print`, `time.now`).
    pub fn new(config: VmConfig) -> Self {
        let mut telemetry = Telemetry::new();
        let ids = VmMetricIds::register(&mut telemetry);
        let mut vm = Self {
            classes: Vec::new(),
            class_by_name: HashMap::new(),
            methods: Vec::new(),
            heap: Heap::new(),
            hooks: HookRegistry::new(),
            dispatcher: None,
            sys: SysRegistry::new(),
            config,
            perm_stack: vec![Permissions::all()],
            advice_depth: 0,
            depth: 0,
            fuel: None,
            clock: Arc::new(|| 0),
            telemetry,
            ids,
            field_count: 0,
            output: Vec::new(),
        };
        vm.register_builtin_sys();
        vm
    }

    fn register_builtin_sys(&mut self) {
        self.register_sys(
            "print",
            Some(crate::perm::Permission::Print),
            Arc::new(|vm: &mut Vm, args: Vec<Value>| {
                let line = args
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                if vm.config.echo_output {
                    println!("{line}");
                }
                vm.output.push(line);
                Ok(Value::Null)
            }),
        );
        self.register_sys(
            "time.now",
            Some(crate::perm::Permission::Time),
            Arc::new(|vm: &mut Vm, _args| Ok(Value::Int(vm.now() as i64))),
        );
    }

    // ------------------------------------------------------------------
    // Configuration & plumbing
    // ------------------------------------------------------------------

    /// Current configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Enables/disables PROSE stubs and discards all JIT output so the
    /// next invocations recompile with the new setting.
    pub fn set_prose_hooks(&mut self, enabled: bool) {
        self.config.prose_hooks = enabled;
        for m in &mut self.methods {
            m.compiled = None;
        }
    }

    /// Installs the AOP dispatcher (PROSE runtime).
    pub fn set_dispatcher(&mut self, d: Arc<dyn Dispatcher>) {
        self.dispatcher = Some(d);
    }

    /// Removes the dispatcher; hooks become inert.
    pub fn clear_dispatcher(&mut self) {
        self.dispatcher = None;
    }

    /// Installs the clock used by `time.now` (the platform wires the
    /// simulated clock in here).
    pub fn set_clock(&mut self, clock: Arc<dyn Fn() -> u64 + Send + Sync>) {
        self.telemetry.set_clock(clock.clone());
        self.clock = clock;
    }

    /// Current clock reading (nanoseconds).
    pub fn now(&self) -> u64 {
        (self.clock)()
    }

    /// Registers (or replaces) a named system operation.
    pub fn register_sys(
        &mut self,
        name: impl AsRef<str>,
        perm: Option<crate::perm::Permission>,
        f: SysFn,
    ) {
        self.sys.register(name, perm, f);
        // Sys indices may have changed meaning only for new names;
        // existing compiled code keeps valid indices because replacement
        // preserves them.
    }

    /// The system-operation registry.
    pub fn sys_registry(&self) -> &SysRegistry {
        &self.sys
    }

    /// Captured `print` output (drains).
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Engine counters, read back out of the telemetry registry.
    pub fn stats(&self) -> VmStats {
        let r = &self.telemetry.registry;
        VmStats {
            invocations: r.counter_get(self.ids.invocations),
            bytecode_ops: r.counter_get(self.ids.bytecode_ops),
            hook_checks: r.counter_get(self.ids.hook_checks),
            advice_dispatches: r.counter_get(self.ids.advice_dispatches),
            compiled_methods: r.counter_get(self.ids.compiled_methods),
            advice_fuel_used: r.counter_get(self.ids.advice_fuel_used),
        }
    }

    /// Resets engine counters (every metric in the registry, so no
    /// `VmStats` field can be missed when new counters are added).
    pub fn reset_stats(&mut self) {
        self.telemetry.registry.reset();
    }

    /// This VM's telemetry (registry + event journal).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// This VM's telemetry, mutably (other layers record into it).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    #[inline]
    pub(crate) fn count_bytecode_op(&mut self) {
        self.telemetry.registry.inc(self.ids.bytecode_ops);
    }

    /// The hook-flag registry (the weaver flips these).
    pub fn hooks(&self) -> &HookRegistry {
        &self.hooks
    }

    /// Remaining fuel for sandboxed execution, if limited.
    pub fn fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// Sets the fuel budget (`None` = unlimited).
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.fuel = fuel;
    }

    /// The heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The heap, mutably.
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    // ------------------------------------------------------------------
    // Sandbox
    // ------------------------------------------------------------------

    /// The permission set of the code currently executing.
    pub fn effective_perms(&self) -> Permissions {
        *self.perm_stack.last().expect("perm stack never empty")
    }

    /// Enters an advice execution scope: hooks are suppressed (advice is
    /// never itself intercepted — the paper's aspect isolation), the
    /// given permissions apply, and the fuel budget limits runaway code.
    pub fn begin_advice(&mut self, perms: Permissions, fuel: Option<u64>) -> AdviceScope {
        self.advice_depth += 1;
        self.perm_stack.push(perms);
        let saved_fuel = self.fuel;
        self.fuel = fuel;
        AdviceScope {
            saved_fuel,
            budget: fuel,
        }
    }

    /// Leaves an advice scope started with [`Vm::begin_advice`].
    pub fn end_advice(&mut self, scope: AdviceScope) {
        self.advice_depth = self.advice_depth.saturating_sub(1);
        if self.perm_stack.len() > 1 {
            self.perm_stack.pop();
        }
        if let Some(budget) = scope.budget {
            let used = budget.saturating_sub(self.fuel.unwrap_or(0));
            self.telemetry
                .registry
                .add(self.ids.advice_fuel_used, used);
        }
        self.fuel = scope.saved_fuel;
    }

    /// `true` while advice code is executing.
    pub fn in_advice(&self) -> bool {
        self.advice_depth > 0
    }

    /// Whether hooks may fire right now (dispatcher installed, not
    /// already inside advice).
    pub(crate) fn hooks_live(&self) -> bool {
        self.advice_depth == 0 && self.dispatcher.is_some()
    }

    // ------------------------------------------------------------------
    // Classes & reflection
    // ------------------------------------------------------------------

    /// Registers a class.
    ///
    /// # Errors
    ///
    /// [`VmError::Link`] on duplicate names, unknown superclasses, or
    /// duplicate members.
    pub fn register_class(&mut self, def: ClassDef) -> Result<ClassId, VmError> {
        let name: Arc<str> = Arc::from(def.name.as_str());
        if self.class_by_name.contains_key(&name) {
            return Err(VmError::link(format!("duplicate class {name:?}")));
        }
        let superclass = match &def.superclass {
            None => None,
            Some(s) => Some(
                self.class_id(s)
                    .ok_or_else(|| VmError::link(format!("unknown superclass {s:?}")))?,
            ),
        };
        let cid = ClassId(self.classes.len() as u32);

        // Field layout: inherited slots first, then declared.
        let mut field_slots: Vec<FieldRt> = Vec::new();
        let mut field_by_name: HashMap<Arc<str>, u16> = HashMap::new();
        if let Some(sup) = superclass {
            for f in &self.classes[sup.0 as usize].field_slots {
                field_by_name.insert(f.name.clone(), field_slots.len() as u16);
                field_slots.push(FieldRt {
                    name: f.name.clone(),
                    ty: f.ty.clone(),
                    fid: f.fid,
                    declared_in: f.declared_in,
                });
            }
        }
        for f in &def.fields {
            let fname: Arc<str> = Arc::from(f.name.as_str());
            if field_by_name.contains_key(&fname) {
                return Err(VmError::link(format!(
                    "duplicate field {}.{}",
                    name, f.name
                )));
            }
            let fid = FieldId(self.field_count);
            self.field_count += 1;
            self.hooks.ensure_field(fid);
            field_by_name.insert(fname.clone(), field_slots.len() as u16);
            field_slots.push(FieldRt {
                name: fname,
                ty: f.ty.clone(),
                fid,
                declared_in: cid,
            });
        }

        // Method table: own declarations only. Inherited methods are
        // found by walking the superclass chain at resolution time
        // (`resolve_virtual`), so loading a subclass costs O(own
        // methods) instead of cloning the parent's whole table.
        let mut method_by_name: HashMap<Arc<str>, MethodId> = HashMap::new();
        let mut declared: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for m in &def.methods {
            if !declared.insert(m.name.as_str()) {
                return Err(VmError::link(format!(
                    "duplicate method {}.{}",
                    name, m.name
                )));
            }
            let mid = MethodId(self.methods.len() as u32);
            self.hooks.ensure_method(mid);
            let sig = MethodSig {
                class: name.clone(),
                name: Arc::from(m.name.as_str()),
                params: m.params.clone(),
                ret: m.ret.clone(),
            };
            method_by_name.insert(sig.name.clone(), mid);
            self.methods.push(MethodRt {
                class: cid,
                sig,
                body: m.body.clone(),
                compiled: None,
                hoisted: false,
            });
        }

        self.class_by_name.insert(name.clone(), cid);
        self.classes.push(ClassRt {
            name,
            superclass,
            field_slots,
            field_by_name,
            method_by_name,
        });
        Ok(cid)
    }

    /// Resolves a class name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// The name of a class.
    ///
    /// # Panics
    ///
    /// Panics if `cid` was not produced by this VM.
    pub fn class_name(&self, cid: ClassId) -> &str {
        &self.classes[cid.0 as usize].name
    }

    /// Number of registered classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if `sub` is `sup` or a transitive subclass of it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes[c.0 as usize].superclass;
        }
        false
    }

    /// Looks up a method id by class and method name (virtual: includes
    /// inherited methods).
    pub fn method_id(&self, class: &str, method: &str) -> Option<MethodId> {
        let cid = self.class_id(class)?;
        self.resolve_virtual(cid, method)
    }

    /// The signature of a method.
    ///
    /// # Panics
    ///
    /// Panics if `mid` was not produced by this VM.
    pub fn method_sig(&self, mid: MethodId) -> &MethodSig {
        &self.methods[mid.0 as usize].sig
    }

    /// The declaring class of a method.
    ///
    /// # Panics
    ///
    /// Panics if `mid` was not produced by this VM.
    pub fn method_class(&self, mid: MethodId) -> ClassId {
        self.methods[mid.0 as usize].class
    }

    /// Iterates over every declared method `(id, signature)`.
    pub fn methods(&self) -> impl Iterator<Item = (MethodId, &MethodSig)> {
        self.methods
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId(i as u32), &m.sig))
    }

    /// Iterates over every declared field
    /// `(id, declaring class name, field name, type)`.
    pub fn fields(&self) -> impl Iterator<Item = (FieldId, &str, &str, &TypeSig)> {
        self.classes.iter().enumerate().flat_map(|(i, c)| {
            c.field_slots
                .iter()
                .filter(move |f| f.declared_in == ClassId(i as u32))
                .map(move |f| (f.fid, &*c.name, &*f.name, &f.ty))
        })
    }

    pub(crate) fn method_rt(&self, mid: MethodId) -> &MethodRt {
        &self.methods[mid.0 as usize]
    }

    pub(crate) fn install_compiled(&mut self, mid: MethodId, compiled: Compiled) {
        self.telemetry.registry.inc(self.ids.compiled_methods);
        if self.telemetry.journal.is_enabled(Subsystem::Vm) {
            let sig = self.methods[mid.0 as usize].sig.to_string();
            self.telemetry.journal.event(Subsystem::Vm, "vm.jit.compile", sig);
        }
        self.methods[mid.0 as usize].compiled = Some(compiled);
    }

    /// Resolves `(slot, field id)` of `class.field`.
    pub fn resolve_field(&self, class: &str, field: &str) -> Option<(u16, FieldId)> {
        let cid = self.class_id(class)?;
        let c = &self.classes[cid.0 as usize];
        let slot = *c.field_by_name.get(field)?;
        Some((slot, c.field_slots[slot as usize].fid))
    }

    /// Marks `class.method` as hook-hoisted: its next compilation skips
    /// the PROSE entry/exit stubs entirely, removing the per-call hook
    /// check. Callers must have *proved* the method needs no stubs
    /// (pmp-analyze's hoisting pass does); existing JIT output is
    /// discarded so the flag takes effect on the next invocation.
    /// Returns `true` if the method existed.
    pub fn hoist_hooks(&mut self, class: &str, method: &str) -> bool {
        let Some(mid) = self.method_id(class, method) else {
            return false;
        };
        let m = &mut self.methods[mid.0 as usize];
        m.hoisted = true;
        m.compiled = None;
        true
    }

    /// Which of the first 64 local slots (`this` = bit 0, param `i` =
    /// bit `i`) a bytecode body may read, as a bitmask. Native methods
    /// conservatively read everything. Advice dispatch uses this to
    /// skip materialising arguments the advice never looks at.
    pub fn param_load_mask(&self, mid: MethodId) -> u64 {
        match &self.methods[mid.0 as usize].body {
            MethodBody::Native(_) => u64::MAX,
            MethodBody::Bytecode(b) => {
                let mut mask = 0u64;
                for op in &b.ops {
                    if let crate::op::Op::Load(i) = op {
                        if *i < 64 {
                            mask |= 1 << i;
                        }
                    }
                }
                mask
            }
        }
    }

    /// Resolves a virtual method on a runtime class: nearest
    /// declaration wins, walking up the superclass chain (overrides
    /// shadow inherited methods).
    pub fn resolve_virtual(&self, cid: ClassId, method: &str) -> Option<MethodId> {
        let mut cur = Some(cid);
        while let Some(c) = cur {
            let class = &self.classes[c.0 as usize];
            if let Some(mid) = class.method_by_name.get(method) {
                return Some(*mid);
            }
            cur = class.superclass;
        }
        None
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates an instance of `cid` with type-default field values.
    ///
    /// # Errors
    ///
    /// Never fails for valid ids; returns a link error for foreign ids.
    pub fn alloc_instance(&mut self, cid: ClassId) -> Result<Value, VmError> {
        let class = self
            .classes
            .get(cid.0 as usize)
            .ok_or_else(|| VmError::link(format!("unknown class id {cid}")))?;
        let fields: Vec<Value> = class
            .field_slots
            .iter()
            .map(|f| default_value(&f.ty))
            .collect();
        Ok(Value::Ref(self.heap.alloc_object(cid, fields)))
    }

    /// Allocates an instance by class name.
    ///
    /// # Errors
    ///
    /// Link error for unknown classes.
    pub fn new_object(&mut self, class: &str) -> Result<Value, VmError> {
        let cid = self
            .class_id(class)
            .ok_or_else(|| VmError::link(format!("unknown class {class:?}")))?;
        self.alloc_instance(cid)
    }

    /// Allocates a byte buffer from `bytes`.
    pub fn new_buffer(&mut self, bytes: Vec<u8>) -> Value {
        Value::Ref(self.heap.alloc_buffer_from(bytes))
    }

    /// Allocates an array from `values`.
    pub fn new_array(&mut self, values: Vec<Value>) -> Value {
        Value::Ref(self.heap.alloc_array_from(values))
    }

    /// Reads an object field by name.
    ///
    /// # Errors
    ///
    /// Link error for unknown fields; heap errors otherwise.
    pub fn get_field(&self, obj: ObjId, class: &str, field: &str) -> Result<Value, VmError> {
        let (slot, _) = self
            .resolve_field(class, field)
            .ok_or_else(|| VmError::link(format!("unknown field {class}.{field}")))?;
        self.heap.field(obj, slot)
    }

    /// Writes an object field by name (bypasses hooks — reflective).
    ///
    /// # Errors
    ///
    /// Link error for unknown fields; heap errors otherwise.
    pub fn set_field(
        &mut self,
        obj: ObjId,
        class: &str,
        field: &str,
        value: Value,
    ) -> Result<(), VmError> {
        let (slot, _) = self
            .resolve_field(class, field)
            .ok_or_else(|| VmError::link(format!("unknown field {class}.{field}")))?;
        self.heap.set_field(obj, slot, value)
    }

    // ------------------------------------------------------------------
    // Invocation
    // ------------------------------------------------------------------

    /// Calls `class.method` with virtual dispatch: if `this` is an
    /// object, its runtime class overrides `class`.
    ///
    /// # Errors
    ///
    /// Link errors for unknown targets, plus anything the method raises.
    pub fn call(
        &mut self,
        class: &str,
        method: &str,
        this: Value,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        let cid = match &this {
            Value::Ref(id) => self.heap.object_class(*id)?,
            _ => self
                .class_id(class)
                .ok_or_else(|| VmError::link(format!("unknown class {class:?}")))?,
        };
        let mid = self.resolve_virtual(cid, method).ok_or_else(|| {
            VmError::link(format!(
                "no method {method:?} on class {}",
                self.class_name(cid)
            ))
        })?;
        self.invoke(mid, this, args)
    }

    /// Virtual call used by the interpreter's `CallV`: receiver must be
    /// an object.
    pub(crate) fn call_virtual(
        &mut self,
        method: &str,
        recv: Value,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        let id = match &recv {
            Value::Ref(id) => *id,
            Value::Null => {
                return Err(VmError::exception(
                    exception_class::NULL_POINTER,
                    format!("virtual call {method:?} on null"),
                ))
            }
            other => {
                return Err(VmError::exception(
                    exception_class::TYPE,
                    format!("virtual call {method:?} on {}", other.kind()),
                ))
            }
        };
        let cid = self.heap.object_class(id)?;
        let mid = self.resolve_virtual(cid, method).ok_or_else(|| {
            VmError::exception(
                exception_class::TYPE,
                format!("no method {method:?} on {}", self.class_name(cid)),
            )
        })?;
        self.invoke(mid, recv, args)
    }

    /// Invokes a method by id. This is the join-point spine: entry/exit
    /// stubs fire here when present and active.
    ///
    /// # Errors
    ///
    /// Whatever the method raises, plus engine limits.
    pub fn invoke(&mut self, mid: MethodId, this: Value, args: Vec<Value>) -> Result<Value, VmError> {
        if self.depth >= self.config.max_call_depth {
            return Err(VmError::Limit(Limit::CallDepth));
        }
        self.depth += 1;
        let r = self.invoke_inner(mid, this, args);
        self.depth -= 1;
        r
    }

    fn invoke_inner(
        &mut self,
        mid: MethodId,
        this: Value,
        mut args: Vec<Value>,
    ) -> Result<Value, VmError> {
        if self.methods[mid.0 as usize].compiled.is_none() {
            jit::compile(self, mid)?;
        }
        self.telemetry.registry.inc(self.ids.invocations);
        let compiled = self.methods[mid.0 as usize]
            .compiled
            .clone()
            .expect("just compiled");
        let stub = match &compiled {
            Compiled::Bytecode(c) => c.stub,
            Compiled::Native { stub, .. } => *stub,
        };
        // The JIT-planted entry stub: one flag check on the fast path.
        let hooks_live = stub && self.hooks_live();
        let mut exit_args: Option<Vec<Value>> = None;
        if hooks_live {
            self.telemetry.registry.inc(self.ids.hook_checks);
            if self.hooks.method_flags(mid) & HOOK_ENTRY != 0 {
                // `hooks_live` implies a dispatcher, but a hostile or
                // buggy advice could tear it down mid-call: fault as a
                // link error rather than unwinding the interpreter.
                let Some(d) = self.dispatcher.clone() else {
                    return Err(VmError::link("entry hook fired with no dispatcher installed"));
                };
                self.telemetry.registry.inc(self.ids.advice_dispatches);
                catch_hook_panic("method_entry", || {
                    d.method_entry(self, mid, &this, &mut args)
                })?;
            }
            // Exit advice observes the (post-entry-advice) arguments;
            // keep a copy only when the exit hook is active.
            if self.hooks.method_flags(mid) & HOOK_EXIT != 0 {
                exit_args = Some(args.clone());
            }
        }
        let result = match &compiled {
            Compiled::Native { f, .. } => f(
                self,
                NativeCall {
                    this: this.clone(),
                    args,
                },
            ),
            Compiled::Bytecode(c) => {
                let expected = self.methods[mid.0 as usize].sig.params.len();
                if args.len() != expected {
                    return Err(VmError::link(format!(
                        "{}: expected {} args, got {}",
                        self.methods[mid.0 as usize].sig,
                        expected,
                        args.len()
                    )));
                }
                crate::interp::run(self, c, this.clone(), args)
            }
        };
        // The exit stub.
        let mut outcome = match result {
            Ok(v) => Outcome::Returned(v),
            Err(VmError::Exception(e)) => Outcome::Threw(e),
            Err(other) => return Err(other),
        };
        // The exit stub probes the hook table exactly once whenever
        // hooks are live — the check happens (and is counted) even when
        // the exit hook turns out to be inactive.
        if hooks_live {
            self.telemetry.registry.inc(self.ids.hook_checks);
            if self.hooks.method_flags(mid) & HOOK_EXIT != 0 {
                let Some(d) = self.dispatcher.clone() else {
                    return Err(VmError::link("exit hook fired with no dispatcher installed"));
                };
                self.telemetry.registry.inc(self.ids.advice_dispatches);
                let saved = exit_args.unwrap_or_default();
                catch_hook_panic("method_exit", || {
                    d.method_exit(self, mid, &this, &saved, &mut outcome)
                })?;
            }
        }
        match outcome {
            Outcome::Returned(v) => Ok(v),
            Outcome::Threw(e) => Err(e.into()),
        }
    }

    pub(crate) fn call_sys(&mut self, sys: u32, args: Vec<Value>) -> Result<Value, VmError> {
        let (perm, name, f) = {
            let (entry, f) = self
                .sys
                .entry(sys)
                .ok_or_else(|| VmError::link(format!("unknown sys index {sys}")))?;
            (entry.perm, entry.name.clone(), f)
        };
        if let Some(p) = perm {
            if !self.effective_perms().allows(p) {
                return Err(security_violation(&name, p));
            }
        }
        f(self, args)
    }

    /// Invokes a named system operation directly (native helpers).
    ///
    /// # Errors
    ///
    /// Link error for unknown names; `SecurityException` without the
    /// required permission.
    pub fn sys(&mut self, name: &str, args: Vec<Value>) -> Result<Value, VmError> {
        let idx = self
            .sys
            .lookup(name)
            .ok_or_else(|| VmError::link(format!("unknown sys op {name:?}")))?;
        self.call_sys(idx, args)
    }

    // ------------------------------------------------------------------
    // Hook dispatch helpers used by the interpreter
    // ------------------------------------------------------------------

    pub(crate) fn dispatch_field_get(
        &mut self,
        fid: FieldId,
        obj: ObjId,
        value: &mut Value,
    ) -> Result<(), VmError> {
        if let Some(d) = self.dispatcher.clone() {
            self.telemetry.registry.inc(self.ids.advice_dispatches);
            catch_hook_panic("field_get", || d.field_get(self, fid, obj, value))?;
        }
        Ok(())
    }

    pub(crate) fn dispatch_field_set(
        &mut self,
        fid: FieldId,
        obj: ObjId,
        value: &mut Value,
    ) -> Result<(), VmError> {
        if let Some(d) = self.dispatcher.clone() {
            self.telemetry.registry.inc(self.ids.advice_dispatches);
            catch_hook_panic("field_set", || d.field_set(self, fid, obj, value))?;
        }
        Ok(())
    }

    pub(crate) fn dispatch_exception_throw(
        &mut self,
        site: MethodId,
        exc: &VmException,
    ) -> Result<(), VmError> {
        if let Some(d) = self.dispatcher.clone() {
            self.telemetry.registry.inc(self.ids.advice_dispatches);
            catch_hook_panic("exception_throw", || d.exception_throw(self, site, exc))?;
        }
        Ok(())
    }

    pub(crate) fn dispatch_exception_catch(
        &mut self,
        site: MethodId,
        exc: &VmException,
    ) -> Result<(), VmError> {
        if let Some(d) = self.dispatcher.clone() {
            self.telemetry.registry.inc(self.ids.advice_dispatches);
            catch_hook_panic("exception_catch", || d.exception_catch(self, site, exc))?;
        }
        Ok(())
    }

    /// Field metadata: `(declaring class name, field name)`.
    pub fn field_info(&self, fid: FieldId) -> Option<(&str, &str)> {
        for (i, c) in self.classes.iter().enumerate() {
            for f in &c.field_slots {
                if f.fid == fid && f.declared_in == ClassId(i as u32) {
                    return Some((&c.name, &f.name));
                }
            }
        }
        None
    }
}

/// Runs one dispatcher callback, converting an escaping panic into a
/// [`VmError`] link fault. Advice is foreign code woven in at runtime;
/// a bug in it must fault the intercepted call — observable, isolable
/// by PROSE error policy — rather than unwind the interpreter and take
/// the whole node down. The VM may be left mid-advice (depth counters,
/// partially-applied effects); that is the same contract as any advice
/// error, and the chaos harness leans on this totality.
fn catch_hook_panic<R>(
    site: &'static str,
    f: impl FnOnce() -> Result<R, VmError>,
) -> Result<R, VmError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(VmError::link(format!("{site} advice panicked: {msg}")))
        }
    }
}

/// The default value of a field of type `ty`.
pub fn default_value(ty: &TypeSig) -> Value {
    match ty {
        TypeSig::Bool => Value::Bool(false),
        TypeSig::Int => Value::Int(0),
        TypeSig::Float => Value::Float(0.0),
        TypeSig::Str => Value::str(""),
        _ => Value::Null,
    }
}
