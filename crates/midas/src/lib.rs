//! # pmp-midas — MIddleware for ADaptive Services
//!
//! The extension-management layer of *A Proactive Middleware Platform
//! for Mobile Computing* (Middleware 2003, §3.2). MIDAS sits on top of
//! PROSE and provides, over the simulated wireless network:
//!
//! * **extension distribution** — an [`base::ExtensionBase`] discovers
//!   adaptation services ([`receiver::AdaptationService`]) through the
//!   Jini-like registrar and pushes its signed catalog to newcomers, in
//!   dependency order (implicit extensions like session management go
//!   first);
//! * **locality of adaptations** — every delivered extension is leased;
//!   the base keeps leases alive while the node stays in its area, and
//!   the receiver autonomously withdraws extensions whose lease lapses,
//!   notifying each extension's shutdown procedure;
//! * **security** — every extension instance is signed
//!   ([`package::SignedExtension`]); receivers verify the signer against
//!   their trust store and cap the extension's sandbox permissions per
//!   signer ([`policy::ReceiverPolicy`]);
//! * **evolution** — bases replace extensions on live nodes when the
//!   local policy changes, and hand roaming nodes off to neighbour
//!   bases.
//!
//! Both ends are message-driven state machines over
//! [`pmp_net::Simulator`]; `pmp-core` wires them to each node's VM and
//! PROSE weaver.

pub mod base;
pub mod catalog;
pub mod durable;
pub mod optimize;
pub mod package;
pub mod policy;
pub mod proto;
pub mod receiver;

pub use base::{BaseEvent, ExtensionBase, RoamEntry};
pub use catalog::Catalog;
pub use optimize::{optimize_package, OptReport, ShipMode};
pub use package::{ExtensionMeta, ExtensionPackage, SignedExtension};
pub use policy::{AnalysisPolicy, ReceiverPolicy};
pub use proto::{MidasMsg, CHANNEL};
pub use receiver::{AdaptationService, ReceiverEvent};
