//! The implicit session-management extension (paper §3.3, Fig. 2c
//! step 2): the first interception on a service call extracts session
//! information — the caller's identity — and publishes it for other
//! extensions (access control) to consume.

use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::Op;

/// The blackboard key under which the caller identity is published.
pub const CALLER_KEY: &str = "caller";

/// Extension id (what dependents put in `requires`).
pub const ID: &str = "ext/session";

/// Builds the session-management package. `service_pattern` selects the
/// service methods whose calls carry sessions, e.g.
/// `"* DrawingService.*(..)"`.
///
/// The advice runs at priority `-100` so it precedes access control and
/// other consumers.
pub fn package(service_pattern: &str, version: u32) -> ExtensionPackage {
    let mut b = MethodBuilder::new();
    // session.set("caller", session.caller())
    b.konst(CALLER_KEY);
    b.op(Op::Sys {
        name: "session.caller".into(),
        argc: 0,
    });
    b.op(Op::Sys {
        name: "session.set".into(),
        argc: 2,
    });
    b.op(Op::Pop).op(Op::Ret);

    let class = PortableClass {
        name: versioned_class("SessionMgmt", version),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "capture".into(),
            params: advice_params(),
            ret: "any".into(),
            body: b.build(),
        }],
    };
    let aspect = Aspect::script(
        "session",
        class,
        vec![(
            Crosscut::parse(&format!("before {service_pattern}")).expect("valid pattern"),
            "capture".into(),
            -100,
        )],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: ID.into(),
            version,
            description: "extracts caller identity into the session blackboard".into(),
            requires: vec![],
            permissions: vec![],
            implicit: true,
        },
        aspect: PortableAspect::try_from(&aspect).expect("portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::register_session_blackboard;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_vm::perm::Permissions;
    use pmp_vm::prelude::*;
    use std::sync::Arc;

    #[test]
    fn captures_caller_on_service_entry() {
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("DrawingService")
                .method("draw", [], TypeSig::Void, |b| {
                    b.op(Op::Ret);
                })
                .done(),
        )
        .unwrap();
        let board = register_session_blackboard(&mut vm);
        // The platform sets the transport-level caller identity.
        vm.register_sys(
            "session.caller",
            None,
            Arc::new(|_vm, _args| Ok(Value::str("operator:9"))),
        );
        let prose = Prose::attach(&mut vm);
        let pkg = package("* DrawingService.*(..)", 1);
        assert!(pkg.meta.implicit);
        prose
            .weave(
                &mut vm,
                pkg.aspect.into(),
                WeaveOptions::sandboxed(Permissions::none()),
            )
            .unwrap();

        let svc = vm.new_object("DrawingService").unwrap();
        vm.call("DrawingService", "draw", svc, vec![]).unwrap();
        assert_eq!(
            board.lock().get(CALLER_KEY),
            Some(&Value::str("operator:9"))
        );
    }
}
