//! Crash-safety for the extension base.
//!
//! The base's durable state is the extension catalog, the lease table
//! (which node holds which grant for which extension), and the roaming
//! cache. Every mutation point in [`ExtensionBase`] logs one
//! [`BaseWalOp`] through its attached namespace handle; replaying the
//! ops in sequence order reproduces the state exactly, and snapshots
//! capture it wholesale in canonical (sorted) form.
//!
//! What is deliberately *not* durable: scan timers, pending lookups,
//! undelivered [`crate::BaseEvent`]s, and the discovery client — all
//! of that is session state a restarted base rebuilds by scanning
//! again. The lease table surviving is what lets the restarted base
//! *renew* grants instead of re-delivering the whole catalog.

use crate::base::{AdaptedNode, ExtensionBase, RoamEntry};
use crate::catalog::Catalog;
use crate::package::SignedExtension;
use pmp_durable::{Durable, DurableError};
use pmp_net::NodeId;
use pmp_wire::{wire_struct, Reader, Wire, WireError, Writer};
use std::collections::BTreeMap;

/// The WAL namespace owned by the extension base.
pub const NAMESPACE: &str = "midas.base";

/// One logged mutation of the base's durable state.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseWalOp {
    /// An extension entered (or upgraded in) the catalog.
    CatalogPut {
        /// The signed package.
        ext: SignedExtension,
    },
    /// An extension was revoked: out of the catalog, all grants void.
    Revoked {
        /// The revoked extension id.
        ext_id: String,
    },
    /// A node was adapted: full catalog delivery with fresh grants.
    NodeAdapted {
        /// The node's advertised name.
        name: String,
        /// Its network id.
        node: u32,
        /// Extension id → lease grant.
        grants: BTreeMap<String, u64>,
    },
    /// One grant was issued or replaced for an adapted node.
    GrantSet {
        /// The node's name.
        name: String,
        /// The extension id.
        ext_id: String,
        /// The new grant.
        grant: u64,
    },
    /// A grant was released by its holder.
    GrantDropped {
        /// The node's name.
        name: String,
        /// The dropped grant.
        grant: u64,
    },
    /// An adapted node's presence flag changed (departure/return).
    Presence {
        /// The node's name.
        name: String,
        /// Whether the node is in the base's area.
        present: bool,
    },
    /// A neighbour handed us a roaming node's extension list.
    /// Legacy op, superseded by [`BaseWalOp::RoamState`]; replaying it
    /// builds a grant-less record (adoption falls back to redelivery).
    Roamed {
        /// The roaming node's name.
        name: String,
        /// Extensions it held at the neighbour.
        ext_ids: Vec<String>,
    },
    /// A roaming record was admitted or refreshed (handoff or lease
    /// sync), with the migratable grants and packages.
    RoamState {
        /// The roaming node's name.
        name: String,
        /// Network id of the base that sent the record.
        from: u32,
        /// Extension id → the grant the node held there.
        grants: BTreeMap<String, u64>,
        /// Signed packages behind those grants.
        exts: Vec<SignedExtension>,
        /// FIFO admission sequence.
        seq: u64,
    },
    /// A roaming record left the table (adopted, re-registered, or
    /// evicted at capacity). Evictions are logged explicitly so replay
    /// never re-runs capacity policy.
    RoamDrop {
        /// The roaming node's name.
        name: String,
    },
    /// A migrated package outside our own catalog was retained for
    /// redelivery and onward handoffs.
    ForeignPut {
        /// The signed package.
        ext: SignedExtension,
    },
}

impl Wire for BaseWalOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            BaseWalOp::CatalogPut { ext } => {
                w.put_u8(0);
                ext.encode(w);
            }
            BaseWalOp::Revoked { ext_id } => {
                w.put_u8(1);
                w.put_str(ext_id);
            }
            BaseWalOp::NodeAdapted { name, node, grants } => {
                w.put_u8(2);
                w.put_str(name);
                w.put_u32(*node);
                grants.encode(w);
            }
            BaseWalOp::GrantSet {
                name,
                ext_id,
                grant,
            } => {
                w.put_u8(3);
                w.put_str(name);
                w.put_str(ext_id);
                w.put_u64(*grant);
            }
            BaseWalOp::GrantDropped { name, grant } => {
                w.put_u8(4);
                w.put_str(name);
                w.put_u64(*grant);
            }
            BaseWalOp::Presence { name, present } => {
                w.put_u8(5);
                w.put_str(name);
                w.put_bool(*present);
            }
            BaseWalOp::Roamed { name, ext_ids } => {
                w.put_u8(6);
                w.put_str(name);
                ext_ids.encode(w);
            }
            BaseWalOp::RoamState {
                name,
                from,
                grants,
                exts,
                seq,
            } => {
                w.put_u8(7);
                w.put_str(name);
                w.put_u32(*from);
                grants.encode(w);
                exts.encode(w);
                w.put_u64(*seq);
            }
            BaseWalOp::RoamDrop { name } => {
                w.put_u8(8);
                w.put_str(name);
            }
            BaseWalOp::ForeignPut { ext } => {
                w.put_u8(9);
                ext.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => BaseWalOp::CatalogPut {
                ext: SignedExtension::decode(r)?,
            },
            1 => BaseWalOp::Revoked {
                ext_id: r.get_str()?,
            },
            2 => BaseWalOp::NodeAdapted {
                name: r.get_str()?,
                node: r.get_u32()?,
                grants: BTreeMap::decode(r)?,
            },
            3 => BaseWalOp::GrantSet {
                name: r.get_str()?,
                ext_id: r.get_str()?,
                grant: r.get_u64()?,
            },
            4 => BaseWalOp::GrantDropped {
                name: r.get_str()?,
                grant: r.get_u64()?,
            },
            5 => BaseWalOp::Presence {
                name: r.get_str()?,
                present: r.get_bool()?,
            },
            6 => BaseWalOp::Roamed {
                name: r.get_str()?,
                ext_ids: Vec::decode(r)?,
            },
            7 => BaseWalOp::RoamState {
                name: r.get_str()?,
                from: r.get_u32()?,
                grants: BTreeMap::decode(r)?,
                exts: Vec::<SignedExtension>::decode(r)?,
                seq: r.get_u64()?,
            },
            8 => BaseWalOp::RoamDrop {
                name: r.get_str()?,
            },
            9 => BaseWalOp::ForeignPut {
                ext: SignedExtension::decode(r)?,
            },
            tag => return Err(r.bad_tag("BaseWalOp", tag)),
        })
    }
}

/// One adapted node's durable form.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AdaptedSnap {
    node: u32,
    present: bool,
    grants: BTreeMap<String, u64>,
}

wire_struct!(AdaptedSnap {
    node: u32,
    present: bool,
    grants: BTreeMap<String, u64>,
});

/// One roaming record's durable form.
#[derive(Debug, Clone, PartialEq)]
struct RoamSnap {
    from: u32,
    grants: BTreeMap<String, u64>,
    exts: Vec<SignedExtension>,
    seq: u64,
}

wire_struct!(RoamSnap {
    from: u32,
    grants: BTreeMap<String, u64>,
    exts: Vec<SignedExtension>,
    seq: u64,
});

/// The base's full durable state in canonical (sorted) form.
#[derive(Debug, Clone, PartialEq)]
struct BaseSnapshot {
    next_grant: u64,
    catalog: BTreeMap<String, SignedExtension>,
    adapted: BTreeMap<String, AdaptedSnap>,
    roaming: BTreeMap<String, RoamSnap>,
    foreign: BTreeMap<String, SignedExtension>,
    roam_seq: u64,
}

wire_struct!(BaseSnapshot {
    next_grant: u64,
    catalog: BTreeMap<String, SignedExtension>,
    adapted: BTreeMap<String, AdaptedSnap>,
    roaming: BTreeMap<String, RoamSnap>,
    foreign: BTreeMap<String, SignedExtension>,
    roam_seq: u64,
});

impl ExtensionBase {
    /// The lease table in canonical form: node name → (network id,
    /// present, extension id → grant). Crash-recovery tests compare
    /// this across a restart.
    #[must_use]
    pub fn lease_table(&self) -> BTreeMap<String, (u32, bool, BTreeMap<String, u64>)> {
        self.adapted
            .iter()
            .map(|(name, a)| {
                let grants: BTreeMap<String, u64> =
                    a.grants.iter().map(|(k, v)| (k.clone(), *v)).collect();
                (name.clone(), (a.node.0, a.present, grants))
            })
            .collect()
    }

    fn bump_grant(&mut self, grant: u64) {
        self.next_grant = self.next_grant.max(grant + 1);
    }
}

impl Durable for ExtensionBase {
    fn namespace(&self) -> &'static str {
        NAMESPACE
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        let catalog: BTreeMap<String, SignedExtension> = self
            .catalog
            .ids()
            .into_iter()
            .filter_map(|id| self.catalog.get(&id).cloned().map(|e| (id, e)))
            .collect();
        let adapted: BTreeMap<String, AdaptedSnap> = self
            .adapted
            .iter()
            .map(|(name, a)| {
                (
                    name.clone(),
                    AdaptedSnap {
                        node: a.node.0,
                        present: a.present,
                        grants: a.grants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                    },
                )
            })
            .collect();
        let snap = BaseSnapshot {
            next_grant: self.next_grant,
            catalog,
            adapted,
            roaming: self
                .roaming_cache
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        RoamSnap {
                            from: v.from,
                            grants: v.grants.clone(),
                            exts: v.exts.clone(),
                            seq: v.seq,
                        },
                    )
                })
                .collect(),
            foreign: self.foreign.clone(),
            roam_seq: self.roam_seq,
        };
        pmp_wire::to_bytes(&snap)
    }

    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let snap: BaseSnapshot = pmp_wire::from_bytes(bytes)?;
        self.catalog = Catalog::new();
        for ext in snap.catalog.into_values() {
            self.catalog.put(ext);
        }
        self.adapted = snap
            .adapted
            .into_iter()
            .map(|(name, a)| {
                (
                    name,
                    AdaptedNode {
                        node: NodeId(a.node),
                        grants: a.grants.into_iter().collect(),
                        present: a.present,
                    },
                )
            })
            .collect();
        self.roaming_cache = snap
            .roaming
            .into_iter()
            .map(|(name, r)| {
                (
                    name,
                    RoamEntry {
                        from: r.from,
                        grants: r.grants,
                        exts: r.exts,
                        seq: r.seq,
                    },
                )
            })
            .collect();
        self.foreign = snap.foreign;
        self.roam_seq = snap.roam_seq;
        self.next_grant = snap.next_grant;
        Ok(())
    }

    fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        match pmp_wire::from_bytes::<BaseWalOp>(payload)? {
            BaseWalOp::CatalogPut { ext } => {
                // Mirror the live transition exactly: a catalog insert
                // supersedes any foreign copy of the same package (the
                // replica-merge path removes it, and recovery must not
                // resurrect it — found by the chaos `durable-digest`
                // oracle, kernel pinned in `tests/repros/seed-181.repro`).
                if let Ok(pkg) = ext.open() {
                    self.foreign.remove(&pkg.meta.id);
                }
                self.catalog.put(ext);
            }
            BaseWalOp::Revoked { ext_id } => {
                self.catalog.remove(&ext_id);
                for a in self.adapted.values_mut() {
                    a.grants.remove(&ext_id);
                }
            }
            BaseWalOp::NodeAdapted { name, node, grants } => {
                let max_grant = grants.values().copied().max();
                self.adapted.insert(
                    name,
                    AdaptedNode {
                        node: NodeId(node),
                        grants: grants.into_iter().collect(),
                        present: true,
                    },
                );
                if let Some(g) = max_grant {
                    self.bump_grant(g);
                }
            }
            BaseWalOp::GrantSet {
                name,
                ext_id,
                grant,
            } => {
                let a = self
                    .adapted
                    .get_mut(&name)
                    .ok_or(DurableError::Invalid("grant for unknown node"))?;
                a.grants.insert(ext_id, grant);
                self.bump_grant(grant);
            }
            BaseWalOp::GrantDropped { name, grant } => {
                let a = self
                    .adapted
                    .get_mut(&name)
                    .ok_or(DurableError::Invalid("drop for unknown node"))?;
                a.grants.retain(|_, g| *g != grant);
            }
            BaseWalOp::Presence { name, present } => {
                let a = self
                    .adapted
                    .get_mut(&name)
                    .ok_or(DurableError::Invalid("presence for unknown node"))?;
                a.present = present;
            }
            BaseWalOp::Roamed { name, ext_ids } => {
                // Legacy record: no migratable grants (grant 0 never
                // matches a live lease → redelivery fallback).
                let seq = self.roam_seq;
                self.roam_seq += 1;
                self.roaming_cache.insert(
                    name,
                    RoamEntry {
                        from: 0,
                        grants: ext_ids.into_iter().map(|id| (id, 0)).collect(),
                        exts: Vec::new(),
                        seq,
                    },
                );
            }
            BaseWalOp::RoamState {
                name,
                from,
                grants,
                exts,
                seq,
            } => {
                // Literal replay: evictions were logged explicitly, so
                // capacity policy never re-runs here.
                self.roam_seq = self.roam_seq.max(seq + 1);
                self.roaming_cache.insert(
                    name,
                    RoamEntry {
                        from,
                        grants,
                        exts,
                        seq,
                    },
                );
            }
            BaseWalOp::RoamDrop { name } => {
                self.roaming_cache.remove(&name);
            }
            BaseWalOp::ForeignPut { ext } => {
                if let Ok(pkg) = ext.open() {
                    self.foreign.insert(pkg.meta.id, ext);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{ExtensionMeta, ExtensionPackage};
    use pmp_crypto::KeyPair;
    use pmp_prose::{Aspect, PortableAspect, PortableClass};

    fn ext(id: &str, version: u32) -> SignedExtension {
        let aspect = Aspect::script(
            id.to_string(),
            PortableClass {
                name: format!("C{id}"),
                fields: vec![],
                methods: vec![],
            },
            vec![],
        );
        let pkg = ExtensionPackage {
            meta: ExtensionMeta {
                id: id.into(),
                version,
                description: String::new(),
                requires: vec![],
                permissions: vec![],
                implicit: false,
            },
            aspect: PortableAspect::try_from(&aspect).unwrap(),
        };
        SignedExtension::seal("authority", &KeyPair::from_seed(b"seed"), &pkg)
    }

    fn fresh_base() -> ExtensionBase {
        ExtensionBase::new(NodeId(1), NodeId(1))
    }

    fn ops() -> Vec<BaseWalOp> {
        vec![
            BaseWalOp::CatalogPut { ext: ext("mon", 1) },
            BaseWalOp::CatalogPut { ext: ext("acl", 1) },
            BaseWalOp::NodeAdapted {
                name: "robot:1:1".into(),
                node: 7,
                grants: [("mon".to_string(), 1u64), ("acl".to_string(), 2)].into(),
            },
            BaseWalOp::GrantSet {
                name: "robot:1:1".into(),
                ext_id: "mon".into(),
                grant: 3,
            },
            BaseWalOp::GrantDropped {
                name: "robot:1:1".into(),
                grant: 2,
            },
            BaseWalOp::Presence {
                name: "robot:1:1".into(),
                present: false,
            },
            BaseWalOp::Roamed {
                name: "robot:2:2".into(),
                ext_ids: vec!["mon".into()],
            },
            BaseWalOp::RoamState {
                name: "robot:3:3".into(),
                from: 9,
                grants: [("mon".to_string(), 5u64)].into(),
                exts: vec![ext("mon", 1)],
                seq: 4,
            },
            BaseWalOp::RoamDrop {
                name: "robot:2:2".into(),
            },
            BaseWalOp::ForeignPut { ext: ext("ctx", 1) },
            BaseWalOp::Revoked {
                ext_id: "acl".into(),
            },
        ]
    }

    #[test]
    fn ops_roundtrip_on_the_wire() {
        for op in ops() {
            let bytes = pmp_wire::to_bytes(&op);
            assert_eq!(pmp_wire::from_bytes::<BaseWalOp>(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn unknown_tag_carries_the_offset() {
        assert_eq!(
            pmp_wire::from_bytes::<BaseWalOp>(&[99]),
            Err(WireError::InvalidTag {
                type_name: "BaseWalOp",
                tag: 99,
                offset: 0,
            })
        );
    }

    #[test]
    fn replay_then_snapshot_restore_reach_the_same_digest() {
        let mut replayed = fresh_base();
        for op in ops() {
            replayed.apply_record(&pmp_wire::to_bytes(&op)).unwrap();
        }
        // The lease table shape after the full sequence.
        let leases = replayed.lease_table();
        let (node, present, grants) = &leases["robot:1:1"];
        assert_eq!(*node, 7);
        assert!(!present);
        assert_eq!(grants.len(), 1, "acl revoked, one mon grant left");
        assert_eq!(grants["mon"], 3);
        assert_eq!(replayed.next_grant, 4, "recovered past the max grant");
        assert_eq!(replayed.catalog.ids(), ["mon"]);
        // Roaming table: robot:2:2 dropped, robot:3:3 admitted with its
        // migratable grants; the FIFO sequence recovered past it.
        assert!(!replayed.roaming_cache.contains_key("robot:2:2"));
        let roam = &replayed.roaming_cache["robot:3:3"];
        assert_eq!(roam.from, 9);
        assert_eq!(roam.grants["mon"], 5);
        assert_eq!(roam.exts.len(), 1);
        assert_eq!(replayed.roam_seq, 5, "recovered past the max seq");

        let mut restored = fresh_base();
        restored
            .restore_snapshot(&replayed.snapshot_bytes())
            .unwrap();
        assert_eq!(restored.state_digest(), replayed.state_digest());
        assert_eq!(restored.lease_table(), replayed.lease_table());
        assert_eq!(restored.roaming_cache, replayed.roaming_cache);
    }

    #[test]
    fn orphan_grant_ops_error_instead_of_panicking() {
        let mut base = fresh_base();
        let op = BaseWalOp::GrantSet {
            name: "ghost".into(),
            ext_id: "mon".into(),
            grant: 1,
        };
        assert!(base.apply_record(&pmp_wire::to_bytes(&op)).is_err());
        assert!(base.apply_record(&[0xff, 0x00]).is_err());
    }
}
