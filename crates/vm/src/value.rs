//! Runtime values.

use std::fmt;
use std::sync::Arc;

/// Identifier of a heap entry (object, array, or byte buffer).
///
/// Reference semantics mirror Java: copying a [`Value::Ref`] aliases the
/// same heap entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A value manipulated by the VM: primitives, interned strings, and heap
/// references.
#[derive(Debug, Clone, PartialEq)]
#[derive(Default)]
pub enum Value {
    /// The null reference.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An immutable interned string.
    Str(Arc<str>),
    /// A reference to a heap entry (object, array, or buffer).
    Ref(ObjId),
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the bool if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the heap id if this is a `Ref`.
    pub fn as_ref_id(&self) -> Option<ObjId> {
        match self {
            Value::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short name of the value's runtime kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Ref(_) => "ref",
        }
    }

    /// Truthiness used by conditional jumps: only `Bool` carries truth.
    pub fn truthy(&self) -> Option<bool> {
        self.as_bool()
    }
}


impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Ref(id) => write!(f, "{id}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<ObjId> for Value {
    fn from(v: ObjId) -> Self {
        Value::Ref(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Ref(ObjId(7)).as_ref_id(), Some(ObjId(7)));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(3).as_bool(), None);
    }

    #[test]
    fn display_and_kind() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Ref(ObjId(2)).to_string(), "@2");
        assert_eq!(Value::Int(5).kind(), "int");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
