//! Pass 3 — termination / fuel-bound analysis.
//!
//! Advice runs inline inside the application's own call path; an
//! advice body that never terminates wedges the node. True termination
//! is undecidable, so the pass settles for the decidable question that
//! matters operationally: *does the body contain a loop, and if so,
//! will anything bound it at run time?* A loop in our bytecode always
//! requires a back-edge (a jump to a pc at or before the jump itself),
//! so back-edges are detected syntactically and judged against the
//! fuel budget the weaver will impose:
//!
//! * fuel budget present (every `midas::receiver` weave) — the loop is
//!   bounded by fuel; reported as [`Severity::Info`] so operators can
//!   see which extensions loop.
//! * no fuel budget — the loop may never terminate; reported as
//!   [`Severity::Warning`] (raise the policy threshold to `Warning`
//!   to make it fatal).

use crate::{AnalyzeOptions, Finding, Pass, Severity};
use pmp_prose::{PortableClass, PortableMethod};
use pmp_vm::op::Op;

/// Scans every method of a shipped class for back-edges.
pub fn check_class(class: &PortableClass, opts: &AnalyzeOptions) -> Vec<Finding> {
    class
        .methods
        .iter()
        .flat_map(|m| check_method(m, opts))
        .collect()
}

/// Scans one method for back-edges.
pub fn check_method(method: &PortableMethod, opts: &AnalyzeOptions) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (pc, op) in method.body.ops.iter().enumerate() {
        let target = match op {
            Op::Jump(t) | Op::JumpIf(t) | Op::JumpIfNot(t) => *t as usize,
            _ => continue,
        };
        if target <= pc {
            let (severity, note) = if opts.fueled {
                (Severity::Info, "loop is bounded only by the advice fuel budget")
            } else {
                (
                    Severity::Warning,
                    "loop has no fuel budget and may never terminate",
                )
            };
            findings.push(Finding::new(
                severity,
                Pass::Termination,
                &method.name,
                Some(pc),
                format!("back-edge to pc {target}: {note}"),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::op::BytecodeBody;

    fn method(ops: Vec<Op>) -> PortableMethod {
        PortableMethod {
            name: "m".into(),
            params: vec![],
            ret: "any".into(),
            body: BytecodeBody {
                extra_locals: 0,
                ops,
                handlers: vec![],
            },
        }
    }

    #[test]
    fn straight_line_code_has_no_findings() {
        let m = method(vec![Op::Nop, Op::Jump(2), Op::Ret]);
        assert!(check_method(&m, &AnalyzeOptions::default()).is_empty());
    }

    #[test]
    fn back_edge_is_info_under_fuel() {
        let m = method(vec![Op::Nop, Op::Jump(0)]);
        let f = check_method(&m, &AnalyzeOptions::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Info);
        assert_eq!(f[0].pc, Some(1));
    }

    #[test]
    fn back_edge_without_fuel_is_a_warning() {
        let m = method(vec![Op::Nop, Op::Jump(0)]);
        let opts = AnalyzeOptions {
            fueled: false,
            ..AnalyzeOptions::default()
        };
        let f = check_method(&m, &opts);
        assert_eq!(f[0].severity, Severity::Warning);
        assert!(f[0].message.contains("may never terminate"));
    }

    #[test]
    fn self_jump_counts_as_back_edge() {
        let m = method(vec![Op::Jump(0)]);
        assert_eq!(check_method(&m, &AnalyzeOptions::default()).len(), 1);
    }
}
