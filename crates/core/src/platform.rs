//! The platform: owns the simulated world and drives every node's
//! protocol stacks — the glue that turns the substrate crates into the
//! paper's running system.

use crate::driver::{flush_outbox, CellBody, CellState, Driver, NodeCell};
use crate::node::{BaseStation, MobileNode};
use crate::wiring::{RpcMsg, RPC_CHANNEL};
use pmp_durable::{Durable, WalRecord};
use pmp_midas::ReceiverPolicy;
use pmp_net::{AreaId, Epoch, Position, SimTime, Simulator};
use pmp_stream::{StreamConfig, StreamEvent, StreamHub, StreamSource, StreamStats, SubscriberId};
use pmp_telemetry::PendingEvent;
use pmp_vm::perm::Permissions;
use pmp_vm::prelude::VmError;
use std::sync::{Arc, Mutex};

/// Index of a base station within a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseId(pub usize);

/// Index of a mobile node within a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobId(pub usize);

/// Handle naming one stream subscription: a cursor on one base's
/// fan-out hub (see [`Platform::subscribe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSub {
    base: usize,
    id: SubscriberId,
}

/// [`StreamSource`] over one base station: the committed WAL serves
/// tier-1 gap bootstrap, the live durable states serve tier-2
/// snapshots. Valid at barriers, where in-memory state and committed
/// log agree.
struct BaseSource<'a> {
    station: &'a BaseStation,
}

impl StreamSource for BaseSource<'_> {
    fn full_log(&self) -> Option<Vec<WalRecord>> {
        self.station.durable.wal_tail(1)
    }

    fn snapshot(&self, ns: &str) -> Option<Vec<u8>> {
        if ns == pmp_store::durable::NAMESPACE {
            Some(self.station.store.snapshot_bytes())
        } else if ns == pmp_midas::durable::NAMESPACE {
            Some(self.station.base.snapshot_bytes())
        } else if ns == pmp_trace::FLIGHT_NAMESPACE {
            Some(self.station.flight.snapshot_bytes())
        } else {
            None
        }
    }
}

/// A completed remote call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcOutcome {
    /// The request id returned by [`Platform::rpc`].
    pub req: u64,
    /// Whether the call completed normally.
    pub ok: bool,
    /// Display form of the result (or the error text).
    pub value: String,
    /// Simulated time the outcome was observed at the caller's base.
    /// Outcomes merge at the epoch barrier sorted by `(at, req)`, so
    /// their order is a pure function of the simulation — not of which
    /// driver or thread count ran the cells.
    pub at: u64,
}

/// The proactive middleware platform over one simulated world.
///
/// # Examples
///
/// ```
/// use pmp_core::{Platform};
/// use pmp_net::Position;
/// use pmp_vm::perm::Permissions;
///
/// # fn main() -> Result<(), pmp_vm::VmError> {
/// let mut p = Platform::new(7);
/// p.add_area("hall-a", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
/// let base = p.add_base("hall-a", Position::new(30.0, 30.0), 80.0);
/// let policy = p.trusting_policy(&[base], Permissions::all());
/// let robot = p.add_robot("robot:1:1", Position::new(40.0, 30.0), 80.0, policy)?;
/// p.pump_millis(3_000);
/// assert!(p.node(robot).name == "robot:1:1");
/// # Ok(())
/// # }
/// ```
pub struct Platform {
    /// The simulated world.
    pub sim: Simulator,
    bases: Vec<BaseStation>,
    nodes: Vec<MobileNode>,
    /// Per-cell runtime state, parallel to `bases` / `nodes`.
    base_cells: Vec<CellState>,
    node_cells: Vec<CellState>,
    next_req: u64,
    rpc_outcomes: Vec<RpcOutcome>,
    /// Retry/timeout tuning applied to every base's RPC engine
    /// (operator configuration; re-applied on restart).
    rpc_cfg: crate::rpc::RpcConfig,
    /// Issue time per in-flight request id, for the `rpc.latency_ns`
    /// histogram recorded at outcome merge. Bounded: entries leave on
    /// outcome, and the oldest are shed past a fixed cap (lost
    /// maybe-calls never produce outcomes).
    rpc_issue_at: std::collections::BTreeMap<u64, u64>,
    telemetry: pmp_telemetry::Shared,
    driver: Box<dyn Driver>,
    /// Base-tier span collector, fed from every cell tracer at epoch
    /// barriers (see `pmp-trace`).
    collector: pmp_trace::Collector,
    tracing: bool,
    /// Whether bases run the weave-time optimizer before sealing
    /// published extensions.
    ship_mode: pmp_midas::ShipMode,
    /// Optimization reports from every publish, in publish order
    /// (`(extension id, report)`).
    opt_reports: Vec<(String, pmp_midas::OptReport)>,
    /// Federation topology, as base-index pairs. Like mirror routes,
    /// this is operator configuration — held by the platform so
    /// [`Platform::restart_base`] can re-wire a freshly rebuilt station.
    fed_neighbors: Vec<(usize, usize)>,
    /// Replication links (catalog + lease-table anti-entropy), symmetric.
    fed_replicas: Vec<(usize, usize)>,
    /// Registrar-tree edges: `(child base, parent base)`.
    fed_parents: Vec<(usize, usize)>,
    /// Per-base fan-out hub (parallel to `bases`): every committed WAL
    /// record is published here as a rev-stamped delta at the same
    /// barrier that committed it.
    streams: Vec<StreamHub>,
    /// Per-base commit-tap buffers (parallel to `bases`): the engine's
    /// commit tap pushes each committed batch here under the engine
    /// lock; the platform drains them into the hubs at barriers.
    stream_taps: Vec<Arc<Mutex<Vec<WalRecord>>>>,
    /// Internal catalog-stream forwarders for replicated bases:
    /// `(source base, replica base, cursor on source hub)`. Deltas that
    /// decode as catalog puts are forwarded over the simulated network
    /// as [`pmp_midas::MidasMsg::StreamDelta`].
    fed_stream_subs: Vec<(usize, usize, SubscriberId)>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("bases", &self.bases.len())
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .field("driver", &self.driver.name())
            .finish()
    }
}

impl Platform {
    /// Creates a platform over a fresh deterministic world.
    pub fn new(seed: u64) -> Platform {
        Self::with_link(seed, pmp_net::LinkModel::default())
    }

    /// Creates a platform with an explicit radio link model (lossy
    /// worlds for failure testing).
    pub fn with_link(seed: u64, link: pmp_net::LinkModel) -> Platform {
        let telemetry = pmp_telemetry::Shared::new();
        let mut sim = Simulator::with_link(seed, link);
        sim.attach_telemetry(&telemetry);
        Platform {
            sim,
            bases: Vec::new(),
            nodes: Vec::new(),
            base_cells: Vec::new(),
            node_cells: Vec::new(),
            next_req: 1,
            rpc_outcomes: Vec::new(),
            rpc_cfg: crate::rpc::RpcConfig::default(),
            rpc_issue_at: std::collections::BTreeMap::new(),
            telemetry,
            driver: crate::driver::driver_from_env(),
            collector: pmp_trace::Collector::default(),
            tracing: false,
            ship_mode: pmp_midas::ShipMode::default(),
            opt_reports: Vec::new(),
            fed_neighbors: Vec::new(),
            fed_replicas: Vec::new(),
            fed_parents: Vec::new(),
            streams: Vec::new(),
            stream_taps: Vec::new(),
            fed_stream_subs: Vec::new(),
        }
    }

    /// Chooses whether bases ship published extensions optimized
    /// (default) or exactly as authored.
    pub fn set_ship_mode(&mut self, mode: pmp_midas::ShipMode) {
        self.ship_mode = mode;
    }

    /// Optimization reports of every [`Platform::publish_extension`]
    /// so far, in publish order.
    pub fn opt_reports(&self) -> &[(String, pmp_midas::OptReport)] {
        &self.opt_reports
    }

    /// Turns causal span tracing on or off for every node cell. Off by
    /// default: contexts still travel in the wire envelopes (16 nil
    /// bytes), but no spans are minted and the collector stays empty.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        for cell in self.base_cells.iter().chain(&self.node_cells) {
            cell.tracer.set_enabled(on);
        }
    }

    /// Whether span tracing is enabled.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Installs the epoch driver (serial is the default; `PMP_DRIVER=parallel`
    /// selects the sharded driver at construction). Both drivers run the
    /// same drain → compute → merge pipeline, so digests are identical.
    pub fn set_driver(&mut self, driver: Box<dyn Driver>) {
        self.driver = driver;
    }

    /// The active driver's name (`"serial"` / `"parallel"`).
    pub fn driver_name(&self) -> &'static str {
        self.driver.name()
    }

    /// The platform-wide telemetry (sim-clocked registry + journal):
    /// the network simulator, every registrar, every extension base,
    /// and every adaptation service record into it. Per-node VM
    /// metrics live in each node's own registry
    /// ([`MobileNode::vm`]'s `telemetry()`).
    pub fn telemetry(&self) -> &pmp_telemetry::Shared {
        // Merge any cell-buffered journal events emitted since the last
        // pump barrier (direct-path operations between pumps).
        flush_cell_events(&self.telemetry, &self.base_cells, &self.node_cells);
        &self.telemetry
    }

    /// Renders the platform registry plus every node's VM registry as
    /// one text report — the per-scenario telemetry summary.
    pub fn render_telemetry(&self) -> String {
        flush_cell_events(&self.telemetry, &self.base_cells, &self.node_cells);
        let mut out = String::new();
        out.push_str("== platform ==\n");
        out.push_str(&self.telemetry.render_table());
        for n in &self.nodes {
            out.push_str(&format!("== vm {} ==\n", n.name));
            out.push_str(&n.vm.telemetry().render_table());
        }
        out
    }

    /// Adds a rectangular area (production hall).
    pub fn add_area(&mut self, name: &str, min: Position, max: Position) -> AreaId {
        self.sim.add_area(name, min, max)
    }

    /// Adds a base station for `hall` at `pos`; its registrar and
    /// extension base start immediately.
    pub fn add_base(&mut self, hall: &str, pos: Position, range: f64) -> BaseId {
        let node = self.sim.add_node(format!("base:{hall}"), pos, range);
        let cell = CellState::new(node, self.sim.now(), &self.telemetry);
        let mut station = BaseStation::build(node, hall, format!("seed:{hall}").as_bytes());
        station.rpc.set_config(self.rpc_cfg);
        // Engine telemetry goes direct: its journal events (snapshot/
        // compact/recover) are emitted only at main-thread barriers, so
        // both drivers see them at identical sequence points.
        station
            .durable
            .attach_sink(pmp_telemetry::Sink::direct(&self.telemetry));
        station.registrar.attach_sink(cell.sink.clone());
        station.base.attach_sink(cell.sink.clone());
        station.base.attach_tracer(cell.tracer.clone());
        cell.tracer.set_enabled(self.tracing);
        station.registrar.start(&mut self.sim);
        station.base.start(&mut self.sim);
        // Every committed WAL batch is mirrored into a per-base tap
        // buffer; at the same barrier that ran the commit, the platform
        // drains it into the base's fan-out hub (one rev per record per
        // namespace, encoded once).
        let tap: Arc<Mutex<Vec<WalRecord>>> = Arc::default();
        let sink = Arc::clone(&tap);
        station.durable.set_commit_tap(Box::new(move |batch| {
            sink.lock().unwrap().extend_from_slice(batch);
        }));
        self.streams.push(StreamHub::new(StreamConfig::default()));
        self.stream_taps.push(tap);
        self.bases.push(station);
        self.base_cells.push(cell);
        BaseId(self.bases.len() - 1)
    }

    /// Kills a base station: its uncommitted WAL batch and unsynced
    /// disk bytes are lost (exactly what a power cut would take), and
    /// until [`Platform::restart_base`] the node answers nothing —
    /// traffic addressed to it is dropped.
    pub fn crash_base(&mut self, id: BaseId) {
        let station = &mut self.bases[id.0];
        station.crashed = true;
        station.durable.crash();
        self.telemetry.event(
            pmp_telemetry::Subsystem::Durable,
            "crash",
            format!("base {}", station.name),
        );
    }

    /// Brings a crashed base back: fresh registrar and extension base
    /// over the surviving storage engine, state recovered from the
    /// committed image. Receivers whose lease renewals now fail
    /// re-advertise, and the recovered lease table lets the base renew
    /// grants instead of re-delivering its catalog.
    pub fn restart_base(&mut self, id: BaseId) -> pmp_durable::RecoverReport {
        let old = &self.bases[id.0];
        let (node, name) = (old.node, old.name.clone());
        let hub = old.durable.clone();
        // Mirror routes are operator configuration held for the base,
        // not base memory — they survive the restart.
        let mirrors = old.mirrors.clone();
        let mut station =
            BaseStation::build_with_hub(node, &name, format!("seed:{name}").as_bytes(), hub);
        station.mirrors = mirrors;
        station.rpc.set_config(self.rpc_cfg);
        // Federation topology is operator configuration too: re-wire the
        // fresh base/registrar from the platform's records so handoffs,
        // anti-entropy, and directory routing resume after the restart.
        for &(x, y) in &self.fed_neighbors {
            if x == id.0 {
                station.base.add_neighbor(self.bases[y].node);
            } else if y == id.0 {
                station.base.add_neighbor(self.bases[x].node);
            }
        }
        for &(x, y) in &self.fed_replicas {
            if x == id.0 {
                station.base.add_replica(self.bases[y].node);
            } else if y == id.0 {
                station.base.add_replica(self.bases[x].node);
            }
        }
        for &(c, p) in &self.fed_parents {
            if c == id.0 {
                station.registrar.set_parent(self.bases[p].node);
            } else if p == id.0 {
                station.registrar.add_child(self.bases[c].node);
            }
        }
        let report = station.recover();
        let cell = &self.base_cells[id.0];
        station.registrar.attach_sink(cell.sink.clone());
        station.base.attach_sink(cell.sink.clone());
        station.base.attach_tracer(cell.tracer.clone());
        station.registrar.start(&mut self.sim);
        station.base.start(&mut self.sim);
        // Calls that were outstanding at the crash survived in the
        // recovered `"rpc.calls"` table; re-arm their retransmission
        // timers under the *same* request ids. The servers' dedup
        // tables make this safe for at-most-once calls — a resend of a
        // request that executed before the crash is answered from
        // cache, never re-executed.
        for req in station.rpc.rearm_tokens() {
            let attempts = station.rpc.get(req).map_or(1, |c| c.attempts);
            let delay = crate::rpc::backoff_delay(&self.rpc_cfg, req, attempts);
            let token = self.sim.set_timer(node, delay, crate::rpc::RPC_RETRY_TAG);
            station.rpc.arm(token, req);
        }
        self.bases[id.0] = station;
        // Streams: recovery may have rolled history back (a truncated
        // torn tail, a checkpoint-on-anomaly), so drop anything the tap
        // buffered before the crash, re-align publisher revs with the
        // recovered log, and force every cursor through snapshot
        // resync. Subscribers converge on the recovered state without
        // ever seeing a rev go backwards unannounced.
        self.stream_taps[id.0].lock().unwrap().clear();
        let Platform { bases, streams, .. } = self;
        streams[id.0].rebase(&BaseSource {
            station: &bases[id.0],
        });
        report
    }

    /// Snapshots a base's durable state and compacts its WAL now
    /// (checkpoints also fire automatically once enough records commit;
    /// see [`pmp_durable::EngineConfig::snapshot_every`]).
    pub fn checkpoint_base(&mut self, id: BaseId) {
        self.bases[id.0].checkpoint();
    }

    /// Subscribes to a base's durable namespace from scratch: the first
    /// drain replays the namespace's full history — as deltas when the
    /// ring or committed log still covers it, as one canonical snapshot
    /// otherwise — and every later drain returns exactly the deltas
    /// committed since. Namespaces are the base's durable stores:
    /// `"store.movements"`, `"midas.base"`, `"trace.flight"`.
    pub fn subscribe(&mut self, base: BaseId, ns: &str) -> StreamSub {
        StreamSub {
            base: base.0,
            id: self.streams[base.0].subscribe(ns),
        }
    }

    /// Subscribes at the head: only records committed after this call
    /// are streamed.
    pub fn subscribe_live(&mut self, base: BaseId, ns: &str) -> StreamSub {
        StreamSub {
            base: base.0,
            id: self.streams[base.0].subscribe_live(ns),
        }
    }

    /// Drains a subscription's pending updates. Call between pumps —
    /// publication happens at epoch barriers, so what you get is
    /// exactly the committed record stream up to the last barrier,
    /// byte-identical under either driver. While the base is crashed
    /// this returns nothing (the publisher is powered off with it).
    pub fn drain_updates(&mut self, sub: StreamSub) -> Vec<StreamEvent> {
        let Platform { bases, streams, .. } = self;
        let station = &bases[sub.base];
        if station.crashed {
            return Vec::new();
        }
        streams[sub.base].drain(sub.id, &BaseSource { station })
    }

    /// Retires a subscription; its cursor is freed and later drains
    /// return nothing.
    pub fn drop_subscription(&mut self, sub: StreamSub) {
        self.streams[sub.base].drop_subscriber(sub.id);
    }

    /// Fan-out counters for one base's hub — `encoded` counts each
    /// delta once at publish (independent of subscriber count), while
    /// `delivered` counts every per-subscriber delivery.
    #[must_use]
    pub fn stream_stats(&self, base: BaseId) -> StreamStats {
        self.streams[base.0].stats()
    }

    /// Current head rev of a base's namespace stream.
    #[must_use]
    pub fn stream_head_rev(&self, base: BaseId, ns: &str) -> u64 {
        self.streams[base.0].head_rev(ns)
    }

    /// Live subscriber count on a base's hub (internal federation
    /// forwarders included).
    #[must_use]
    pub fn stream_subscribers(&self, base: BaseId) -> usize {
        self.streams[base.0].live_subscribers()
    }

    /// A receiver policy trusting the given bases' authorities, each
    /// capped at `cap`.
    pub fn trusting_policy(&self, bases: &[BaseId], cap: Permissions) -> ReceiverPolicy {
        let mut policy = ReceiverPolicy::new();
        for b in bases {
            let principal = self.bases[b.0].principal();
            policy.set_signer_cap(principal.name.clone(), cap);
            policy.trust.add(principal);
        }
        policy
    }

    fn add_mobile(
        &mut self,
        name: &str,
        pos: Position,
        range: f64,
        policy: ReceiverPolicy,
        with_robot: bool,
    ) -> Result<MobId, VmError> {
        let node = self.sim.add_node(name, pos, range);
        // The node's whole stack (VM, robot, receiver events) reads the
        // cell clock, not the global one: during an epoch the cell sees
        // the timestamp of the event it is dispatching, wherever the
        // other cells have got to.
        let cell = CellState::new(node, self.sim.now(), &self.telemetry);
        let mut mobile = MobileNode::build(node, name, policy, cell.clock_fn(), with_robot)?;
        mobile.receiver.attach_sink(cell.sink.clone());
        mobile.receiver.attach_tracer(cell.tracer.clone());
        cell.tracer.set_enabled(self.tracing);
        mobile.receiver.start(&mut self.sim);
        self.nodes.push(mobile);
        self.node_cells.push(cell);
        Ok(MobId(self.nodes.len() - 1))
    }

    /// Adds a robot node (plotter hardware + drawing service).
    ///
    /// # Errors
    ///
    /// VM registration failures.
    pub fn add_robot(
        &mut self,
        name: &str,
        pos: Position,
        range: f64,
        policy: ReceiverPolicy,
    ) -> Result<MobId, VmError> {
        self.add_mobile(name, pos, range, policy, true)
    }

    /// Adds a bare mobile node (e.g. a PDA) without robot hardware.
    ///
    /// # Errors
    ///
    /// VM registration failures.
    pub fn add_device(
        &mut self,
        name: &str,
        pos: Position,
        range: f64,
        policy: ReceiverPolicy,
    ) -> Result<MobId, VmError> {
        self.add_mobile(name, pos, range, policy, false)
    }

    /// Immutable base access.
    pub fn base(&self, id: BaseId) -> &BaseStation {
        &self.bases[id.0]
    }

    /// Mutable base access.
    pub fn base_mut(&mut self, id: BaseId) -> &mut BaseStation {
        &mut self.bases[id.0]
    }

    /// Immutable mobile-node access.
    pub fn node(&self, id: MobId) -> &MobileNode {
        &self.nodes[id.0]
    }

    /// Mutable mobile-node access.
    pub fn node_mut(&mut self, id: MobId) -> &mut MobileNode {
        &mut self.nodes[id.0]
    }

    /// Moves a mobile node.
    pub fn move_node(&mut self, id: MobId, pos: Position) {
        let node = self.nodes[id.0].node;
        self.sim.move_node(node, pos);
    }

    /// Seals `pkg` with `base`'s authority and adds it to the catalog;
    /// nodes already adapted receive a live replacement
    /// ([`pmp_midas::base::ExtensionBase::update_extension`]).
    pub fn publish_extension(&mut self, base: BaseId, pkg: &pmp_midas::ExtensionPackage) {
        // Weave-time optimization at the base, between admission and
        // shipping: smaller, devirtualised advice bodies go over the
        // air; receivers re-verify whatever arrives.
        let pkg = &match self.ship_mode {
            pmp_midas::ShipMode::Original => pkg.clone(),
            pmp_midas::ShipMode::Optimized => {
                let opt_start = std::time::Instant::now();
                let (optimized, report) = pmp_midas::optimize_package(pkg);
                let ns = opt_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.telemetry.record("analyze.opt.ns", ns);
                self.telemetry
                    .record("analyze.opt.removed_ops", report.total_removed() as u64);
                self.telemetry
                    .record("analyze.opt.hoistable", report.hoisted.len() as u64);
                self.telemetry.event(
                    pmp_telemetry::Subsystem::Midas,
                    "analyze.opt",
                    format!(
                        "{}: -{} ops, {} hoistable, validated {}",
                        pkg.meta.id,
                        report.total_removed(),
                        report.hoisted.len(),
                        report.all_validated(),
                    ),
                );
                self.opt_reports.push((pkg.meta.id.clone(), report));
                optimized
            }
        };
        let sign_start = std::time::Instant::now();
        let sealed = self.bases[base.0].seal(pkg);
        let ns = sign_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.telemetry.record("midas.base.sign_ns", ns);
        self.telemetry.event(
            pmp_telemetry::Subsystem::Midas,
            "midas.sign",
            format!("{} by {}", pkg.meta.id, sealed.signer()),
        );
        // The adaptation's trace roots here: publish → sign, then the
        // base mints one ship child per delivery, the receivers verify/
        // weave children of those, and the first interception closes it.
        let now = self.sim.now().0;
        let tracer = &self.base_cells[base.0].tracer;
        let root = tracer.root(now, "midas.publish", &pkg.meta.id);
        let sign_ctx = tracer.child(
            root,
            now,
            "midas.sign",
            &format!("{} by {}", pkg.meta.id, sealed.signer()),
        );
        self.bases[base.0]
            .base
            .update_extension_traced(&mut self.sim, sealed, sign_ctx);
    }

    /// Revokes an extension hall-wide: removed from the catalog and
    /// withdrawn from every adapted node.
    pub fn revoke_extension(&mut self, base: BaseId, ext_id: &str, reason: &str) {
        self.bases[base.0]
            .base
            .revoke_extension(&mut self.sim, ext_id, reason);
    }

    /// Makes two bases roaming neighbours (both directions) over a
    /// wired backhaul segment: when a node departs one, the other
    /// receives a handoff record — grants, leases, and (via the driver)
    /// movement history — regardless of radio range (paper §3.2's
    /// roaming algorithm, federated).
    pub fn link_bases(&mut self, a: BaseId, b: BaseId) {
        let (na, nb) = (self.bases[a.0].node, self.bases[b.0].node);
        self.bases[a.0].base.add_neighbor(nb);
        self.bases[b.0].base.add_neighbor(na);
        self.sim.add_wired_link(na, nb);
        let pair = (a.0.min(b.0), a.0.max(b.0));
        if !self.fed_neighbors.contains(&pair) {
            self.fed_neighbors.push(pair);
        }
    }

    /// Makes two bases replicas of each other: on top of the neighbour
    /// handoff path, each base anti-entropies its catalog
    /// (digest → pull → push over the WAL'd catalog ops) and mirrors
    /// its lease table into the other's roaming cache, so either side
    /// can adopt the other's nodes without re-delivery.
    pub fn replicate_bases(&mut self, a: BaseId, b: BaseId) {
        let (na, nb) = (self.bases[a.0].node, self.bases[b.0].node);
        self.bases[a.0].base.add_replica(nb);
        self.bases[b.0].base.add_replica(na);
        self.sim.add_wired_link(na, nb);
        let pair = (a.0.min(b.0), a.0.max(b.0));
        if !self.fed_replicas.contains(&pair) {
            self.fed_replicas.push(pair);
            // Anti-entropy rides the stream: each side's catalog
            // namespace gets a live internal cursor whose deltas are
            // forwarded to the other base at every barrier. The timer
            // digest → pull → push exchange stays as the resync anchor
            // for anything the stream loses to partitions or crashes.
            let sa = self.streams[a.0].subscribe_live(pmp_midas::durable::NAMESPACE);
            self.fed_stream_subs.push((a.0, b.0, sa));
            let sb = self.streams[b.0].subscribe_live(pmp_midas::durable::NAMESPACE);
            self.fed_stream_subs.push((b.0, a.0, sb));
        }
    }

    /// Full federation between two bases: roaming neighbours *and*
    /// replicas (see [`Platform::link_bases`] and
    /// [`Platform::replicate_bases`]).
    pub fn federate_bases(&mut self, a: BaseId, b: BaseId) {
        self.link_bases(a, b);
        self.replicate_bases(a, b);
    }

    /// Wires `child`'s registrar under `parent`'s in the directory tree
    /// (wired backhaul between them): service lookups entered anywhere
    /// in the tree route hop-by-hop toward whichever registrar holds a
    /// match (see `pmp-discovery`'s directory tier).
    pub fn set_directory_parent(&mut self, child: BaseId, parent: BaseId) {
        let (nc, np) = (self.bases[child.0].node, self.bases[parent.0].node);
        self.bases[child.0].registrar.set_parent(np);
        self.bases[parent.0].registrar.add_child(nc);
        self.sim.add_wired_link(nc, np);
        if !self.fed_parents.contains(&(child.0, parent.0)) {
            self.fed_parents.push((child.0, parent.0));
        }
    }

    /// Builds a `branching`-ary registrar tree over every base added so
    /// far (base 0 is the root): the directory tier for federated
    /// lookups. Lookup cost is then O(log_branching(bases)) hops.
    pub fn federate_tree(&mut self, branching: usize) {
        let branching = branching.max(2);
        for i in 1..self.bases.len() {
            let parent = (i - 1) / branching;
            self.set_directory_parent(BaseId(i), BaseId(parent));
        }
    }

    /// Issues a federated service lookup from `base`: the query enters
    /// the directory tier at the base's own registrar (loopback) and
    /// routes through the registrar tree. The answer arrives as
    /// [`pmp_discovery::DiscoveryEvent::FedLookupDone`] in
    /// [`Platform::take_discoveries`] after pumping.
    pub fn fed_lookup(&mut self, base: BaseId, query: pmp_discovery::ServiceQuery) -> u64 {
        let node = self.bases[base.0].node;
        self.bases[base.0].lookup.fed_lookup(&mut self.sim, node, query)
    }

    /// Drains the discovery events surfaced at `base` (federated lookup
    /// results land here).
    pub fn take_discoveries(&mut self, base: BaseId) -> Vec<pmp_discovery::DiscoveryEvent> {
        std::mem::take(&mut self.bases[base.0].discoveries)
    }

    /// Registers a service item at `base`'s own registrar (loopback),
    /// making it reachable from every other base through the directory
    /// tier's federated lookups.
    pub fn register_service(
        &mut self,
        base: BaseId,
        item: pmp_discovery::ServiceItem,
        lease_ns: u64,
    ) -> u64 {
        let node = self.bases[base.0].node;
        self.bases[base.0]
            .lookup
            .register(&mut self.sim, node, item, lease_ns)
    }

    /// Routes movements of `source_robot` (as observed by `base`) to a
    /// replica robot, scaled by `num/den` (paper §4.5 remote
    /// replication).
    pub fn mirror(&mut self, base: BaseId, source_robot: &str, replica: MobId, num: i64, den: i64) {
        assert!(den != 0, "scale denominator must be nonzero");
        let replica_node = self.nodes[replica.0].node;
        self.bases[base.0]
            .mirrors
            .entry(source_robot.to_string())
            .or_default()
            .push((replica_node, num, den));
    }

    /// Issues a remote service call to `target` from `base`'s node
    /// (Fig. 2: the remote invocation of `m_R`). The outcome arrives in
    /// [`Platform::take_rpc_outcomes`] after pumping.
    pub fn rpc(
        &mut self,
        base: BaseId,
        target: MobId,
        caller: &str,
        class: &str,
        method: &str,
        args: Vec<i64>,
    ) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        let msg = RpcMsg::Call {
            caller: caller.to_string(),
            class: class.to_string(),
            method: method.to_string(),
            args,
            req,
        };
        let from = self.bases[base.0].node;
        let to = self.nodes[target.0].node;
        let ctx = self.base_cells[base.0].tracer.root(
            self.sim.now().0,
            "rpc.call",
            &format!("{class}.{method} -> n{}", to.0),
        );
        self.note_rpc_issue(req);
        self.sim.send(from, to, RPC_CHANNEL, ctx.wrap(&msg));
        req
    }

    /// Issues a remote service call with explicit invocation semantics
    /// (DESIGN.md §17). [`InvocationSemantics::Maybe`](crate::rpc::InvocationSemantics::Maybe)
    /// behaves exactly like [`Platform::rpc`]: one transmission, no
    /// retries. The other two register the call with `base`'s durable
    /// RPC engine, which retransmits on a deterministic exponential
    /// backoff until the first reply or the attempt budget resolves it.
    #[allow(clippy::too_many_arguments)]
    pub fn rpc_with(
        &mut self,
        base: BaseId,
        target: MobId,
        caller: &str,
        class: &str,
        method: &str,
        args: Vec<i64>,
        sem: crate::rpc::InvocationSemantics,
    ) -> u64 {
        if sem == crate::rpc::InvocationSemantics::Maybe {
            return self.rpc(base, target, caller, class, method, args);
        }
        let req = self.next_req;
        self.next_req += 1;
        let from = self.bases[base.0].node;
        let to = self.nodes[target.0].node;
        let now = self.sim.now().0;
        let msg = RpcMsg::CallSem {
            caller: caller.to_string(),
            class: class.to_string(),
            method: method.to_string(),
            args: args.clone(),
            req,
            sem,
            attempt: 1,
        };
        let ctx = self.base_cells[base.0].tracer.root(
            now,
            "rpc.call",
            &format!("{class}.{method} [{sem}] -> n{}", to.0),
        );
        let station = &mut self.bases[base.0];
        station.rpc.issue(
            req,
            crate::rpc::PendingCall {
                target: to.0,
                sem,
                caller: caller.to_string(),
                class: class.to_string(),
                method: method.to_string(),
                args,
                attempts: 1,
                issued_at: now,
            },
        );
        self.note_rpc_issue(req);
        self.sim.send(from, to, RPC_CHANNEL, ctx.wrap(&msg));
        let delay = crate::rpc::backoff_delay(&self.rpc_cfg, req, 1);
        let token = self.sim.set_timer(from, delay, crate::rpc::RPC_RETRY_TAG);
        self.bases[base.0].rpc.arm(token, req);
        req
    }

    /// Replaces the platform-wide RPC retry tuning, on every existing
    /// base and every base added later.
    pub fn set_rpc_config(&mut self, cfg: crate::rpc::RpcConfig) {
        self.rpc_cfg = cfg;
        for station in &mut self.bases {
            station.rpc.set_config(cfg);
        }
    }

    /// The RPC retry tuning in force.
    #[must_use]
    pub fn rpc_config(&self) -> crate::rpc::RpcConfig {
        self.rpc_cfg
    }

    /// Records the issue time of `req` for the `rpc.latency_ns`
    /// histogram, shedding the oldest entries past a fixed cap.
    fn note_rpc_issue(&mut self, req: u64) {
        self.rpc_issue_at.insert(req, self.sim.now().0);
        while self.rpc_issue_at.len() > 4_096 {
            self.rpc_issue_at.pop_first();
        }
    }

    /// Ships an already-sealed extension from `base` to its hall —
    /// the door through which the chaos harness drives *hostile*
    /// packages (tampered signatures, foreign signers) at the MIDAS
    /// admission gate. Normal publishes go through
    /// [`Platform::publish_extension`], which optimizes and seals with
    /// the hall authority.
    pub fn publish_sealed(&mut self, base: BaseId, sealed: pmp_midas::SignedExtension) {
        let Platform { sim, bases, .. } = self;
        bases[base.0].base.update_extension(sim, sealed);
    }

    /// Drains completed remote calls.
    pub fn take_rpc_outcomes(&mut self) -> Vec<RpcOutcome> {
        std::mem::take(&mut self.rpc_outcomes)
    }

    /// Pumps the world for `ns` of simulated time: epoch by epoch, the
    /// scheduler drains every event within the conservative lookahead
    /// window, the active driver runs each busy node cell against its
    /// batch, and the cells' effects merge back at the barrier in
    /// `(time, cell rank, emission seq)` order (DESIGN.md §10).
    pub fn pump(&mut self, ns: u64) {
        let until = self.sim.now().plus(ns);
        // Outboxes may hold data queued by direct VM calls since the
        // last pump; ship it before the first epoch.
        self.preflush_outboxes();
        while let Some(epoch) = self.sim.drain_epoch(until) {
            self.run_epoch(epoch);
        }
        if self.sim.now() < until {
            self.sim.run_until(until);
        }
        // Cells idle until their next event; park their clocks at the
        // global time so direct calls between pumps read current time.
        let now = self.sim.now();
        for cell in self.base_cells.iter().chain(&self.node_cells) {
            cell.clock.set(now);
        }
        // Pump end is a quiescent barrier: drain spans minted by direct
        // calls since the last epoch, commit anything appended, and
        // take any snapshot the engine's record budget asks for.
        self.drain_spans_now();
        for station in &mut self.bases {
            if station.crashed {
                continue;
            }
            station.durable.commit();
            if station.durable.should_checkpoint() {
                station.checkpoint();
            }
        }
        let Platform {
            sim,
            bases,
            streams,
            stream_taps,
            fed_stream_subs,
            telemetry,
            ..
        } = self;
        publish_and_forward(sim, bases, streams, stream_taps, fed_stream_subs, telemetry);
        flush_cell_events(&self.telemetry, &self.base_cells, &self.node_cells);
    }

    /// Pumps for `ms` milliseconds of simulated time.
    pub fn pump_millis(&mut self, ms: u64) {
        self.pump(ms * 1_000_000);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Stable 64-bit digest of the network trace (enable
    /// `sim.trace.set_logging(true)` first for per-delivery coverage).
    #[must_use]
    pub fn trace_digest(&self) -> u64 {
        self.sim.trace_digest()
    }

    /// Stable 64-bit digest over the platform journal plus every
    /// node-VM journal — the observable event history of a run.
    #[must_use]
    pub fn journal_digest(&self) -> u64 {
        flush_cell_events(&self.telemetry, &self.base_cells, &self.node_cells);
        let mut h = pmp_telemetry::Fnv64::new();
        h.write_u64(self.telemetry.journal_digest());
        h.write_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            h.write_u64(n.vm.telemetry().journal.digest());
        }
        h.finish()
    }

    /// Flushes every mobile node's outbox through its cell port at the
    /// current time (rank order, so the merge stays deterministic).
    fn preflush_outboxes(&mut self) {
        let Platform {
            sim,
            nodes,
            node_cells,
            ..
        } = self;
        let now = sim.now();
        let mut cmds = Vec::new();
        for (node, cell) in nodes.iter_mut().zip(node_cells.iter_mut()) {
            cell.clock.set(now);
            flush_outbox(node, &mut cell.port);
            cmds.extend(cell.port.drain());
        }
        sim.apply_cmds(cmds);
    }

    /// Runs one epoch: batch routing → driver compute → barrier merge.
    fn run_epoch(&mut self, epoch: Epoch) {
        let Platform {
            sim,
            bases,
            nodes,
            base_cells,
            node_cells,
            rpc_outcomes,
            rpc_issue_at,
            telemetry,
            driver,
            collector,
            streams,
            stream_taps,
            fed_stream_subs,
            ..
        } = self;

        // Route each destination's batch to its cell, bases first —
        // rank order fixes the merge order below.
        let mut batches = epoch.batches;
        let mut take = |node: pmp_net::NodeId| -> Vec<pmp_net::TimedIncoming> {
            batches
                .get_mut(node.0 as usize)
                .map(std::mem::take)
                .unwrap_or_default()
        };
        let mut cells: Vec<NodeCell<'_>> = Vec::new();
        for (station, state) in bases.iter_mut().zip(base_cells.iter_mut()) {
            let batch = take(station.node);
            // A crashed base is a powered-off machine: traffic addressed
            // to it is taken off the wire and dropped.
            if !batch.is_empty() && !station.crashed {
                cells.push(NodeCell {
                    body: CellBody::Base(station),
                    state,
                    batch,
                    rpc: Vec::new(),
                });
            }
        }
        for (node, state) in nodes.iter_mut().zip(node_cells.iter_mut()) {
            let batch = take(node.node);
            if !batch.is_empty() {
                cells.push(NodeCell {
                    body: CellBody::Mobile(node),
                    state,
                    batch,
                    rpc: Vec::new(),
                });
            }
        }
        debug_assert!(
            batches.iter().all(Vec::is_empty),
            "epoch event addressed to a node the platform does not manage"
        );
        if cells.is_empty() {
            return;
        }

        driver.compute(&mut cells);

        // Barrier merge. Network commands: concatenating per-cell
        // buffers in rank order and stable-sorting by time yields
        // (time, rank, seq) — exactly the order a serial sweep over the
        // window would have produced. Link randomness (loss, jitter) is
        // sampled here, on this thread, so it cannot depend on the
        // driver's scheduling.
        let mut cmds = Vec::new();
        for cell in &mut cells {
            cmds.extend(cell.state.port.drain());
        }
        cmds.sort_by_key(pmp_net::NetCmd::at);
        sim.apply_cmds(cmds);
        // RPC outcomes: merged sorted by (observation time, request
        // id). Epochs are disjoint time windows, so per-epoch sorting
        // keeps the accumulated vector globally ordered — and the
        // order is driver-invariant, where the old rank-order append
        // depended on which cell held each outcome.
        let mut epoch_rpc: Vec<RpcOutcome> = Vec::new();
        for cell in &mut cells {
            epoch_rpc.append(&mut cell.rpc);
        }
        epoch_rpc.sort_by_key(|o| (o.at, o.req));
        for o in &epoch_rpc {
            if let Some(issued) = rpc_issue_at.remove(&o.req) {
                // Only successful calls feed the latency histogram: a
                // timeout outcome lands at the end of the full backoff
                // schedule (seconds), which is a delivery fact, not a
                // latency sample — it would drown the p99 the soak SLO
                // oracle watches.
                if o.ok {
                    telemetry.record("rpc.latency_ns", o.at.saturating_sub(issued));
                }
            }
        }
        rpc_outcomes.append(&mut epoch_rpc);
        drop(cells);
        // Spans drain in rank order (bases first) into the collector;
        // base spans are mirrored into the durable flight ring before
        // the commit below so they ride the same group fsync.
        drain_spans(collector, bases, base_cells, node_cells);
        // Group-commit each live base's WAL appends at the epoch
        // barrier: one simulated fsync per base per epoch, and the same
        // batch boundaries under either driver.
        for station in bases.iter_mut() {
            if !station.crashed {
                station.durable.commit();
            }
        }
        // Publish the freshly committed batches to each base's fan-out
        // hub and forward catalog deltas to replicas — on this thread,
        // in rank order, so streams are identical under either driver.
        publish_and_forward(sim, bases, streams, stream_taps, fed_stream_subs, telemetry);
        // Journal events: same (time, rank, seq) merge.
        flush_cell_events(telemetry, base_cells, node_cells);
    }

    /// Drains every cell tracer into the collector immediately (the
    /// same thing epoch barriers do; needed before reading traces when
    /// spans were minted by direct calls since the last pump).
    fn drain_spans_now(&mut self) {
        let Platform {
            bases,
            base_cells,
            node_cells,
            collector,
            ..
        } = self;
        drain_spans(collector, bases, base_cells, node_cells);
    }

    /// The span collector (drained up to date). Trace ids, trees, and
    /// critical paths read off this.
    pub fn collector(&mut self) -> &pmp_trace::Collector {
        self.drain_spans_now();
        &self.collector
    }

    /// Stable order-independent digest over every retained span — the
    /// cross-driver trace-equality check.
    #[must_use]
    pub fn span_digest(&mut self) -> u64 {
        self.drain_spans_now();
        self.collector.digest()
    }

    /// One trace rendered as an indented tree.
    #[must_use]
    pub fn render_trace(&mut self, trace_id: u64) -> String {
        self.drain_spans_now();
        self.collector.render_tree(trace_id)
    }

    /// Every retained trace rendered as an indented tree, in trace-id
    /// order (canonical — no map-iteration order leaks in).
    #[must_use]
    pub fn render_traces(&mut self) -> String {
        self.drain_spans_now();
        let mut out = String::new();
        for id in self.collector.trace_ids() {
            out.push_str(&self.collector.render_tree(id));
        }
        out
    }

    /// One trace's critical path with per-hop latencies.
    #[must_use]
    pub fn render_critical_path(&mut self, trace_id: u64) -> String {
        self.drain_spans_now();
        self.collector.render_critical_path(trace_id)
    }

    /// Every node's flight ring, `(node id, entries oldest first)` —
    /// bases (their durable rings) then mobiles, in rank order. This is
    /// what chaos `.repro` artifacts attach.
    #[must_use]
    pub fn flight_dump(&mut self) -> Vec<(u32, Vec<pmp_trace::FlightEntry>)> {
        self.drain_spans_now();
        let mut out = Vec::new();
        for station in &self.bases {
            out.push((station.node.0, station.flight.snapshot()));
        }
        for (node, cell) in self.nodes.iter().zip(&self.node_cells) {
            out.push((node.node.0, cell.tracer.flight_snapshot()));
        }
        out
    }

    /// Per-node `(node id, retained, capacity)` of every flight ring —
    /// the ring-growth oracle's raw numbers.
    #[must_use]
    pub fn flight_stats(&self) -> Vec<(u32, usize, usize)> {
        let mut out = Vec::new();
        for station in &self.bases {
            out.push((station.node.0, station.flight.len(), station.flight.cap()));
        }
        for (node, cell) in self.nodes.iter().zip(&self.node_cells) {
            let (len, cap, _) = cell.tracer.flight_stats();
            out.push((node.node.0, len, cap));
        }
        out
    }

    /// `(retained spans, cap)` of the collector.
    #[must_use]
    pub fn collector_stats(&self) -> (usize, usize) {
        (self.collector.retained(), self.collector.cap())
    }
}

/// Barrier-time stream step, always on the merge thread: drain each
/// live base's commit-tap buffer into its fan-out hub (assigning revs,
/// encoding each delta once), then walk the federation forwarders and
/// ship freshly published catalog puts to replica bases as
/// [`pmp_midas::MidasMsg::StreamDelta`] over the simulated network —
/// subject to the same loss, partitions, and crashes as any traffic.
fn publish_and_forward(
    sim: &mut Simulator,
    bases: &mut [BaseStation],
    streams: &mut [StreamHub],
    stream_taps: &[Arc<Mutex<Vec<WalRecord>>>],
    fed_stream_subs: &[(usize, usize, SubscriberId)],
    telemetry: &pmp_telemetry::Shared,
) {
    for (i, station) in bases.iter().enumerate() {
        if station.crashed {
            // Committed-but-unpublished records of a crashed base stay
            // in the tap until the restart rebase reconciles them.
            continue;
        }
        let batch = std::mem::take(&mut *stream_taps[i].lock().unwrap());
        if batch.is_empty() {
            continue;
        }
        telemetry.add("stream.delta.encoded", batch.len() as u64);
        streams[i].publish_batch(&batch);
    }
    for &(src, dst, sub) in fed_stream_subs {
        if bases[src].crashed {
            continue;
        }
        let events = streams[src].drain(sub, &BaseSource {
            station: &bases[src],
        });
        let (from, to) = (bases[src].node, bases[dst].node);
        for ev in events {
            // Forwarders never replay snapshots over the wire: after a
            // source restart the cursor's forced resync is swallowed
            // here and the digest exchange re-anchors the replica.
            let StreamEvent::Delta { rev, bytes } = ev else {
                continue;
            };
            let Ok(op) = pmp_wire::from_bytes::<pmp_midas::durable::BaseWalOp>(&bytes) else {
                continue;
            };
            // Only this base's own catalog puts travel: forwarding
            // foreign or lease bookkeeping ops would echo replicated
            // state back and forth.
            if matches!(op, pmp_midas::durable::BaseWalOp::CatalogPut { .. }) {
                telemetry.inc("stream.fed.forwarded");
                let msg = pmp_midas::MidasMsg::StreamDelta {
                    rev,
                    delta: bytes.to_vec(),
                };
                sim.send(from, to, pmp_midas::CHANNEL, pmp_trace::TraceCtx::NIL.wrap(&msg));
            }
        }
    }
}

/// Drains every cell tracer in rank order (bases first, then mobiles)
/// into the collector, mirroring base spans into their durable flight
/// rings on the way.
fn drain_spans(
    collector: &mut pmp_trace::Collector,
    bases: &mut [BaseStation],
    base_cells: &[CellState],
    node_cells: &[CellState],
) {
    for (station, cell) in bases.iter_mut().zip(base_cells) {
        let spans = cell.tracer.drain();
        if !station.crashed && !spans.is_empty() {
            station.note_flight_batch(
                spans
                    .iter()
                    .map(|s| pmp_trace::FlightEntry::Span(s.clone()))
                    .collect(),
            );
        }
        collector.absorb(spans);
    }
    for cell in node_cells {
        collector.absorb(cell.tracer.drain());
    }
}

/// Merges cell-buffered journal events into the shared journal in
/// `(time, cell rank, emission seq)` order.
fn flush_cell_events(
    telemetry: &pmp_telemetry::Shared,
    base_cells: &[CellState],
    node_cells: &[CellState],
) {
    let mut pending: Vec<PendingEvent> = Vec::new();
    for cell in base_cells.iter().chain(node_cells) {
        if !cell.sink.pending_is_empty() {
            pending.extend(cell.sink.take_pending());
        }
    }
    if pending.is_empty() {
        return;
    }
    // Stable sort: within one timestamp, rank/emission order survives.
    pending.sort_by_key(|e| e.at);
    for e in pending {
        telemetry.event_at(e.at, e.subsystem, &e.name, e.detail);
    }
}
