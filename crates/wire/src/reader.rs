use crate::{WireError, MAX_LEN};

/// Cursor-style decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current byte offset from the start of the input.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Builds an [`WireError::InvalidTag`] for a tag byte just read,
    /// carrying the byte offset of that tag (decoders call this right
    /// after `get_u8`, so the tag sits one byte behind the cursor).
    pub fn bad_tag(&self, type_name: &'static str, tag: u8) -> WireError {
        WireError::InvalidTag {
            type_name,
            tag,
            offset: self.pos.saturating_sub(1),
        }
    }

    /// Returns an error unless the input has been fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when unread bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                offset: self.pos,
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`WireError::VarintOverflow`] if more than 10 bytes are used or the
    /// value exceeds 64 bits.
    pub fn get_varu64(&mut self) -> Result<u64, WireError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            let part = u64::from(byte & 0x7f);
            if shift >= 64 || (shift == 63 && part > 1) {
                return Err(WireError::VarintOverflow);
            }
            result |= part << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a zig-zag encoded signed varint.
    pub fn get_vari64(&mut self) -> Result<i64, WireError> {
        let z = self.get_varu64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a boolean byte.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidTag`] for any byte other than 0 or 1 — a
    /// canonical format admits exactly one encoding per value.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(self.bad_tag("bool", tag)),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length prefix, validating it against [`MAX_LEN`] and the
    /// bytes actually remaining (so hostile lengths cannot force huge
    /// allocations).
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let declared = self.get_varu64()?;
        if declared > MAX_LEN as u64 {
            return Err(WireError::LengthTooLarge { declared });
        }
        Ok(declared as usize)
    }

    /// Reads a length-prefixed UTF-8 string, borrowing from the input.
    ///
    /// The zero-copy twin of [`Reader::get_str`]: validation happens on
    /// the borrowed slice, so hot decode paths that only *inspect* the
    /// string (pattern parsing, tag matching, digesting) never allocate.
    pub fn read_str(&mut self) -> Result<&'a str, WireError> {
        let len = self.get_len()?;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads length-prefixed raw bytes, borrowing from the input — the
    /// zero-copy twin of [`Reader::get_bytes`].
    pub fn read_raw(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string (owned). Prefer
    /// [`Reader::read_str`] when a borrow suffices.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        self.read_str().map(str::to_owned)
    }

    /// Reads length-prefixed raw bytes (owned). Prefer
    /// [`Reader::read_raw`] when a borrow suffices.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        self.read_raw().map(<[u8]>::to_vec)
    }

    /// Reads exactly `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Writer;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0, 1, 127, 128, 16383, 16384, u64::MAX / 2, u64::MAX] {
            let mut w = Writer::new();
            w.put_varu64(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varu64().unwrap(), v);
            assert!(r.finish().is_ok());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes encode > 64 bits.
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varu64(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn non_canonical_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(WireError::InvalidTag { .. })));
    }

    // -- Positioned errors (satellite: torn-tail reporting) --

    #[test]
    fn eof_error_carries_the_offset() {
        let mut w = Writer::new();
        w.put_u32(7);
        w.put_str("abcdef");
        let bytes = w.into_bytes();
        // Cut inside the string body: the failed read starts at the
        // string's payload, right after the 4-byte int + 1-byte length.
        let mut r = Reader::new(&bytes[..7]);
        r.get_u32().unwrap();
        assert_eq!(
            r.get_str(),
            Err(WireError::UnexpectedEof {
                offset: 5,
                needed: 6,
                have: 2,
            })
        );
    }

    #[test]
    fn bad_tag_error_carries_the_offset() {
        let mut r = Reader::new(&[0, 9]);
        r.get_u8().unwrap();
        assert_eq!(
            r.get_bool(),
            Err(WireError::InvalidTag {
                type_name: "bool",
                tag: 9,
                offset: 1,
            })
        );
    }

    #[test]
    fn borrowed_reads_match_owned() {
        let mut w = Writer::new();
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_str().unwrap(), "hello");
        assert_eq!(r.read_raw().unwrap(), &[1, 2, 3]);
        assert!(r.finish().is_ok());
        // Owned variants decode the same bytes to the same values.
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn borrowed_str_rejects_invalid_utf8() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_str(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn signed_roundtrip() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            let mut w = Writer::new();
            w.put_vari64(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_vari64().unwrap(), v);
        }
    }
}
