//! Invocation-semantics matrix (DESIGN.md §17): every semantics ×
//! every loss level × both drivers, on the real platform.
//!
//! For each cell of the matrix the world is identical — same seed,
//! same topology, same call script — and the assertions are the
//! classic RPC guarantees:
//!
//! * **at-most-once** — exactly zero duplicate executions, at any
//!   loss level, because the server's dedup table filters retries;
//! * **at-least-once** — every request executes at least once under
//!   bounded loss (the backoff schedule out-lasts the loss streaks
//!   these seeds produce);
//! * **both drivers** — byte-identical network traces, journals, and
//!   outcome streams, because retry timers, backoff, and dedup are all
//!   functions of simulated time and the link RNG, never of the
//!   scheduler.

use pmp::core::rpc::InvocationSemantics;
use pmp::core::{BaseId, Driver, MobId, ParallelDriver, Platform, SerialDriver};
use pmp::net::{LinkModel, Position};
use pmp::vm::perm::Permissions;

const SEC: u64 = 1_000_000_000;
const CALLS: u64 = 10;

/// One hall, one base, one robot in range. No extensions are needed:
/// the `DrawingService` is exported by the robot host itself.
fn build_world(seed: u64, loss: f64) -> (Platform, BaseId, MobId) {
    let mut p = Platform::with_link(seed, LinkModel::lossy(loss));
    p.add_area("hall", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    let base = p.add_base("hall", Position::new(30.0, 30.0), 80.0);
    let policy = p.trusting_policy(&[base], Permissions::all());
    let robot = p
        .add_robot("robot:1:1", Position::new(40.0, 30.0), 80.0, policy)
        .expect("robot");
    (p, base, robot)
}

/// Everything one matrix cell exposes to an observer.
#[derive(Debug, PartialEq)]
struct CellReport {
    trace: u64,
    journal: u64,
    outcomes: Vec<String>,
    executions: Vec<u32>,
    duplicates: u64,
    dedup_len: usize,
    dedup_cap: usize,
}

fn run_cell(
    seed: u64,
    loss: f64,
    sem: InvocationSemantics,
    driver: Box<dyn Driver>,
) -> CellReport {
    let (mut p, base, robot) = build_world(seed, loss);
    p.set_driver(driver);
    p.sim.trace.set_logging(true);
    p.pump(3 * SEC);

    let mut reqs = Vec::new();
    for i in 0..CALLS {
        let req = p.rpc_with(
            base,
            robot,
            "operator:1",
            "DrawingService",
            "moveTo",
            vec![i as i64, (i * 2) as i64],
            sem,
        );
        reqs.push(req);
        p.pump(SEC / 2);
    }
    // Generous settle: the full backoff schedule (8 attempts, 2 s cap)
    // finishes well inside this window.
    p.pump(20 * SEC);

    let outcomes = p
        .take_rpc_outcomes()
        .into_iter()
        .map(|o| format!("req={} ok={} value={}", o.req, o.ok, o.value))
        .collect();
    let node = p.node(robot);
    CellReport {
        trace: p.trace_digest(),
        journal: p.journal_digest(),
        outcomes,
        executions: reqs.iter().map(|&r| node.rpc_server.executions(r)).collect(),
        duplicates: node.rpc_server.duplicate_at_most_once_executions(),
        dedup_len: node.rpc_server.dedup.len(),
        dedup_cap: node.rpc_server.dedup.cap(),
    }
}

const LOSSES: [f64; 3] = [0.0, 0.20, 0.50];
const SEMANTICS: [InvocationSemantics; 3] = [
    InvocationSemantics::Maybe,
    InvocationSemantics::AtMostOnce,
    InvocationSemantics::AtLeastOnce,
];

#[test]
fn semantics_matrix_holds_under_both_drivers() {
    for sem in SEMANTICS {
        for loss in LOSSES {
            let serial = run_cell(402, loss, sem, Box::new(SerialDriver));
            let parallel = run_cell(402, loss, sem, Box::new(ParallelDriver::default()));
            assert_eq!(
                serial, parallel,
                "{sem} at {loss} loss diverged across drivers"
            );

            // The dedup table never grows past its bound.
            assert!(serial.dedup_len <= serial.dedup_cap);

            match sem {
                InvocationSemantics::AtMostOnce => {
                    // The tentpole guarantee: retries at 50 % loss mean
                    // plenty of duplicate arrivals, and not one of them
                    // reaches the service object.
                    assert_eq!(
                        serial.duplicates, 0,
                        "at-most-once produced duplicate executions at {loss} loss"
                    );
                    for (i, &n) in serial.executions.iter().enumerate() {
                        assert!(
                            n <= 1,
                            "call {i} executed {n} times at {loss} loss"
                        );
                    }
                }
                InvocationSemantics::AtLeastOnce => {
                    // Bounded loss: every request runs at least once.
                    for (i, &n) in serial.executions.iter().enumerate() {
                        assert!(
                            n >= 1,
                            "at-least-once call {i} never executed at {loss} loss"
                        );
                    }
                }
                InvocationSemantics::Maybe => {
                    // No retries: executions can be 0 (lost) but never >1.
                    for &n in &serial.executions {
                        assert!(n <= 1);
                    }
                }
            }
        }
    }
}

#[test]
fn lossless_runs_execute_every_call_exactly_once() {
    for sem in SEMANTICS {
        let r = run_cell(402, 0.0, sem, Box::new(SerialDriver));
        if sem != InvocationSemantics::Maybe {
            // Maybe rides the legacy path, which predates the
            // execution ledger; its guarantee shows in the outcomes.
            assert_eq!(
                r.executions,
                vec![1; CALLS as usize],
                "{sem} on a clean link must execute each call exactly once"
            );
        }
        assert_eq!(r.outcomes.len(), CALLS as usize);
        assert!(r.outcomes.iter().all(|o| o.contains("ok=true")));
    }
}

#[test]
fn retries_actually_happen_under_loss() {
    // Sanity that the matrix is exercising retransmission at all: at
    // 50 % loss the at-least-once run must show duplicate executions
    // (that is its contract), and the at-most-once run must show
    // dedup-table hits instead.
    let alo = run_cell(402, 0.50, InvocationSemantics::AtLeastOnce, Box::new(SerialDriver));
    let total: u32 = alo.executions.iter().sum();
    assert!(
        total > CALLS as u32,
        "no duplicate at-least-once executions at 50% loss — retries inert? {:?}",
        alo.executions
    );

    let (mut p, base, robot) = build_world(402, 0.50);
    p.pump(3 * SEC);
    for i in 0..CALLS {
        p.rpc_with(
            base,
            robot,
            "operator:1",
            "DrawingService",
            "moveTo",
            vec![i as i64, 0],
            InvocationSemantics::AtMostOnce,
        );
        p.pump(SEC / 2);
    }
    p.pump(20 * SEC);
    assert!(
        p.node(robot).rpc_server.dedup.hits > 0,
        "at-most-once at 50% loss should answer some duplicates from cache"
    );
    assert_eq!(p.node(robot).rpc_server.duplicate_at_most_once_executions(), 0);
}

#[test]
fn at_most_once_survives_base_crash_without_reexecution() {
    // Crash the caller's base mid-retry: the recovered call table
    // resumes retrying under the same request ids, and the server's
    // dedup table answers any resend of an already-executed call from
    // cache. Total executions stay ≤ 1 per request.
    let (mut p, base, robot) = build_world(77, 0.20);
    p.pump(3 * SEC);
    let mut reqs = Vec::new();
    for i in 0..4u64 {
        reqs.push(p.rpc_with(
            base,
            robot,
            "operator:1",
            "DrawingService",
            "moveTo",
            vec![i as i64, 3],
            InvocationSemantics::AtMostOnce,
        ));
    }
    // Let the first sends land (some will have executed), then crash
    // before the schedule completes.
    p.pump_millis(120);
    p.crash_base(base);
    p.pump(2 * SEC);
    p.restart_base(base);
    p.pump(25 * SEC);

    let node = p.node(robot);
    assert_eq!(node.rpc_server.duplicate_at_most_once_executions(), 0);
    for &r in &reqs {
        assert!(
            node.rpc_server.executions(r) <= 1,
            "req {r} executed more than once across the crash"
        );
    }
    // The platform kept retrying after restart: outstanding calls
    // resolved one way or the other.
    assert_eq!(p.base(base).rpc.outstanding(), 0);
}
