//! End-to-end weaving tests: native and script aspects, the sandbox,
//! priorities, refresh, and shutdown notification.

use pmp_prose::prelude::*;
use pmp_prose::runtime::ErrorPolicy;
use pmp_vm::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// A simple application: a Motor with rotate/stop and a state field.
fn app_vm() -> Vm {
    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Motor")
            .field("position", TypeSig::Int)
            .method("rotate", [TypeSig::Int], TypeSig::Void, |b| {
                // position += angle
                b.op(Op::Load(0));
                b.op(Op::Load(0))
                    .op(Op::GetField {
                        class: "Motor".into(),
                        field: "position".into(),
                    })
                    .op(Op::Load(1))
                    .op(Op::Add);
                b.op(Op::PutField {
                    class: "Motor".into(),
                    field: "position".into(),
                });
                b.op(Op::Ret);
            })
            .method("position", [], TypeSig::Int, |b| {
                b.op(Op::Load(0))
                    .op(Op::GetField {
                        class: "Motor".into(),
                        field: "position".into(),
                    })
                    .op(Op::RetVal);
            })
            .method("stop", [], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    vm
}

#[test]
fn native_aspect_intercepts_matching_methods_only() {
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let hits = Arc::new(Mutex::new(Vec::<String>::new()));
    let h = hits.clone();
    let aspect = Aspect::build("trace")
        .before("void Motor.rotate(int)", move |ctx| {
            if let JoinPoint::MethodEntry { sig, args, .. } = &ctx.jp {
                h.lock().unwrap().push(format!("{} {:?}", sig, args));
            }
            Ok(())
        })
        .done()
        .unwrap();
    let id = prose.weave(&mut vm, aspect, WeaveOptions::default()).unwrap();
    assert_eq!(prose.info(id).unwrap().join_points, 1);

    let motor = vm.new_object("Motor").unwrap();
    vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(30)])
        .unwrap();
    vm.call("Motor", "stop", motor.clone(), vec![]).unwrap();
    vm.call("Motor", "position", motor, vec![]).unwrap();
    let hits = hits.lock().unwrap();
    assert_eq!(hits.len(), 1, "only rotate is matched");
    assert!(hits[0].contains("Motor.rotate"));
}

#[test]
fn advice_priorities_order_execution() {
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let (o1, o2, o3) = (order.clone(), order.clone(), order.clone());
    let aspect = Aspect::build("ordered")
        .on("before * Motor.rotate(..)", 10, move |_| {
            o1.lock().unwrap().push("late-before");
            Ok(())
        })
        .on("before * Motor.rotate(..)", -10, move |_| {
            o2.lock().unwrap().push("early-before");
            Ok(())
        })
        .on("after * Motor.rotate(..)", -10, move |_| {
            o3.lock().unwrap().push("early-after");
            Ok(())
        })
        .done()
        .unwrap();
    prose.weave(&mut vm, aspect, WeaveOptions::default()).unwrap();
    let aspect2 = Aspect::build("ordered2")
        .on("after * Motor.rotate(..)", 10, {
            let o = order.clone();
            move |_| {
                o.lock().unwrap().push("late-after");
                Ok(())
            }
        })
        .done()
        .unwrap();
    prose.weave(&mut vm, aspect2, WeaveOptions::default()).unwrap();

    let motor = vm.new_object("Motor").unwrap();
    vm.call("Motor", "rotate", motor, vec![Value::Int(1)]).unwrap();
    // before: ascending priority; after: descending priority.
    assert_eq!(
        order.lock().unwrap().as_slice(),
        ["early-before", "late-before", "late-after", "early-after"]
    );
}

#[test]
fn field_set_advice_observes_state_changes() {
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let writes = Arc::new(Mutex::new(Vec::<i64>::new()));
    let w = writes.clone();
    let aspect = Aspect::build("state-watch")
        .on("set Motor.position", 0, move |ctx| {
            if let JoinPoint::FieldSet {
                value: Value::Int(i),
                ..
            } = &ctx.jp
            {
                w.lock().unwrap().push(*i);
            }
            Ok(())
        })
        .done()
        .unwrap();
    prose.weave(&mut vm, aspect, WeaveOptions::default()).unwrap();
    let motor = vm.new_object("Motor").unwrap();
    vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(30)])
        .unwrap();
    vm.call("Motor", "rotate", motor, vec![Value::Int(15)])
        .unwrap();
    assert_eq!(writes.lock().unwrap().as_slice(), [30, 45]);
}

#[test]
fn unweave_restores_original_behaviour() {
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let hits = Arc::new(AtomicU32::new(0));
    let h = hits.clone();
    let aspect = Aspect::build("count")
        .before("* Motor.*(..)", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
        .done()
        .unwrap();
    let id = prose.weave(&mut vm, aspect, WeaveOptions::default()).unwrap();
    let motor = vm.new_object("Motor").unwrap();
    vm.call("Motor", "stop", motor.clone(), vec![]).unwrap();
    prose.unweave(&mut vm, id, "test done").unwrap();
    vm.call("Motor", "stop", motor, vec![]).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1);
    assert!(prose.woven().is_empty());
    // Unweaving twice is an error.
    assert!(matches!(
        prose.unweave(&mut vm, id, "again"),
        Err(ProseError::UnknownAspect(_))
    ));
}

#[test]
fn shutdown_advice_runs_on_unweave() {
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let reasons = Arc::new(Mutex::new(Vec::<String>::new()));
    let r = reasons.clone();
    let aspect = Aspect::build("mon")
        .before("* Motor.*(..)", |_| Ok(()))
        .on_shutdown(move |ctx| {
            if let JoinPoint::Shutdown { reason } = &ctx.jp {
                r.lock().unwrap().push(reason.clone());
            }
            Ok(())
        })
        .done()
        .unwrap();
    let id = prose.weave(&mut vm, aspect, WeaveOptions::default()).unwrap();
    prose.unweave(&mut vm, id, "lease expired").unwrap();
    assert_eq!(reasons.lock().unwrap().as_slice(), ["lease expired"]);
}

#[test]
fn refresh_extends_aspects_to_new_classes() {
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let hits = Arc::new(AtomicU32::new(0));
    let h = hits.clone();
    let aspect = Aspect::build("all-devices")
        .before("* *.actuate(..)", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
        .done()
        .unwrap();
    let id = prose.weave(&mut vm, aspect, WeaveOptions::default()).unwrap();
    assert_eq!(prose.info(id).unwrap().join_points, 0);

    // A class registered after weaving.
    vm.register_class(
        ClassDef::build("Gripper")
            .method("actuate", [], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    prose.refresh(&mut vm);
    assert_eq!(prose.info(id).unwrap().join_points, 1);

    let g = vm.new_object("Gripper").unwrap();
    vm.call("Gripper", "actuate", g, vec![]).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

/// Builds the paper's Fig. 5 monitoring aspect as a *script* aspect:
/// a class with a counter field whose advice method increments it and
/// logs via the `print` system op.
fn monitoring_script_aspect() -> Aspect {
    let mut count_body = MethodBuilder::new();
    // this.count = this.count + 1; print(desc)
    count_body.op(Op::Load(0));
    count_body.op(Op::Load(0)).op(Op::GetField {
        class: "HwMonitoring".into(),
        field: "count".into(),
    });
    count_body.konst(1i64).op(Op::Add);
    count_body.op(Op::PutField {
        class: "HwMonitoring".into(),
        field: "count".into(),
    });
    count_body.op(Op::Load(2)); // descriptor "Class.method"
    count_body.op(Op::Sys {
        name: "print".into(),
        argc: 1,
    });
    count_body.op(Op::Pop).op(Op::Ret);

    let mut shutdown_body = MethodBuilder::new();
    shutdown_body.konst("monitor shutting down: ");
    shutdown_body.op(Op::Load(3)).op(Op::Concat);
    shutdown_body.op(Op::Sys {
        name: "print".into(),
        argc: 1,
    });
    shutdown_body.op(Op::Pop).op(Op::Ret);

    let any5 = || {
        vec![
            "any".to_string(),
            "str".to_string(),
            "any".to_string(),
            "any".to_string(),
            "any".to_string(),
        ]
    };
    let class = PortableClass {
        name: "HwMonitoring".into(),
        fields: vec![("count".into(), "int".into())],
        methods: vec![
            PortableMethod {
                name: "ANYMETHOD".into(),
                params: any5(),
                ret: "any".into(),
                body: count_body.build(),
            },
            PortableMethod {
                name: Aspect::SHUTDOWN_METHOD.into(),
                params: any5(),
                ret: "any".into(),
                body: shutdown_body.build(),
            },
        ],
    };
    Aspect::script(
        "hw-monitoring",
        class,
        vec![(
            Crosscut::parse("before * Motor.*(..)").unwrap(),
            "ANYMETHOD".into(),
            0,
        )],
    )
}

#[test]
fn script_aspect_roundtrips_the_wire_and_runs() {
    // Serialise the aspect (as MIDAS would) and weave the decoded copy.
    let portable = PortableAspect::try_from(&monitoring_script_aspect()).unwrap();
    let bytes = pmp_wire::to_bytes(&portable);
    let received: PortableAspect = pmp_wire::from_bytes(&bytes).unwrap();
    let aspect: Aspect = received.into();

    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let perms = Permissions::none().with(Permission::Print);
    let id = prose
        .weave(&mut vm, aspect, WeaveOptions::sandboxed(perms))
        .unwrap();

    let motor = vm.new_object("Motor").unwrap();
    vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(5)])
        .unwrap();
    vm.call("Motor", "stop", motor, vec![]).unwrap();

    let out = vm.take_output();
    assert_eq!(out, vec!["Motor.rotate".to_string(), "Motor.stop".to_string()]);

    prose.unweave(&mut vm, id, "node left").unwrap();
    let out = vm.take_output();
    assert_eq!(out, vec!["monitor shutting down: node left".to_string()]);
}

#[test]
fn script_aspect_without_permission_is_blocked() {
    let aspect = monitoring_script_aspect();
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    // No Print permission: the advice's `print` must raise
    // SecurityException, which aborts the intercepted call.
    let id = prose
        .weave(&mut vm, aspect, WeaveOptions::sandboxed(Permissions::none()))
        .unwrap();
    let motor = vm.new_object("Motor").unwrap();
    let err = vm
        .call("Motor", "rotate", motor, vec![Value::Int(5)])
        .unwrap_err();
    assert_eq!(
        err.as_exception().unwrap().class.as_ref(),
        exception_class::SECURITY
    );
    prose.unweave(&mut vm, id, "test").unwrap();
}

#[test]
fn isolate_policy_contains_faulty_extensions() {
    let aspect = monitoring_script_aspect();
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let opts = WeaveOptions {
        perms: Permissions::none(), // advice will fail on `print`
        fuel: Some(100_000),
        policy: ErrorPolicy::Isolate,
    };
    prose.weave(&mut vm, aspect, opts).unwrap();
    let motor = vm.new_object("Motor").unwrap();
    // The application call still succeeds.
    vm.call("Motor", "rotate", motor, vec![Value::Int(5)])
        .unwrap();
    let faults = prose.take_faults();
    assert_eq!(faults.len(), 1);
    assert!(faults[0].contains("hw-monitoring"));
}

#[test]
fn runaway_script_advice_is_stopped_by_fuel() {
    let mut spin = MethodBuilder::new();
    let top = spin.label();
    spin.bind(top);
    spin.jump(top);
    let class = PortableClass {
        name: "Spinner".into(),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "spin".into(),
            params: vec!["any".into(), "str".into(), "any".into(), "any".into(), "any".into()],
            ret: "any".into(),
            body: spin.build(),
        }],
    };
    let aspect = Aspect::script(
        "hostile",
        class,
        vec![(
            Crosscut::parse("before * Motor.*(..)").unwrap(),
            "spin".into(),
            0,
        )],
    );
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let opts = WeaveOptions {
        perms: Permissions::none(),
        fuel: Some(10_000),
        policy: ErrorPolicy::Isolate,
    };
    prose.weave(&mut vm, aspect, opts).unwrap();
    let motor = vm.new_object("Motor").unwrap();
    // Fuel exhaustion is isolated; the application survives.
    vm.call("Motor", "stop", motor, vec![]).unwrap();
    let faults = prose.take_faults();
    assert_eq!(faults.len(), 1);
    assert!(faults[0].contains("fuel"));
}

#[test]
fn aspect_class_collision_with_application_class_rejected() {
    let class = PortableClass {
        name: "Motor".into(), // collides with the app class
        fields: vec![],
        methods: vec![],
    };
    let aspect = Aspect::script("evil", class, vec![]);
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    assert!(matches!(
        prose.weave(&mut vm, aspect, WeaveOptions::default()),
        Err(ProseError::ClassCollision(_))
    ));
}

#[test]
fn missing_advice_method_rejected() {
    let class = PortableClass {
        name: "Empty".into(),
        fields: vec![],
        methods: vec![],
    };
    let aspect = Aspect::script(
        "broken",
        class,
        vec![(
            Crosscut::parse("before * Motor.*(..)").unwrap(),
            "nothere".into(),
            0,
        )],
    );
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    assert!(matches!(
        prose.weave(&mut vm, aspect, WeaveOptions::default()),
        Err(ProseError::MissingAdviceMethod { .. })
    ));
}

#[test]
fn entry_advice_mutates_arguments_via_script() {
    // Script advice that doubles args[0] using the args-array convention.
    let mut body = MethodBuilder::new();
    body.op(Op::Load(3)); // args array
    body.konst(0i64);
    body.op(Op::Load(3)).konst(0i64).op(Op::ArrGet);
    body.konst(2i64).op(Op::Mul);
    body.op(Op::ArrSet);
    body.op(Op::Ret);
    let class = PortableClass {
        name: "Doubler".into(),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "double".into(),
            params: vec!["any".into(), "str".into(), "any".into(), "any".into(), "any".into()],
            ret: "any".into(),
            body: body.build(),
        }],
    };
    let aspect = Aspect::script(
        "doubler",
        class,
        vec![(
            Crosscut::parse("before void Motor.rotate(int)").unwrap(),
            "double".into(),
            0,
        )],
    );
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    prose
        .weave(&mut vm, aspect, WeaveOptions::sandboxed(Permissions::none()))
        .unwrap();
    let motor = vm.new_object("Motor").unwrap();
    vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(7)])
        .unwrap();
    let pos = vm.call("Motor", "position", motor, vec![]).unwrap();
    assert_eq!(pos, Value::Int(14), "advice doubled the rotation angle");
}

#[test]
fn exit_advice_replaces_return_value_via_script() {
    let mut body = MethodBuilder::new();
    body.op(Op::Load(4)).konst(100i64).op(Op::Add).op(Op::RetVal);
    let class = PortableClass {
        name: "Adjust".into(),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "adjust".into(),
            params: vec!["any".into(), "str".into(), "any".into(), "any".into(), "any".into()],
            ret: "any".into(),
            body: body.build(),
        }],
    };
    let aspect = Aspect::script(
        "adjust",
        class,
        vec![(
            Crosscut::parse("after int Motor.position()").unwrap(),
            "adjust".into(),
            0,
        )],
    );
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    prose
        .weave(&mut vm, aspect, WeaveOptions::sandboxed(Permissions::none()))
        .unwrap();
    let motor = vm.new_object("Motor").unwrap();
    let pos = vm.call("Motor", "position", motor, vec![]).unwrap();
    assert_eq!(pos, Value::Int(100));
}

#[test]
fn two_aspects_same_joinpoint_both_run_and_unweave_independently() {
    let mut vm = app_vm();
    let prose = Prose::attach(&mut vm);
    let a_hits = Arc::new(AtomicU32::new(0));
    let b_hits = Arc::new(AtomicU32::new(0));
    let (ah, bh) = (a_hits.clone(), b_hits.clone());
    let a = Aspect::build("a")
        .before("* Motor.stop(..)", move |_| {
            ah.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
        .done()
        .unwrap();
    let b = Aspect::build("b")
        .before("* Motor.stop(..)", move |_| {
            bh.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
        .done()
        .unwrap();
    let ida = prose.weave(&mut vm, a, WeaveOptions::default()).unwrap();
    let _idb = prose.weave(&mut vm, b, WeaveOptions::default()).unwrap();
    let motor = vm.new_object("Motor").unwrap();
    vm.call("Motor", "stop", motor.clone(), vec![]).unwrap();
    assert_eq!((a_hits.load(Ordering::SeqCst), b_hits.load(Ordering::SeqCst)), (1, 1));

    prose.unweave(&mut vm, ida, "done").unwrap();
    vm.call("Motor", "stop", motor, vec![]).unwrap();
    assert_eq!((a_hits.load(Ordering::SeqCst), b_hits.load(Ordering::SeqCst)), (1, 2));
}

#[test]
fn script_advice_observes_exception_joinpoints() {
    // A shipped aspect that logs every thrown exception — the script
    // analogue of the Recorder's throw/catch hooks.
    let mut body = MethodBuilder::new();
    // print(desc + ": " + payload(message) + " [" + extra(class) + "]")
    body.op(Op::Load(2)).konst(": ").op(Op::Concat);
    body.op(Op::Load(3)).op(Op::Concat);
    body.konst(" [").op(Op::Concat).op(Op::Load(4)).op(Op::Concat);
    body.konst("]").op(Op::Concat);
    body.op(Op::Sys {
        name: "print".into(),
        argc: 1,
    });
    body.op(Op::Pop).op(Op::Ret);
    let class = PortableClass {
        name: "ThrowWatch".into(),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "onThrow".into(),
            params: vec![
                "any".into(),
                "str".into(),
                "any".into(),
                "any".into(),
                "any".into(),
            ],
            ret: "any".into(),
            body: body.build(),
        }],
    };
    let aspect = Aspect::script(
        "throw-watch",
        class,
        vec![(
            Crosscut::parse("throw Kaboom*").unwrap(),
            "onThrow".into(),
            0,
        )],
    );

    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("T")
            .method("boom", [], TypeSig::Void, |b| {
                let s = b.label();
                let e = b.label();
                let h = b.label();
                b.bind(s);
                b.konst("overload").op(Op::Throw("KaboomError".into()));
                b.bind(e);
                b.bind(h);
                b.op(Op::Pop).op(Op::Ret);
                b.guard(s, e, "*", h);
            })
            .method("quiet", [], TypeSig::Void, |b| {
                let s = b.label();
                let e = b.label();
                let h = b.label();
                b.bind(s);
                b.konst("x").op(Op::Throw("OtherError".into()));
                b.bind(e);
                b.bind(h);
                b.op(Op::Pop).op(Op::Ret);
                b.guard(s, e, "*", h);
            })
            .done(),
    )
    .unwrap();
    let prose = Prose::attach(&mut vm);
    prose
        .weave(
            &mut vm,
            aspect,
            WeaveOptions::sandboxed(Permissions::none().with(Permission::Print)),
        )
        .unwrap();

    let t = vm.new_object("T").unwrap();
    vm.call("T", "boom", t.clone(), vec![]).unwrap();
    vm.call("T", "quiet", t, vec![]).unwrap(); // class doesn't match Kaboom*
    assert_eq!(
        vm.take_output(),
        vec!["T.boom: overload [KaboomError]".to_string()],
        "only matching exception classes observed"
    );
}
