//! The accounting extension (paper §1: "accounting modules being added
//! to mobile devices to bill them for the use of services in a given
//! location"). Counts service calls in aspect state and settles the
//! total through `billing.charge` when the extension is withdrawn.

use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::Op;

/// Extension id.
pub const ID: &str = "ext/billing";

/// Builds the billing package: every call matching `service_pattern`
/// costs `rate` units; the total is settled on shutdown.
pub fn package(service_pattern: &str, rate: i64, version: u32) -> ExtensionPackage {
    let class_name = versioned_class("Billing", version);

    // count advice: this.count = this.count + 1
    let mut count = MethodBuilder::new();
    count.op(Op::Load(0));
    count.op(Op::Load(0)).op(Op::GetField {
        class: class_name.clone(),
        field: "count".into(),
    });
    count.konst(1i64).op(Op::Add);
    count.op(Op::PutField {
        class: class_name.clone(),
        field: "count".into(),
    });
    count.op(Op::Ret);

    // shutdown: billing.charge(reason, count * rate)
    let mut settle = MethodBuilder::new();
    settle.op(Op::Load(3)); // reason
    settle.op(Op::Load(0)).op(Op::GetField {
        class: class_name.clone(),
        field: "count".into(),
    });
    settle.konst(rate).op(Op::Mul);
    settle.op(Op::Sys {
        name: "billing.charge".into(),
        argc: 2,
    });
    settle.op(Op::Pop).op(Op::Ret);

    let class = PortableClass {
        name: class_name,
        fields: vec![("count".into(), "int".into())],
        methods: vec![
            PortableMethod {
                name: "tick".into(),
                params: advice_params(),
                ret: "any".into(),
                body: count.build(),
            },
            PortableMethod {
                name: Aspect::SHUTDOWN_METHOD.into(),
                params: advice_params(),
                ret: "any".into(),
                body: settle.build(),
            },
        ],
    };
    let aspect = Aspect::script(
        "billing",
        class,
        vec![(
            Crosscut::parse(&format!("before {service_pattern}")).expect("valid"),
            "tick".into(),
            50,
        )],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: ID.into(),
            version,
            description: "bills service usage; settles on departure".into(),
            requires: vec![],
            permissions: vec!["net".into()],
            implicit: false,
        },
        aspect: PortableAspect::try_from(&aspect).expect("portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::register_sink;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_vm::perm::{Permission, Permissions};
    use pmp_vm::prelude::*;

    #[test]
    fn calls_are_counted_and_settled_on_shutdown() {
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("DrawingService")
                .method("draw", [], TypeSig::Void, |b| {
                    b.op(Op::Ret);
                })
                .done(),
        )
        .unwrap();
        let charges = register_sink(&mut vm, "billing.charge", Some(Permission::Net));
        let prose = Prose::attach(&mut vm);
        let id = prose
            .weave(
                &mut vm,
                package("* DrawingService.*(..)", 5, 1).aspect.into(),
                WeaveOptions::sandboxed(Permissions::none().with(Permission::Net)),
            )
            .unwrap();

        let svc = vm.new_object("DrawingService").unwrap();
        for _ in 0..3 {
            vm.call("DrawingService", "draw", svc.clone(), vec![]).unwrap();
        }
        assert!(charges.lock().is_empty(), "nothing settled yet");

        prose.unweave(&mut vm, id, "leaving hall").unwrap();
        let posts = charges.lock();
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].args[0], Value::str("leaving hall"));
        assert_eq!(posts[0].args[1], Value::Int(15), "3 calls × rate 5");
    }
}
