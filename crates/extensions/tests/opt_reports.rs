//! Golden weave-time optimization reports for every shipped extension
//! package.
//!
//! The reports are deterministic by construction (the optimizer is a
//! pure function of the package bytes), so the full rendered report is
//! pinned here, pass by pass. Two things these goldens guard:
//!
//! * the optimizer stays *sound* on real packages — the shipped
//!   extensions read live join-point state, so their bodies must come
//!   through untouched (a sudden "improvement" here means the
//!   optimizer started folding something observable);
//! * the reports stay *stable* — a base journals them, and the
//!   `--dump-opt-report` harness output is diffable across commits.
//!
//! Every optimized package must also re-pass the admission verifier
//! (translation validation holds end to end, not just per method).

use pmp_analyze::{AnalyzeOptions, Severity};
use pmp_extensions as ext;
use pmp_midas::{optimize_package, ExtensionPackage};

fn packages() -> Vec<ExtensionPackage> {
    vec![
        ext::monitoring::package(1),
        ext::session::package("* DrawingService.*(..)", 1),
        ext::access_control::package("* DrawingService.*(..)", &["op:1"], 1),
        ext::encryption::package(0x42, 1),
        ext::geofence::package(0, 0, 30, 30, 1),
        ext::billing::package("* Motor.*(..)", 2, 1),
        ext::persistence::package("Robot.state", 1),
        ext::transactions::package("* Svc.tx*(..)", "Svc", &["a", "b"], 1),
        ext::agegate::package("* Svc.*(..)", 1_000, 1),
        ext::replication::package(1),
    ]
}

/// The pinned report for each package id.
const GOLDEN: &[(&str, &str)] = &[
    (
        "ext/monitoring",
        "class HwMonitoring_monitoring_v1\n\
         \x20 ANYMETHOD: 33 -> 33 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: -\n",
    ),
    (
        "ext/session",
        "class SessionMgmt_v1\n\
         \x20 capture: 5 -> 5 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: -\n",
    ),
    (
        "ext/access-control",
        "class AccessControl_v1\n\
         \x20 check: 13 -> 13 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: -\n",
    ),
    (
        "ext/encryption",
        "class LinkEncryption_v1\n\
         \x20 transform: 27 -> 27 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: transform\n",
    ),
    (
        "ext/geofence",
        "class Geofence_v1\n\
         \x20 check: 30 -> 30 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: -\n",
    ),
    (
        "ext/billing",
        "class Billing_v1\n\
         \x20 tick: 7 -> 7 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 onShutdown: 8 -> 8 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: tick\n",
    ),
    (
        "ext/persistence",
        "class OrthogonalPersistence_v1\n\
         \x20 onWrite: 5 -> 5 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: -\n",
    ),
    (
        "ext/transactions",
        "class AdHocTx_v1\n\
         \x20 begin: 9 -> 9 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 end: 13 -> 13 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: -\n",
    ),
    (
        "ext/age-gate",
        "class AgeGate_v1\n\
         \x20 init: 4 -> 4 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 gate: 10 -> 10 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: -\n",
    ),
    (
        "ext/replication",
        "class HwMonitoring_replication_v1\n\
         \x20 ANYMETHOD: 33 -> 33 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n\
         \x20 hoist: -\n",
    ),
];

#[test]
fn optimization_reports_match_goldens() {
    let packages = packages();
    assert_eq!(packages.len(), GOLDEN.len(), "golden table out of sync");
    for pkg in &packages {
        let (_, report) = optimize_package(pkg);
        let (_, expected) = GOLDEN
            .iter()
            .find(|(id, _)| *id == pkg.meta.id)
            .unwrap_or_else(|| panic!("no golden for {}", pkg.meta.id));
        assert_eq!(
            report.to_string(),
            *expected,
            "{}: optimization report drifted",
            pkg.meta.id
        );
    }
}

#[test]
fn every_package_optimizes_clean_and_reverifies() {
    for pkg in &packages() {
        let (optimized, report) = optimize_package(pkg);
        assert!(
            report.all_validated(),
            "{}: a method failed translation validation:\n{report}",
            pkg.meta.id
        );
        // The optimized class must re-pass the same admission checks a
        // receiver runs on arrival.
        let findings =
            pmp_analyze::verifier::verify_class(&optimized.aspect.class, &AnalyzeOptions::default());
        let errors: Vec<_> = findings
            .iter()
            .filter(|f| f.severity >= Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{}: optimized class fails the verifier: {errors:?}",
            pkg.meta.id
        );
    }
}
