//! Canonical binary wire codec for the pmp platform.
//!
//! Every message that crosses the simulated wireless network — and every
//! byte sequence that gets signed by `pmp-crypto` — is produced by this
//! codec. The paper's platform ships Java-serialised extension objects;
//! here we use a small, explicit, *canonical* binary format instead, so
//! that the same logical value always encodes to the same bytes (a
//! requirement for signature verification).
//!
//! The format is deliberately simple:
//!
//! * fixed-width little-endian integers where the width is known,
//! * LEB128 variable-length unsigned integers (`varu64`) for lengths and
//!   counts, with zig-zag encoding for signed values,
//! * length-prefixed UTF-8 for strings and length-prefixed raw bytes,
//! * containers encode their element count followed by the elements.
//!
//! # Examples
//!
//! ```
//! use pmp_wire::{Wire, Writer, Reader};
//!
//! # fn main() -> Result<(), pmp_wire::WireError> {
//! let v: Vec<String> = vec!["hall-a".into(), "hall-b".into()];
//! let bytes = pmp_wire::to_bytes(&v);
//! let back: Vec<String> = pmp_wire::from_bytes(&bytes)?;
//! assert_eq!(v, back);
//! # Ok(())
//! # }
//! ```

mod bytes;
mod error;
mod reader;
mod traits;
mod writer;

pub use bytes::Bytes;
pub use error::WireError;
pub use reader::Reader;
pub use traits::Wire;
pub use writer::Writer;

/// Upper bound on any single length prefix (strings, byte blobs,
/// collection counts). Guards against memory exhaustion when decoding
/// hostile input received over the network.
pub const MAX_LEN: usize = 1 << 26;

/// Encodes a value to a fresh byte vector.
///
/// ```
/// let bytes = pmp_wire::to_bytes(&42u32);
/// assert_eq!(bytes, vec![42, 0, 0, 0]);
/// ```
pub fn to_bytes<T: Wire + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from a byte slice, requiring the slice to be fully
/// consumed.
///
/// # Errors
///
/// Returns [`WireError::TrailingBytes`] if input remains after decoding,
/// or any decode error produced by the value itself.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(from_bytes::<u8>(&to_bytes(&7u8)).unwrap(), 7);
        assert_eq!(from_bytes::<u16>(&to_bytes(&999u16)).unwrap(), 999);
        assert_eq!(from_bytes::<u32>(&to_bytes(&70000u32)).unwrap(), 70000);
        assert_eq!(
            from_bytes::<u64>(&to_bytes(&u64::MAX)).unwrap(),
            u64::MAX
        );
        assert_eq!(from_bytes::<i64>(&to_bytes(&-42i64)).unwrap(), -42);
        assert!(from_bytes::<bool>(&to_bytes(&true)).unwrap());
        assert_eq!(from_bytes::<f64>(&to_bytes(&1.5f64)).unwrap(), 1.5);
    }

    #[test]
    fn roundtrip_string_and_bytes() {
        let s = "hall-α-β".to_string();
        assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        let b: Vec<u8> = vec![0, 1, 2, 255];
        assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&b)).unwrap(), b);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![Some(3u32), None, Some(9)];
        assert_eq!(from_bytes::<Vec<Option<u32>>>(&to_bytes(&v)).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        assert_eq!(
            from_bytes::<BTreeMap<String, u64>>(&to_bytes(&m)).unwrap(),
            m
        );
    }

    #[test]
    fn canonical_map_encoding_is_order_independent() {
        let mut m1 = BTreeMap::new();
        m1.insert("z".to_string(), 1u32);
        m1.insert("a".to_string(), 2);
        let mut m2 = BTreeMap::new();
        m2.insert("a".to_string(), 2u32);
        m2.insert("z".to_string(), 1);
        assert_eq!(to_bytes(&m1), to_bytes(&m2));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u8);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u8>(&bytes),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&123456u32);
        assert!(matches!(
            from_bytes::<u32>(&bytes[..2]),
            Err(WireError::UnexpectedEof {
                offset: 0,
                needed: 4,
                have: 2,
            })
        ));
    }

    #[test]
    fn hostile_length_rejected() {
        // A varint length of u64::MAX must not cause allocation.
        let mut w = Writer::new();
        w.put_varu64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(from_bytes::<String>(&bytes).is_err());
        assert!(from_bytes::<Vec<u8>>(&bytes).is_err());
        assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
    }
}
