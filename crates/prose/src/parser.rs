//! Parser for the textual crosscut language.
//!
//! Method-signature patterns follow the paper's examples:
//!
//! ```text
//! void *.send*(byte[], ..)
//! * Motor.*(..)
//! int Math.abs(int)
//! ```
//!
//! Grammar (whitespace-insensitive around tokens):
//!
//! ```text
//! method-pattern ::= type-pat class-pat '.' name-pat '(' params ')'
//! params         ::= ''
//!                  | '..'                       (any parameters — REST)
//!                  | type-pat (',' type-pat)* (',' '..')?
//! field-pattern  ::= class-pat '.' name-pat
//! type-pat       ::= '*' | type-name
//! ```

use crate::pattern::{FieldPattern, MethodPattern, NamePat, ParamsPat, TypePat};
use std::fmt;

/// Error produced when a pattern string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    /// The offending input.
    pub input: String,
    /// What went wrong.
    pub reason: String,
}

impl ParsePatternError {
    fn new(input: &str, reason: impl Into<String>) -> Self {
        Self {
            input: input.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse pattern {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParsePatternError {}

/// Parses a method-signature pattern like `void *.send*(byte[], ..)`.
///
/// # Errors
///
/// [`ParsePatternError`] describing the malformed part.
///
/// # Examples
///
/// ```
/// use pmp_prose::parser::parse_method_pattern;
///
/// let p = parse_method_pattern("void *.send*(byte[], ..)").unwrap();
/// assert_eq!(p.to_string(), "void *.send*(byte[], ..)");
/// ```
pub fn parse_method_pattern(input: &str) -> Result<MethodPattern, ParsePatternError> {
    let s = input.trim();
    let open = s
        .find('(')
        .ok_or_else(|| ParsePatternError::new(input, "missing '('"))?;
    if !s.ends_with(')') {
        return Err(ParsePatternError::new(input, "missing trailing ')'"));
    }
    let head = s[..open].trim();
    let params_src = &s[open + 1..s.len() - 1];

    // Head: "<ret> <class>.<name>" where ret is a single token and the
    // class/name part is the last whitespace-separated token.
    let (ret_src, target_src) = match head.rsplit_once(char::is_whitespace) {
        Some((ret, target)) => (ret.trim(), target.trim()),
        None => return Err(ParsePatternError::new(input, "expected 'ret Class.name'")),
    };
    if ret_src.is_empty() || ret_src.contains(char::is_whitespace) {
        return Err(ParsePatternError::new(input, "malformed return type"));
    }
    let ret = TypePat::parse(ret_src)
        .ok_or_else(|| ParsePatternError::new(input, "empty return type"))?;

    let (class_src, name_src) = target_src
        .rsplit_once('.')
        .ok_or_else(|| ParsePatternError::new(input, "expected 'Class.name'"))?;
    if class_src.is_empty() || name_src.is_empty() {
        return Err(ParsePatternError::new(input, "empty class or method name"));
    }

    let params = parse_params(input, params_src)?;
    Ok(MethodPattern {
        ret,
        class: NamePat::new(class_src),
        name: NamePat::new(name_src),
        params,
    })
}

fn parse_params(input: &str, src: &str) -> Result<ParamsPat, ParsePatternError> {
    let src = src.trim();
    if src.is_empty() {
        return Ok(ParamsPat::exact(Vec::new()));
    }
    let mut prefix = Vec::new();
    let mut rest = false;
    let parts: Vec<&str> = src.split(',').map(str::trim).collect();
    for (i, part) in parts.iter().enumerate() {
        if *part == ".." || part.eq_ignore_ascii_case("rest") {
            if i != parts.len() - 1 {
                return Err(ParsePatternError::new(input, "'..' must be last"));
            }
            rest = true;
        } else {
            let pat = TypePat::parse(part)
                .ok_or_else(|| ParsePatternError::new(input, "empty parameter type"))?;
            prefix.push(pat);
        }
    }
    Ok(ParamsPat { prefix, rest })
}

/// Parses a field pattern like `Motor.position` or `*.state`.
///
/// # Errors
///
/// [`ParsePatternError`] if the `Class.field` shape is missing.
pub fn parse_field_pattern(input: &str) -> Result<FieldPattern, ParsePatternError> {
    let s = input.trim();
    let (class, field) = s
        .rsplit_once('.')
        .ok_or_else(|| ParsePatternError::new(input, "expected 'Class.field'"))?;
    if class.is_empty() || field.is_empty() {
        return Err(ParsePatternError::new(input, "empty class or field name"));
    }
    Ok(FieldPattern::new(class, field))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::types::TypeSig;

    #[test]
    fn parses_paper_example() {
        let p = parse_method_pattern("void *.send*(byte[], ..)").unwrap();
        assert_eq!(p.ret, TypePat::Exact(TypeSig::Void));
        assert!(p.class.is_wildcard());
        assert_eq!(p.name.as_str(), "send*");
        assert_eq!(p.params.prefix.len(), 1);
        assert!(p.params.rest);
    }

    #[test]
    fn parses_any_method_any_params() {
        let p = parse_method_pattern("* Motor.*(..)").unwrap();
        assert_eq!(p.ret, TypePat::Any);
        assert_eq!(p.class.as_str(), "Motor");
        assert!(p.name.is_wildcard());
        assert!(p.params.rest);
        assert!(p.params.prefix.is_empty());
    }

    #[test]
    fn parses_exact_signature() {
        let p = parse_method_pattern("int Math.abs(int)").unwrap();
        assert_eq!(p.ret, TypePat::Exact(TypeSig::Int));
        assert!(!p.params.rest);
        assert_eq!(p.params.prefix, vec![TypePat::Exact(TypeSig::Int)]);
    }

    #[test]
    fn parses_empty_params() {
        let p = parse_method_pattern("void A.f()").unwrap();
        assert!(!p.params.rest);
        assert!(p.params.prefix.is_empty());
    }

    #[test]
    fn parses_rest_keyword() {
        let p = parse_method_pattern("* *.ANYMETHOD(Motor, REST)").unwrap();
        assert!(p.params.rest);
        assert_eq!(p.params.prefix.len(), 1);
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "void *.send*(byte[], ..)",
            "* Motor.*(..)",
            "int Math.abs(int)",
            "void A.f()",
        ] {
            let p = parse_method_pattern(src).unwrap();
            let back = parse_method_pattern(&p.to_string()).unwrap();
            assert_eq!(p, back, "{src}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "void",
            "void f()",             // no class
            "void A.f(",            // unclosed
            "void A.f(..,int)",     // rest not last
            "A.f()",                // no return type
            "void .f()",            // empty class
            "void A.()",            // empty name
            "void A.f(,)",          // empty param
        ] {
            assert!(parse_method_pattern(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn field_patterns() {
        let p = parse_field_pattern("Motor.pos*").unwrap();
        assert!(p.matches("Motor", "position"));
        assert!(parse_field_pattern("justaname").is_err());
        assert!(parse_field_pattern(".x").is_err());
    }
}

// Property tests need the external `proptest` crate; the offline
// default build gates them behind the (empty) `proptest` feature.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn name_pat_strategy() -> impl Strategy<Value = String> {
        // Identifier-ish segments with optional stars.
        proptest::string::string_regex(r"\*?[A-Za-z][A-Za-z0-9_]{0,6}\*?|\*").unwrap()
    }

    fn type_strategy() -> impl Strategy<Value = String> {
        prop_oneof![
            Just("void".to_string()),
            Just("int".to_string()),
            Just("bool".to_string()),
            Just("float".to_string()),
            Just("str".to_string()),
            Just("byte[]".to_string()),
            Just("any".to_string()),
            Just("*".to_string()),
            proptest::string::string_regex(r"[A-Z][A-Za-z0-9]{0,6}").unwrap(),
        ]
    }

    proptest! {
        #[test]
        fn prop_parse_display_roundtrip(
            ret in type_strategy(),
            class in name_pat_strategy(),
            name in name_pat_strategy(),
            params in proptest::collection::vec(type_strategy(), 0..4),
            rest: bool,
        ) {
            let mut parts = params.clone();
            if rest {
                parts.push("..".to_string());
            }
            let src = format!("{ret} {class}.{name}({})", parts.join(", "));
            let parsed = parse_method_pattern(&src).expect("parses");
            let reparsed = parse_method_pattern(&parsed.to_string()).expect("reparses");
            prop_assert_eq!(parsed, reparsed);
        }

        #[test]
        fn prop_parser_never_panics(s in ".{0,60}") {
            let _ = parse_method_pattern(&s);
            let _ = parse_field_pattern(&s);
            let _ = crate::crosscut::Crosscut::parse(&s);
        }
    }
}
